//! A playing stream group.
//!
//! After `PlayStarted`, the MSU dials the first component port's
//! control listener, sends `GroupReady`, and playback begins; the
//! client then drives the group with VCR commands (§2.1: pause, play,
//! seek, quit, plus fast forward/backward where trick files are
//! loaded).

use calliope_types::error::{Error, Result};
use calliope_types::wire::messages::{ClientToMsu, DoneReason, MsuToClient, StreamStart};
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::{GroupId, StreamId, TraceCtx, VcrCommand};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long a session whose MSU died abruptly waits for the
/// Coordinator's replica failover to dial a replacement control
/// connection before surfacing the failure. Orderly endings
/// (`Completed`, `ClientQuit`, …) never wait.
pub const FAILOVER_GRACE: Duration = Duration::from_secs(3);

/// A live playback group.
pub struct PlaySession {
    /// The stream group id.
    pub group: GroupId,
    /// Member streams, in component-port order.
    pub streams: Vec<StreamId>,
    /// Trace contexts minted at admission, parallel to `streams` —
    /// the ids to grep Coordinator and MSU logs for.
    pub traces: Vec<TraceCtx>,
    ctrl: TcpStream,
    /// The port's control-connection queue: a failover MSU dials the
    /// same listener, so the replacement connection arrives here.
    ctrl_conns: crossbeam::channel::Receiver<TcpStream>,
    ended: Option<DoneReason>,
}

impl PlaySession {
    /// Accepts the MSU's control connection and waits for
    /// `GroupReady`.
    pub(crate) fn establish(
        group: GroupId,
        starts: Vec<StreamStart>,
        ports: &[&crate::port::DisplayPort],
        timeout: Duration,
    ) -> Result<PlaySession> {
        let ctrl = ports[0]
            .accept_ctrl(timeout)
            .ok_or_else(|| Error::internal("MSU never opened the control connection"))?;
        ctrl.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let mut session = PlaySession {
            group,
            streams: starts.iter().map(|s| s.stream).collect(),
            traces: starts.iter().map(|s| s.trace).collect(),
            ctrl,
            ctrl_conns: ports[0].ctrl_conns(),
            ended: None,
        };
        // Wait for the group to be released ("the MSU waits … and starts
        // delivering", §2.3.1).
        let deadline = Instant::now() + timeout;
        loop {
            match session.read_msg(deadline)? {
                MsuToClient::GroupReady {
                    group: g, trace, ..
                } if g == group => {
                    tracing::info!("{group}: ready, playback starting [{trace}]");
                    return Ok(session);
                }
                MsuToClient::GroupEnded { reason, .. } => {
                    return Err(Error::Protocol {
                        msg: format!("group ended before ready: {reason:?}"),
                    })
                }
                _ => continue,
            }
        }
    }

    fn read_msg(&mut self, deadline: Instant) -> Result<MsuToClient> {
        loop {
            if Instant::now() > deadline {
                return Err(Error::internal("timed out waiting for the MSU"));
            }
            match read_frame(&mut self.ctrl) {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => return Err(Error::SessionClosed),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one VCR command and waits for the acknowledgement.
    /// `Quit` expects `GroupEnded` instead of an ack.
    pub fn vcr(&mut self, cmd: VcrCommand) -> Result<()> {
        if self.ended.is_some() {
            return Err(Error::SessionClosed);
        }
        write_frame(
            &mut self.ctrl,
            &ClientToMsu::Vcr {
                group: self.group,
                cmd,
            },
        )?;
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.read_msg(deadline)? {
                MsuToClient::VcrAck { error: None, .. } if !cmd.is_terminal() => return Ok(()),
                MsuToClient::VcrAck {
                    error: Some(msg), ..
                } => return Err(Error::Protocol { msg }),
                MsuToClient::GroupEnded { reason, .. } => {
                    self.ended = Some(reason.clone());
                    return if cmd.is_terminal() {
                        Ok(())
                    } else {
                        Err(Error::Protocol {
                            msg: format!("group ended: {reason:?}"),
                        })
                    };
                }
                _ => continue,
            }
        }
    }

    /// Convenience: pause playback.
    pub fn pause(&mut self) -> Result<()> {
        self.vcr(VcrCommand::Pause)
    }

    /// Convenience: resume playback.
    pub fn resume(&mut self) -> Result<()> {
        self.vcr(VcrCommand::Play)
    }

    /// Convenience: seek to an offset.
    pub fn seek(&mut self, to: calliope_types::MediaTime) -> Result<()> {
        self.vcr(VcrCommand::Seek(to))
    }

    /// Convenience: terminate the group.
    pub fn quit(&mut self) -> Result<()> {
        self.vcr(VcrCommand::Quit)
    }

    /// Why the group ended, if it has.
    pub fn ended(&self) -> Option<&DoneReason> {
        self.ended.as_ref()
    }

    /// Blocks until the MSU reports the group ended (end of content or
    /// error), up to `timeout`.
    ///
    /// Abrupt endings — the control connection breaking without a
    /// farewell, or `GroupEnded` with an I/O error — first wait up to
    /// [`FAILOVER_GRACE`] for the Coordinator to re-admit the group on
    /// a replica; when the replacement MSU dials in, playback continues
    /// (restarted from the beginning) and this keeps blocking.
    pub fn wait_end(&mut self, timeout: Duration) -> Result<DoneReason> {
        if let Some(r) = &self.ended {
            return Ok(r.clone());
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.read_msg(deadline) {
                Ok(MsuToClient::GroupEnded {
                    reason: DoneReason::IoError(msg),
                    ..
                }) => {
                    // The stream's disk died under it; a replica may be
                    // taking over right now.
                    if self.adopt_replacement() {
                        continue;
                    }
                    let reason = DoneReason::IoError(msg);
                    self.ended = Some(reason.clone());
                    return Ok(reason);
                }
                Ok(MsuToClient::GroupEnded { reason, .. }) => {
                    self.ended = Some(reason.clone());
                    return Ok(reason);
                }
                Ok(_) => continue,
                // The MSU died without a farewell (crash / kill): the
                // connection broke or reset under us.
                Err(Error::SessionClosed) | Err(Error::Io(_)) => {
                    if self.adopt_replacement() {
                        continue;
                    }
                    return Err(Error::SessionClosed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Waits up to [`FAILOVER_GRACE`] for a replacement MSU to dial the
    /// port's control listener and announce `GroupReady` for this
    /// group. Returns true once playback has resumed on the new
    /// connection.
    fn adopt_replacement(&mut self) -> bool {
        let deadline = Instant::now() + FAILOVER_GRACE;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let Ok(conn) = self.ctrl_conns.recv_timeout(left) else {
                return false;
            };
            conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
            self.ctrl = conn;
            tracing::info!("{}: adopted a replacement control connection", self.group);
            // The failover reuses our group id; its GroupReady confirms
            // the takeover. A connection that ends (or errors) instead
            // was not our replacement — wait for another.
            loop {
                match self.read_msg(deadline) {
                    Ok(MsuToClient::GroupReady {
                        group,
                        streams,
                        trace,
                    }) if group == self.group => {
                        tracing::info!("{group}: failover takeover confirmed [{trace}]");
                        self.streams = streams;
                        return true;
                    }
                    Ok(MsuToClient::GroupEnded { .. }) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
        }
    }
}
