//! Observability for Calliope components.
//!
//! Two halves, both deliberately light so they can sit on the MSU's
//! real-time paths:
//!
//! * [`metrics`] — a registry of atomic counters, gauges (with
//!   high-water marks), and fixed-bucket histograms. Hot paths hold
//!   pre-registered `Arc` handles and touch only relaxed atomics; the
//!   registry lock is taken at registration and snapshot time only.
//!   Snapshots flatten into [`calliope_types::wire::stats::StatsSnapshot`]
//!   so they can travel over the control plane unchanged.
//! * [`logging`] — a `tracing` subscriber with `RUST_LOG`-style target
//!   filtering and compact or JSON line output on stderr. When no
//!   filter is configured the subscriber is never installed and every
//!   `tracing` macro collapses to one relaxed atomic load.

pub mod logging;
pub mod metrics;

pub use logging::{init_logging, init_logging_with};
pub use metrics::{Counter, Gauge, Histogram, Registry, LATENCY_US_BUCKETS};
