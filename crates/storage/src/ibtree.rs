//! The Integrated B-tree (IB-tree).
//!
//! "When it stores the delivery schedule and data on disk, Calliope
//! interleaves them in a single file using a data structure similar to a
//! primary B-tree. … the key for the search tree is delivery time. A
//! sequential scan of the B-tree gives the data packets in the order
//! they must be delivered to the network." (paper §2.2.1)
//!
//! Structure produced by [`IbTreeWriter`]:
//!
//! * **Data pages** hold packet records in delivery order.
//! * Every `max_keys`-th data page *embeds* an internal page in its tail
//!   — "when an internal page fills up, it is copied into the current
//!   data page instead of being written separately on disk", so the
//!   data-plus-index write costs a single transfer and seek.
//! * The **root** is one entry per embedded internal page. It is tiny
//!   (one entry per 1024 data pages under the paper's geometry — a 256 GB
//!   file needs 1024 entries) and lives in the file's catalog metadata,
//!   which the MSU caches entirely in memory.
//!
//! During sequential reads the embedded internal pages are "read in as
//! part of the data page but ignored": [`IbTreeReader::page`] returns
//! the records; the 28 KB tail rides along for free and appears in only
//! ~0.1% of pages.
//!
//! The writer is a pure state machine: it emits [`FinishedPage`] buffers
//! and never touches a device, so the MSU's disk process decides when
//! and where pages hit the disk (write-behind), and tests can drive it
//! without I/O.

use crate::catalog::RootEntry;
use crate::page::{DataPage, DataPageBuilder, Geometry, InternalPage};
use calliope_proto::record::PacketRecord;
use calliope_types::error::{Error, Result};
use calliope_types::time::MediaTime;

/// A completed page, ready to be appended at file-page `index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinishedPage {
    /// File-relative page index (0-based, dense).
    pub index: u64,
    /// The full page buffer (`geometry.page_size` bytes).
    pub data: Vec<u8>,
    /// Media payload bytes contained (for catalog accounting).
    pub payload_bytes: u64,
}

/// Statistics reported when a tree is finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Total pages emitted (including any trailer).
    pub pages: u64,
    /// Pages that embed an internal page.
    pub internal_pages: u64,
    /// Trailer pages (record-less pages emitted only to host an internal
    /// page that found no room elsewhere).
    pub trailer_pages: u64,
    /// Total records stored.
    pub records: u64,
    /// Total media payload bytes stored.
    pub payload_bytes: u64,
    /// Delivery offset of the last record — the recording's duration.
    pub duration: MediaTime,
}

/// Builds an IB-tree from a monotone stream of packet records.
#[derive(Debug)]
pub struct IbTreeWriter {
    geo: Geometry,
    current: DataPageBuilder,
    current_payload: u64,
    pages_done: u64,
    l1: InternalPage,
    root: Vec<RootEntry>,
    stats: WriterStats,
}

impl IbTreeWriter {
    /// Creates a writer for the given geometry.
    pub fn new(geo: Geometry) -> Result<IbTreeWriter> {
        geo.validate()?;
        Ok(IbTreeWriter {
            geo,
            current: DataPageBuilder::new(geo, false),
            current_payload: 0,
            pages_done: 0,
            l1: InternalPage::default(),
            root: Vec::new(),
            stats: WriterStats::default(),
        })
    }

    /// The root entries accumulated so far (complete after `finish`).
    pub fn root(&self) -> &[RootEntry] {
        &self.root
    }

    fn start_new_page(&mut self) {
        // The page under construction hosts an internal page exactly when
        // the L1 buffer filled while the previous pages were written.
        let hosts = self.l1.entries.len() >= self.geo.max_keys;
        self.current = DataPageBuilder::new(self.geo, hosts);
        self.current_payload = 0;
    }

    /// Finishes the page under construction. `embed_final` additionally
    /// embeds the (partial) L1 buffer, including this page's own entry —
    /// used only at file finish time.
    fn finish_current(&mut self, embed_final: bool) -> Result<FinishedPage> {
        let idx = self.pages_done;
        let first_key = self
            .current
            .first_key()
            .ok_or_else(|| Error::internal("finishing an empty data page"))?;
        let hosts_full_l1 = self.l1.entries.len() >= self.geo.max_keys;
        let builder = std::mem::replace(&mut self.current, DataPageBuilder::new(self.geo, false));

        let data = if hosts_full_l1 {
            // The page was constructed with tail space reserved; embed the
            // full L1 covering the previous max_keys pages.
            let internal = std::mem::take(&mut self.l1);
            self.root.push(RootEntry {
                first_key: internal.entries[0].0,
                page: idx,
            });
            self.stats.internal_pages += 1;
            builder.finish(Some(&internal))?
        } else if embed_final {
            // Final page of the file: fold the remaining entries — plus
            // this page's own — into its tail (caller checked the room).
            let mut internal = std::mem::take(&mut self.l1);
            internal.entries.push((first_key, idx));
            self.root.push(RootEntry {
                first_key: internal.entries[0].0,
                page: idx,
            });
            self.stats.internal_pages += 1;
            let page = builder.finish(Some(&internal))?;
            self.pages_done += 1;
            self.stats.pages += 1;
            return Ok(FinishedPage {
                index: idx,
                data: page,
                payload_bytes: self.current_payload,
            });
        } else {
            builder.finish(None)?
        };

        self.pages_done += 1;
        self.stats.pages += 1;
        self.l1.entries.push((first_key, idx));
        let payload = self.current_payload;
        self.current_payload = 0;
        Ok(FinishedPage {
            index: idx,
            data,
            payload_bytes: payload,
        })
    }

    /// Adds one record (keys must be non-decreasing). Returns a finished
    /// page when the record caused one to fill.
    pub fn push(&mut self, rec: &PacketRecord) -> Result<Option<FinishedPage>> {
        let mut emitted = None;
        if !self.current.push(rec)? {
            let page = self.finish_current(false)?;
            self.start_new_page();
            if !self.current.push(rec)? {
                return Err(Error::internal("record rejected by a fresh page"));
            }
            emitted = Some(page);
        }
        if rec.kind == calliope_types::wire::data::PacketKind::Media {
            self.stats.payload_bytes += rec.payload.len() as u64;
            self.current_payload += rec.payload.len() as u64;
        }
        self.stats.records += 1;
        self.stats.duration = rec.offset;
        Ok(emitted)
    }

    /// Finishes the file: flushes the partial page and embeds the
    /// remaining index entries, emitting at most two pages (the final
    /// data page and, if it lacked tail room, a record-less trailer).
    ///
    /// Returns the final pages, the complete root, and statistics.
    pub fn finish(mut self) -> Result<(Vec<FinishedPage>, Vec<RootEntry>, WriterStats)> {
        let mut out = Vec::new();

        if !self.current.is_empty() {
            let hosts_full_l1 = self.l1.entries.len() >= self.geo.max_keys;
            // Can the final L1 (current entries + this page's own) ride in
            // this page's tail? Only if the page wasn't already reserved
            // for a full L1 and has the room and the entry count fits.
            let fits = !hosts_full_l1
                && self.current.can_embed_internal()
                && self.l1.entries.len() < self.geo.max_keys;
            if fits {
                out.push(self.finish_current(true)?);
            } else {
                out.push(self.finish_current(false)?);
            }
        }

        if !self.l1.entries.is_empty() {
            // Entries remain (possibly including the just-finished page):
            // host them in a record-less trailer page.
            let internal = std::mem::take(&mut self.l1);
            let idx = self.pages_done;
            self.root.push(RootEntry {
                first_key: internal.entries[0].0,
                page: idx,
            });
            let builder = DataPageBuilder::new(self.geo, true);
            let data = builder.finish(Some(&internal))?;
            self.pages_done += 1;
            self.stats.pages += 1;
            self.stats.internal_pages += 1;
            self.stats.trailer_pages += 1;
            out.push(FinishedPage {
                index: idx,
                data,
                payload_bytes: 0,
            });
        }

        Ok((out, self.root, self.stats))
    }
}

/// A position inside an IB-tree file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeekPos {
    /// File-relative page index (`pages` = end of file).
    pub page: u64,
    /// Record index within that page.
    pub record: usize,
}

/// Reads and seeks an IB-tree given its root (from the catalog).
///
/// The reader is I/O-agnostic: callers supply a `read_page(index, buf)`
/// closure, so it works identically over the MSU file system, a plain
/// buffer in tests, or the simulator.
#[derive(Clone, Debug)]
pub struct IbTreeReader {
    geo: Geometry,
    root: Vec<RootEntry>,
    pages: u64,
}

impl IbTreeReader {
    /// Creates a reader over a file of `pages` pages with the given root.
    pub fn new(geo: Geometry, root: Vec<RootEntry>, pages: u64) -> Result<IbTreeReader> {
        geo.validate()?;
        Ok(IbTreeReader { geo, root, pages })
    }

    /// Number of pages in the file.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The end-of-file position.
    pub fn end(&self) -> SeekPos {
        SeekPos {
            page: self.pages,
            record: 0,
        }
    }

    /// Parses one page.
    pub fn page<F>(&self, idx: u64, mut read_page: F) -> Result<DataPage>
    where
        F: FnMut(u64, &mut [u8]) -> Result<()>,
    {
        if idx >= self.pages {
            return Err(Error::storage(format!(
                "page {idx} out of range ({} pages)",
                self.pages
            )));
        }
        let mut buf = vec![0u8; self.geo.page_size];
        read_page(idx, &mut buf)?;
        DataPage::decode(&self.geo, &buf)
    }

    /// Finds the position of the first record whose delivery offset is
    /// `≥ t` — the packet to resume with after a seek. Returns
    /// [`IbTreeReader::end`] if every record precedes `t`.
    ///
    /// "During seeks, Calliope traverses the internal pages of the search
    /// tree in the usual way." (paper §2.2.1) — root entry → embedded
    /// internal page → data page → scan.
    pub fn seek<F>(&self, t: MediaTime, mut read_page: F) -> Result<SeekPos>
    where
        F: FnMut(u64, &mut [u8]) -> Result<()>,
    {
        if self.pages == 0 || self.root.is_empty() {
            return Ok(self.end());
        }
        let key = t.as_micros();

        // Level 2: pick the root entry governing `key`.
        let ri = match self.root.binary_search_by(|e| e.first_key.cmp(&key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };

        // Level 1: read the page hosting the internal page.
        let host = self.page(self.root[ri].page, &mut read_page)?;
        let internal = host.internal.ok_or_else(|| {
            Error::storage(format!(
                "root entry points at page {} which embeds no internal page",
                self.root[ri].page
            ))
        })?;
        if internal.entries.is_empty() {
            return Err(Error::storage("embedded internal page is empty"));
        }

        // Level 0: scan forward from the governed data page for the first
        // record at or after `t` (records are globally sorted, so the
        // first qualifying record in page order is the answer).
        let mut p = internal.entries[internal.locate(key)].1;
        while p < self.pages {
            let page = self.page(p, &mut read_page)?;
            if let Some(i) = page.records.iter().position(|r| r.offset >= t) {
                return Ok(SeekPos { page: p, record: i });
            }
            p += 1;
        }
        Ok(self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::wire::data::PacketKind;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn rec(key_us: u64, len: usize) -> PacketRecord {
        PacketRecord::media(MediaTime(key_us), vec![(key_us % 251) as u8; len])
    }

    /// Builds a tree in memory, returning (pages-by-index, root, stats,
    /// records pushed).
    fn build(
        geo: Geometry,
        recs: &[PacketRecord],
    ) -> (HashMap<u64, Vec<u8>>, Vec<RootEntry>, WriterStats) {
        let mut w = IbTreeWriter::new(geo).unwrap();
        let mut pages = HashMap::new();
        for r in recs {
            if let Some(p) = w.push(r).unwrap() {
                pages.insert(p.index, p.data);
            }
        }
        let (finals, root, stats) = w.finish().unwrap();
        for p in finals {
            pages.insert(p.index, p.data);
        }
        (pages, root, stats)
    }

    fn read_all(
        geo: Geometry,
        pages: &HashMap<u64, Vec<u8>>,
        root: &[RootEntry],
        n: u64,
    ) -> Vec<PacketRecord> {
        let reader = IbTreeReader::new(geo, root.to_vec(), n).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            let page = reader
                .page(i, |idx, buf| {
                    buf.copy_from_slice(&pages[&idx]);
                    Ok(())
                })
                .unwrap();
            out.extend(page.records);
        }
        out
    }

    #[test]
    fn small_tree_round_trips() {
        let geo = Geometry::tiny();
        let recs: Vec<_> = (0..20).map(|i| rec(i * 1000, 100)).collect();
        let (pages, root, stats) = build(geo, &recs);
        assert_eq!(stats.records, 20);
        assert_eq!(stats.pages as usize, pages.len());
        assert!(stats.internal_pages >= 1, "every tree has an index");
        assert_eq!(read_all(geo, &pages, &root, stats.pages), recs);
        // Pages are dense 0..n.
        for i in 0..stats.pages {
            assert!(pages.contains_key(&i), "page {i} missing");
        }
    }

    #[test]
    fn single_page_tree_embeds_index_in_itself() {
        let geo = Geometry::tiny();
        let recs = vec![rec(0, 10), rec(5, 10)];
        let (pages, root, stats) = build(geo, &recs);
        assert_eq!(stats.pages, 1);
        assert_eq!(stats.trailer_pages, 0);
        assert_eq!(root.len(), 1);
        assert_eq!(root[0].page, 0);
        let all = read_all(geo, &pages, &root, 1);
        assert_eq!(all, recs);
    }

    #[test]
    fn empty_tree_is_fine() {
        let geo = Geometry::tiny();
        let (pages, root, stats) = build(geo, &[]);
        assert!(pages.is_empty());
        assert!(root.is_empty());
        assert_eq!(stats.pages, 0);
        let reader = IbTreeReader::new(geo, root, 0).unwrap();
        let pos = reader
            .seek(MediaTime::ZERO, |_, _| panic!("no pages to read"))
            .unwrap();
        assert_eq!(pos, reader.end());
    }

    #[test]
    fn internal_pages_appear_every_max_keys_pages() {
        let geo = Geometry::tiny(); // max_keys = 4
                                    // Large records: ~2 per page (page cap 1024-40=984; record 13+400).
        let recs: Vec<_> = (0..60).map(|i| rec(i * 100, 400)).collect();
        let (pages, root, stats) = build(geo, &recs);
        assert!(
            stats.pages >= 12,
            "want a multi-internal tree, got {}",
            stats.pages
        );
        assert!(root.len() >= 2, "multiple internal pages expected");
        // Root entries ascend and point at pages that embed internals.
        for w in root.windows(2) {
            assert!(w[0].first_key <= w[1].first_key);
        }
        let reader = IbTreeReader::new(geo, root.clone(), stats.pages).unwrap();
        for e in &root {
            let page = reader
                .page(e.page, |idx, buf| {
                    buf.copy_from_slice(&pages[&idx]);
                    Ok(())
                })
                .unwrap();
            assert!(page.internal.is_some(), "root points at {}", e.page);
        }
        // Full round trip.
        assert_eq!(read_all(geo, &pages, &root, stats.pages), recs);
    }

    #[test]
    fn seek_matches_linear_scan_reference() {
        let geo = Geometry::tiny();
        // Irregular gaps, duplicate keys, varying sizes.
        let mut key = 0u64;
        let mut recs = Vec::new();
        for i in 0..120u64 {
            if i % 7 != 0 {
                key += (i * 37) % 900;
            } // every 7th record repeats its predecessor's key
            recs.push(rec(key, ((i * 53) % 350) as usize));
        }
        let (pages, root, stats) = build(geo, &recs);
        let reader = IbTreeReader::new(geo, root, stats.pages).unwrap();
        let read = |idx: u64, buf: &mut [u8]| {
            buf.copy_from_slice(&pages[&idx]);
            Ok(())
        };
        // Reference: flatten and find first record ≥ t.
        let flat = read_all(geo, &pages, reader.root_for_test(), stats.pages);
        assert_eq!(flat.len(), recs.len());
        for t in (0..=key + 500).step_by(61) {
            let pos = reader.seek(MediaTime(t), read).unwrap();
            let reference = flat.iter().position(|r| r.offset.as_micros() >= t);
            match reference {
                None => assert_eq!(pos, reader.end(), "t={t}"),
                Some(global_idx) => {
                    // Convert the seek position back to a global index.
                    let mut g = 0usize;
                    for p in 0..pos.page {
                        g += reader.page(p, read).unwrap().records.len();
                    }
                    g += pos.record;
                    // Duplicate keys may legitimately resolve to any record
                    // of the same offset; check offsets match exactly.
                    assert_eq!(
                        flat[g].offset, flat[global_idx].offset,
                        "t={t}: seek found offset {:?}, reference {:?}",
                        flat[g].offset, flat[global_idx].offset
                    );
                    assert!(flat[g].offset.as_micros() >= t);
                    // And nothing earlier also satisfies ≥ t at a smaller offset.
                    assert!(g >= global_idx);
                }
            }
        }
    }

    #[test]
    fn control_records_do_not_count_as_payload() {
        let geo = Geometry::tiny();
        let mut w = IbTreeWriter::new(geo).unwrap();
        w.push(&rec(0, 100)).unwrap();
        w.push(&PacketRecord {
            offset: MediaTime(10),
            kind: PacketKind::Control,
            payload: vec![0; 50],
        })
        .unwrap();
        let (_, _, stats) = w.finish().unwrap();
        assert_eq!(stats.payload_bytes, 100);
        assert_eq!(stats.records, 2);
    }

    #[test]
    fn out_of_order_record_is_rejected() {
        let geo = Geometry::tiny();
        let mut w = IbTreeWriter::new(geo).unwrap();
        w.push(&rec(100, 10)).unwrap();
        assert!(w.push(&rec(50, 10)).is_err());
    }

    #[test]
    fn duration_tracks_last_record() {
        let geo = Geometry::tiny();
        let mut w = IbTreeWriter::new(geo).unwrap();
        for t in [0u64, 500, 12_000] {
            w.push(&rec(t, 5)).unwrap();
        }
        let (_, _, stats) = w.finish().unwrap();
        assert_eq!(stats.duration, MediaTime(12_000));
    }

    impl IbTreeReader {
        fn root_for_test(&self) -> &[RootEntry] {
            &self.root
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_build_read_identity(
            gaps in proptest::collection::vec(0u64..5_000, 1..300),
            lens in proptest::collection::vec(0usize..300, 1..300),
        ) {
            let geo = Geometry::tiny();
            let n = gaps.len().min(lens.len());
            let mut key = 0u64;
            let mut recs = Vec::with_capacity(n);
            for i in 0..n {
                key += gaps[i];
                recs.push(rec(key, lens[i]));
            }
            let (pages, root, stats) = build(geo, &recs);
            prop_assert_eq!(read_all(geo, &pages, &root, stats.pages), recs);
            prop_assert_eq!(stats.pages as usize, pages.len());
        }

        #[test]
        fn prop_seek_lands_on_first_at_or_after(
            gaps in proptest::collection::vec(1u64..2_000, 10..150),
            probe in 0u64..300_000,
        ) {
            let geo = Geometry::tiny();
            let mut key = 0u64;
            let mut recs = Vec::new();
            for g in &gaps {
                key += g;
                recs.push(rec(key, 64));
            }
            let (pages, root, stats) = build(geo, &recs);
            let reader = IbTreeReader::new(geo, root, stats.pages).unwrap();
            let read = |idx: u64, buf: &mut [u8]| { buf.copy_from_slice(&pages[&idx]); Ok(()) };
            let pos = reader.seek(MediaTime(probe), read).unwrap();
            let expect = recs.iter().find(|r| r.offset.as_micros() >= probe);
            if let Some(e) = expect {
                let page = reader.page(pos.page, read).unwrap();
                prop_assert_eq!(page.records[pos.record].offset, e.offset);
            } else {
                prop_assert_eq!(pos, reader.end());
            }
        }
    }
}
