//! The on-disk packet record.
//!
//! For variable-rate streams, Calliope "interleaves the delivery schedule
//! and data in a single file" (paper §2.2.1). The unit of interleaving is
//! the [`PacketRecord`]: each recorded packet is stored together with its
//! delivery offset and kind, and the IB-tree's data pages are simply
//! sequences of packet records in delivery order.
//!
//! This module defines the byte layout shared by `calliope-storage`
//! (which packs records into 256 KB data pages) and `calliope-msu` (whose
//! network process unpacks pages back into timed packets).

use calliope_types::time::MediaTime;
use calliope_types::wire::data::PacketKind;
use calliope_types::wire::WireError;

/// Fixed overhead of one encoded packet record, in bytes:
/// offset (8) + kind (1) + payload length (4).
pub const RECORD_HEADER_LEN: usize = 8 + 1 + 4;

/// One recorded packet: a delivery offset, a kind, and the payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketRecord {
    /// Delivery time as an offset from the start of the recording.
    pub offset: MediaTime,
    /// Media or interleaved control data.
    pub kind: PacketKind,
    /// The packet payload (protocol bytes, header included).
    pub payload: Vec<u8>,
}

impl PacketRecord {
    /// Creates a media record.
    pub fn media(offset: MediaTime, payload: Vec<u8>) -> Self {
        PacketRecord {
            offset,
            kind: PacketKind::Media,
            payload,
        }
    }

    /// Creates an interleaved control record.
    pub fn control(offset: MediaTime, payload: Vec<u8>) -> Self {
        PacketRecord {
            offset,
            kind: PacketKind::Control,
            payload,
        }
    }

    /// Total encoded size of this record.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_LEN + self.payload.len()
    }

    /// Appends the record's encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.offset.as_micros().to_le_bytes());
        buf.push(self.kind.tag());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Decodes one record from the front of `buf`, returning it and the
    /// number of bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Result<(PacketRecord, usize), WireError> {
        if buf.len() < RECORD_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "packet record header",
            });
        }
        let offset = u64::from_le_bytes(buf[0..8].try_into().expect("slice is 8 bytes"));
        let kind_tag = buf[8];
        let kind = PacketKind::from_tag(kind_tag).ok_or(WireError::BadTag {
            what: "packet record kind",
            tag: kind_tag,
        })?;
        let len = u32::from_le_bytes(buf[9..13].try_into().expect("slice is 4 bytes")) as usize;
        if buf.len() < RECORD_HEADER_LEN + len {
            return Err(WireError::Truncated {
                what: "packet record payload",
            });
        }
        let payload = buf[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len].to_vec();
        Ok((
            PacketRecord {
                offset: MediaTime(offset),
                kind,
                payload,
            },
            RECORD_HEADER_LEN + len,
        ))
    }

    /// Decodes every record packed into `buf` (e.g. the record region of
    /// one data page).
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<PacketRecord>, WireError> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let (rec, used) = PacketRecord::decode_from(buf)?;
            buf = &buf[used..];
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_round_trip() {
        let rec = PacketRecord::media(MediaTime::from_millis(40), vec![1, 2, 3, 4]);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (back, used) = PacketRecord::decode_from(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn several_records_decode_in_order() {
        let recs = vec![
            PacketRecord::media(MediaTime::from_millis(0), vec![0; 10]),
            PacketRecord::control(MediaTime::from_millis(5), vec![1; 3]),
            PacketRecord::media(MediaTime::from_millis(33), vec![2; 1000]),
        ];
        let mut buf = Vec::new();
        for r in &recs {
            r.encode_into(&mut buf);
        }
        assert_eq!(PacketRecord::decode_all(&buf).unwrap(), recs);
    }

    #[test]
    fn truncation_is_detected() {
        let rec = PacketRecord::media(MediaTime::from_millis(1), vec![9; 50]);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(PacketRecord::decode_from(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_kind_is_rejected() {
        let rec = PacketRecord::media(MediaTime::ZERO, vec![]);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        buf[8] = 99;
        assert!(PacketRecord::decode_from(&buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(off in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..2048), ctrl in any::<bool>()) {
            let rec = if ctrl {
                PacketRecord::control(MediaTime(off), payload)
            } else {
                PacketRecord::media(MediaTime(off), payload)
            };
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, used) = PacketRecord::decode_from(&buf).unwrap();
            prop_assert_eq!(back, rec);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn prop_decode_all_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = PacketRecord::decode_all(&bytes);
        }
    }
}
