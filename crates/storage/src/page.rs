//! Data-page and internal-page layout for the Integrated B-tree.
//!
//! "Calliope's variant on B-tree is called Integrated B-tree (IB-tree)
//! because it integrates the internal pages into the data pages. …
//! When an internal page fills up, it is copied into the current data
//! page instead of being written separately on disk." (paper §2.2.1)
//!
//! A data page is one file-system block. Its layout:
//!
//! ```text
//! +--------------------------+ 0
//! | 40-byte page header      |
//! +--------------------------+ 40
//! | packed packet records    |
//! | (delivery order)         |
//! +--------------------------+ 40 + record_bytes
//! | free space               |
//! +--------------------------+ page_size - internal_size   (only if
//! | embedded internal page   |    the HAS_INTERNAL flag is set)
//! +--------------------------+ page_size
//! ```
//!
//! The paper's geometry is 256 KB pages with 28 KB internal pages of
//! 1024 keys; [`Geometry`] parameterizes this so tests can exercise
//! multi-internal-page trees cheaply.

use crate::layout::{BLOCK_SIZE, INTERNAL_PAGE_KEYS, INTERNAL_PAGE_SIZE};
use calliope_proto::record::PacketRecord;
use calliope_types::error::{Error, Result};

/// Magic number opening every data page.
pub const PAGE_MAGIC: u32 = 0xCA11_DA7A;

/// Magic number opening every embedded internal page.
pub const INTERNAL_MAGIC: u32 = 0xCA11_1DE8;

/// Byte length of the data-page header.
pub const PAGE_HEADER_LEN: usize = 40;

/// Byte length of the internal-page header.
pub const INTERNAL_HEADER_LEN: usize = 16;

/// Bytes per internal-page entry (key + page index).
pub const INTERNAL_ENTRY_LEN: usize = 16;

/// Flag: this data page embeds an internal page in its tail.
const FLAG_HAS_INTERNAL: u32 = 1;

/// IB-tree sizing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Data page size (one file-system block).
    pub page_size: usize,
    /// Embedded internal page size.
    pub internal_size: usize,
    /// Maximum keys per internal page.
    pub max_keys: usize,
}

impl Geometry {
    /// The paper's geometry: 256 KB pages, 28 KB internal pages, 1024
    /// keys.
    pub const fn paper() -> Geometry {
        Geometry {
            page_size: BLOCK_SIZE,
            internal_size: INTERNAL_PAGE_SIZE,
            max_keys: INTERNAL_PAGE_KEYS,
        }
    }

    /// A tiny geometry for tests: multi-internal-page trees appear after
    /// a few dozen records.
    pub const fn tiny() -> Geometry {
        Geometry {
            page_size: 1024,
            internal_size: 128,
            max_keys: 4,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        let needed = INTERNAL_HEADER_LEN + self.max_keys * INTERNAL_ENTRY_LEN;
        if self.internal_size < needed {
            return Err(Error::storage(format!(
                "internal page of {} bytes cannot hold {} keys ({} needed)",
                self.internal_size, self.max_keys, needed
            )));
        }
        if self.page_size < PAGE_HEADER_LEN + self.internal_size + 64 {
            return Err(Error::storage(
                "page too small for header + internal page + any records",
            ));
        }
        if self.max_keys == 0 {
            return Err(Error::storage("max_keys must be positive"));
        }
        Ok(())
    }

    /// Record capacity of a page, with or without an embedded internal
    /// page.
    pub fn record_capacity(&self, hosts_internal: bool) -> usize {
        self.page_size
            - PAGE_HEADER_LEN
            - if hosts_internal {
                self.internal_size
            } else {
                0
            }
    }
}

/// An internal ("index") page: sorted `(first_key, data_page)` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InternalPage {
    /// Entries in ascending key order. `key` is the delivery offset (µs)
    /// of the first record in data page `page` (a file-relative index).
    pub entries: Vec<(u64, u64)>,
}

impl InternalPage {
    /// Serializes into an `internal_size` buffer.
    pub fn encode(&self, geo: &Geometry) -> Result<Vec<u8>> {
        if self.entries.len() > geo.max_keys {
            return Err(Error::internal(format!(
                "internal page overflow: {} entries (max {})",
                self.entries.len(),
                geo.max_keys
            )));
        }
        let mut buf = vec![0u8; geo.internal_size];
        buf[0..4].copy_from_slice(&INTERNAL_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (i, (key, page)) in self.entries.iter().enumerate() {
            let at = INTERNAL_HEADER_LEN + i * INTERNAL_ENTRY_LEN;
            buf[at..at + 8].copy_from_slice(&key.to_le_bytes());
            buf[at + 8..at + 16].copy_from_slice(&page.to_le_bytes());
        }
        Ok(buf)
    }

    /// Parses an internal page from an `internal_size` slice.
    pub fn decode(buf: &[u8]) -> Result<InternalPage> {
        if buf.len() < INTERNAL_HEADER_LEN {
            return Err(Error::storage("internal page truncated"));
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != INTERNAL_MAGIC {
            return Err(Error::storage("bad internal page magic"));
        }
        let count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        let need = INTERNAL_HEADER_LEN + count * INTERNAL_ENTRY_LEN;
        if buf.len() < need {
            return Err(Error::storage("internal page entry region truncated"));
        }
        let mut entries = Vec::with_capacity(count);
        let mut prev_key = None;
        for i in 0..count {
            let at = INTERNAL_HEADER_LEN + i * INTERNAL_ENTRY_LEN;
            let key = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
            let page = u64::from_le_bytes(buf[at + 8..at + 16].try_into().expect("8 bytes"));
            if let Some(prev) = prev_key {
                if key < prev {
                    return Err(Error::storage("internal page keys out of order"));
                }
            }
            prev_key = Some(key);
            entries.push((key, page));
        }
        Ok(InternalPage { entries })
    }

    /// Index of the entry governing key `t`: the last entry with
    /// `key ≤ t`, or 0 if `t` precedes every key.
    pub fn locate(&self, t: u64) -> usize {
        match self.entries.binary_search_by(|&(k, _)| k.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

/// Accumulates packet records into one data page.
#[derive(Debug)]
pub struct DataPageBuilder {
    geo: Geometry,
    hosts_internal: bool,
    records: Vec<u8>,
    count: u32,
    first_key: Option<u64>,
    last_key: u64,
}

impl DataPageBuilder {
    /// Starts an empty page. `hosts_internal` reserves the tail for an
    /// embedded internal page, reducing record capacity.
    pub fn new(geo: Geometry, hosts_internal: bool) -> DataPageBuilder {
        DataPageBuilder {
            geo,
            hosts_internal,
            records: Vec::new(),
            count: 0,
            first_key: None,
            last_key: 0,
        }
    }

    /// True if no records have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of records so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Delivery offset of the first record, if any.
    pub fn first_key(&self) -> Option<u64> {
        self.first_key
    }

    /// Bytes of record capacity still free.
    pub fn free(&self) -> usize {
        self.geo.record_capacity(self.hosts_internal) - self.records.len()
    }

    /// Whether an internal page could still be embedded at finish time
    /// (enough tail space is unused).
    pub fn can_embed_internal(&self) -> bool {
        self.hosts_internal || self.geo.record_capacity(true) >= self.records.len()
    }

    /// Tries to add a record; returns `false` (and leaves the page
    /// unchanged) if it does not fit.
    ///
    /// Records must arrive in non-decreasing key order; the IB-tree's
    /// search structure depends on it.
    pub fn push(&mut self, rec: &PacketRecord) -> Result<bool> {
        let key = rec.offset.as_micros();
        if self.first_key.is_some() && key < self.last_key {
            return Err(Error::internal(format!(
                "record key {key} precedes page's last key {}",
                self.last_key
            )));
        }
        if rec.encoded_len() > self.free() {
            // A single record larger than an empty page can never fit.
            if self.is_empty() {
                return Err(Error::storage(format!(
                    "packet of {} bytes exceeds page capacity {}",
                    rec.encoded_len(),
                    self.geo.record_capacity(self.hosts_internal)
                )));
            }
            return Ok(false);
        }
        rec.encode_into(&mut self.records);
        self.first_key.get_or_insert(key);
        self.last_key = key;
        self.count += 1;
        Ok(true)
    }

    /// Finishes the page, optionally embedding an internal page in its
    /// tail, and returns the full page buffer.
    pub fn finish(self, internal: Option<&InternalPage>) -> Result<Vec<u8>> {
        let embeds = internal.is_some();
        if embeds && self.records.len() > self.geo.record_capacity(true) {
            return Err(Error::internal(
                "records overflow the space reserved for the internal page",
            ));
        }
        let mut buf = vec![0u8; self.geo.page_size];
        let flags = if embeds { FLAG_HAS_INTERNAL } else { 0 };
        buf[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&flags.to_le_bytes());
        buf[8..12].copy_from_slice(&self.count.to_le_bytes());
        buf[12..16].copy_from_slice(&(self.records.len() as u32).to_le_bytes());
        buf[16..24].copy_from_slice(&self.first_key.unwrap_or(u64::MAX).to_le_bytes());
        buf[24..32].copy_from_slice(&self.last_key.to_le_bytes());
        // Bytes 32..40 reserved.
        buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + self.records.len()].copy_from_slice(&self.records);
        if let Some(internal) = internal {
            let at = self.geo.page_size - self.geo.internal_size;
            buf[at..].copy_from_slice(&internal.encode(&self.geo)?);
        }
        Ok(buf)
    }
}

/// A parsed data page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPage {
    /// Packet records in delivery order.
    pub records: Vec<PacketRecord>,
    /// The embedded internal page, if the flag was set.
    pub internal: Option<InternalPage>,
    /// First record key (`u64::MAX` for a record-less trailer page).
    pub first_key: u64,
    /// Last record key.
    pub last_key: u64,
}

impl DataPage {
    /// Parses a page buffer.
    pub fn decode(geo: &Geometry, buf: &[u8]) -> Result<DataPage> {
        if buf.len() != geo.page_size {
            return Err(Error::storage(format!(
                "page buffer is {} bytes, expected {}",
                buf.len(),
                geo.page_size
            )));
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != PAGE_MAGIC {
            return Err(Error::storage("bad data page magic"));
        }
        let flags = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let count = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let record_bytes = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        let first_key = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let last_key = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
        let embeds = flags & FLAG_HAS_INTERNAL != 0;
        if record_bytes > geo.record_capacity(embeds) {
            return Err(Error::storage("record region exceeds page capacity"));
        }
        let records =
            PacketRecord::decode_all(&buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + record_bytes])
                .map_err(Error::from)?;
        if records.len() != count as usize {
            return Err(Error::storage(format!(
                "page claims {count} records but {} decoded",
                records.len()
            )));
        }
        let internal = if embeds {
            let at = geo.page_size - geo.internal_size;
            Some(InternalPage::decode(&buf[at..])?)
        } else {
            None
        };
        Ok(DataPage {
            records,
            internal,
            first_key,
            last_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::time::MediaTime;
    use proptest::prelude::*;

    fn rec(key_us: u64, len: usize) -> PacketRecord {
        PacketRecord::media(MediaTime(key_us), vec![0xAB; len])
    }

    #[test]
    fn paper_geometry_is_valid_and_matches_sizes() {
        let g = Geometry::paper();
        g.validate().unwrap();
        assert_eq!(g.page_size, 256 * 1024);
        assert_eq!(g.internal_size, 28 * 1024);
        assert_eq!(g.max_keys, 1024);
        // 28 KB comfortably holds 1024 sixteen-byte entries + header.
        assert!(INTERNAL_HEADER_LEN + 1024 * INTERNAL_ENTRY_LEN <= g.internal_size);
    }

    #[test]
    fn tiny_geometry_is_valid() {
        Geometry::tiny().validate().unwrap();
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = Geometry::tiny();
        g.internal_size = 8;
        assert!(g.validate().is_err());
        let mut g = Geometry::tiny();
        g.page_size = 100;
        assert!(g.validate().is_err());
        let mut g = Geometry::tiny();
        g.max_keys = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn page_round_trip_without_internal() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, false);
        let recs = vec![rec(10, 50), rec(20, 60), rec(20, 5), rec(35, 0)];
        for r in &recs {
            assert!(b.push(r).unwrap());
        }
        let page = b.finish(None).unwrap();
        assert_eq!(page.len(), geo.page_size);
        let parsed = DataPage::decode(&geo, &page).unwrap();
        assert_eq!(parsed.records, recs);
        assert_eq!(parsed.first_key, 10);
        assert_eq!(parsed.last_key, 35);
        assert!(parsed.internal.is_none());
    }

    #[test]
    fn page_round_trip_with_internal() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, true);
        assert!(b.push(&rec(5, 40)).unwrap());
        let internal = InternalPage {
            entries: vec![(0, 0), (100, 1), (250, 2)],
        };
        let page = b.finish(Some(&internal)).unwrap();
        let parsed = DataPage::decode(&geo, &page).unwrap();
        assert_eq!(parsed.internal.as_ref().unwrap(), &internal);
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn full_page_rejects_more_records() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, false);
        let capacity = geo.record_capacity(false);
        let big = rec(1, capacity - 13); // exactly fills (13-byte header)
        assert!(b.push(&big).unwrap());
        assert_eq!(b.free(), 0);
        assert!(!b.push(&rec(2, 1)).unwrap(), "no room left");
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn oversized_record_is_a_hard_error() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, false);
        let too_big = rec(1, geo.page_size);
        assert!(b.push(&too_big).is_err());
    }

    #[test]
    fn out_of_order_keys_are_rejected() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, false);
        b.push(&rec(100, 10)).unwrap();
        assert!(b.push(&rec(50, 10)).is_err());
    }

    #[test]
    fn internal_page_locate_semantics() {
        let p = InternalPage {
            entries: vec![(0, 0), (100, 1), (200, 2)],
        };
        assert_eq!(p.locate(0), 0);
        assert_eq!(p.locate(99), 0);
        assert_eq!(p.locate(100), 1);
        assert_eq!(p.locate(150), 1);
        assert_eq!(p.locate(200), 2);
        assert_eq!(p.locate(u64::MAX), 2);
    }

    #[test]
    fn internal_page_overflow_is_rejected() {
        let geo = Geometry::tiny(); // max 4 keys
        let p = InternalPage {
            entries: (0..5).map(|i| (i * 10, i)).collect(),
        };
        assert!(p.encode(&geo).is_err());
    }

    #[test]
    fn internal_page_decode_rejects_corruption() {
        let geo = Geometry::tiny();
        let p = InternalPage {
            entries: vec![(1, 0), (2, 1)],
        };
        let good = p.encode(&geo).unwrap();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(InternalPage::decode(&bad_magic).is_err());
        // Out-of-order keys.
        let q = InternalPage {
            entries: vec![(5, 0), (2, 1)],
        };
        let buf = q.encode(&geo).unwrap();
        assert!(InternalPage::decode(&buf).is_err());
        // Truncated entries.
        assert!(InternalPage::decode(&good[..INTERNAL_HEADER_LEN + 3]).is_err());
    }

    #[test]
    fn data_page_decode_rejects_corruption() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, false);
        b.push(&rec(1, 10)).unwrap();
        let good = b.finish(None).unwrap();
        let mut bad = good.clone();
        bad[0] ^= 1;
        assert!(DataPage::decode(&geo, &bad).is_err());
        let mut bad_count = good.clone();
        bad_count[8] = 99;
        assert!(DataPage::decode(&geo, &bad_count).is_err());
        assert!(DataPage::decode(&geo, &good[..10]).is_err());
    }

    #[test]
    fn empty_trailer_page_round_trips() {
        let geo = Geometry::tiny();
        let b = DataPageBuilder::new(geo, true);
        let internal = InternalPage {
            entries: vec![(7, 3)],
        };
        let page = b.finish(Some(&internal)).unwrap();
        let parsed = DataPage::decode(&geo, &page).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.first_key, u64::MAX);
        assert_eq!(parsed.internal.unwrap().entries, vec![(7, 3)]);
    }

    proptest! {
        #[test]
        fn prop_pages_round_trip(lens in proptest::collection::vec(0usize..120, 1..10), start in 0u64..1_000) {
            let geo = Geometry::tiny();
            let mut b = DataPageBuilder::new(geo, false);
            let mut pushed = Vec::new();
            let mut key = start;
            for len in lens {
                let r = rec(key, len);
                key += 7;
                if b.push(&r).unwrap() {
                    pushed.push(r);
                } else {
                    break;
                }
            }
            let page = b.finish(None).unwrap();
            let parsed = DataPage::decode(&geo, &page).unwrap();
            prop_assert_eq!(parsed.records, pushed);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let geo = Geometry::tiny();
            let mut page = bytes.clone();
            page.resize(geo.page_size, 0);
            let _ = DataPage::decode(&geo, &page);
            let mut internal = bytes;
            internal.resize(geo.internal_size, 0);
            let _ = InternalPage::decode(&internal);
        }
    }
}
