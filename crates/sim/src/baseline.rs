//! The Table 1 baseline experiments.
//!
//! "In order to estimate the maximum potential throughput of Calliope,
//! we measured the performance of several simple programs exercising
//! memory, disks, and network interface." (paper §3.1)
//!
//! Three program shapes, combined per row:
//!
//! * a modified **ttcp** sending 4 KB UDP packets from a large buffer
//!   (so the processor cache cannot fake the copy cost);
//! * one **raw-read** process per disk issuing random 256 KB reads;
//! * both at once, to expose the interference that determines the MSU's
//!   real capacity.
//!
//! [`table1`] runs all five paper rows: FDDI alone, then 1–3 disks on
//! one or two HBAs, alone and with FDDI.

use crate::engine::{EventQueue, SimTime};
use crate::machine::{Completion, IoJob, Machine, MachineParams, SendJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ttcp's packet size in the paper's runs (`-l 4096`).
pub const TTCP_PACKET: u32 = 4096;

/// The raw-read transfer size (one file-system block).
pub const READ_BLOCK: u32 = 256 * 1024;

/// Which programs run in a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// ttcp only.
    FddiOnly,
    /// Raw disk readers only.
    DisksOnly,
    /// Both simultaneously.
    Both,
}

/// Throughputs measured in one scenario, MB/s (10⁶ bytes/s, as in the
/// paper).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// FDDI send throughput, if ttcp ran.
    pub fddi_mb_s: Option<f64>,
    /// Per-disk read throughput, in disk order.
    pub disk_mb_s: Vec<f64>,
}

/// Runs one scenario for `secs` simulated seconds.
pub fn run_scenario(
    params: MachineParams,
    disk_hba: &[usize],
    workload: Workload,
    secs: u64,
    seed: u64,
) -> ScenarioResult {
    let mut m = Machine::new(params, disk_hba.to_vec(), seed);
    let mut q = EventQueue::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let n_disks = disk_hba.len();
    let run_disks = workload != Workload::FddiOnly && n_disks > 0;
    let run_fddi = workload != Workload::DisksOnly;

    if run_disks {
        for d in 0..n_disks {
            let pos = rng.gen_range(0..params.disk.positions);
            m.submit_io(
                &mut q,
                IoJob {
                    disk: d,
                    stream: d,
                    bytes: READ_BLOCK,
                    pos,
                },
            );
        }
    }
    let mut seq = 0u64;
    if run_fddi {
        m.submit_send(
            &mut q,
            SendJob {
                stream: 0,
                seq,
                due: SimTime::ZERO,
                bytes: TTCP_PACKET,
            },
        );
    }

    let horizon = SimTime::from_secs(secs);
    while let Some((t, ev)) = q.pop() {
        if t > horizon {
            break;
        }
        for c in m.handle(&mut q, ev) {
            match c {
                // ttcp is a synchronous sender: the next sendto starts
                // when the previous copy returns.
                Completion::CopyDone(_) if run_fddi => {
                    seq += 1;
                    m.submit_send(
                        &mut q,
                        SendJob {
                            stream: 0,
                            seq,
                            due: SimTime::ZERO,
                            bytes: TTCP_PACKET,
                        },
                    );
                }
                // Raw readers are closed-loop: resubmit immediately.
                Completion::IoComplete(job) if run_disks => {
                    let pos = rng.gen_range(0..params.disk.positions);
                    m.submit_io(&mut q, IoJob { pos, ..job });
                }
                _ => {}
            }
        }
    }

    ScenarioResult {
        fddi_mb_s: run_fddi.then(|| m.stats().wire_bytes as f64 / 1e6 / secs as f64),
        disk_mb_s: (0..n_disks)
            .map(|d| m.disk_bytes(d) as f64 / 1e6 / secs as f64)
            .collect(),
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// The disk→HBA topology.
    pub disk_hba: Vec<usize>,
    /// FDDI-only throughput (only for the "0 disk" row in the paper;
    /// populated for every row here since it is topology-independent).
    pub fddi_only: Option<f64>,
    /// Disk-only throughputs.
    pub disks_only: Vec<f64>,
    /// Simultaneous: FDDI.
    pub both_fddi: f64,
    /// Simultaneous: disks.
    pub both_disks: Vec<f64>,
}

/// The five paper rows, in order.
pub fn paper_topologies() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("0 disk", vec![]),
        ("1 disk (one HBA)", vec![0]),
        ("2 disk (one HBA)", vec![0, 0]),
        ("2 disk (two HBA)", vec![0, 1]),
        ("3 disk (two HBA)", vec![0, 0, 1]),
    ]
}

/// Regenerates Table 1.
pub fn table1(params: MachineParams, secs: u64, seed: u64) -> Vec<Table1Row> {
    paper_topologies()
        .into_iter()
        .map(|(label, disk_hba)| {
            let fddi_only = if disk_hba.is_empty() {
                run_scenario(params, &disk_hba, Workload::FddiOnly, secs, seed).fddi_mb_s
            } else {
                None
            };
            let disks_only = if disk_hba.is_empty() {
                Vec::new()
            } else {
                run_scenario(params, &disk_hba, Workload::DisksOnly, secs, seed).disk_mb_s
            };
            let both = if disk_hba.is_empty() {
                ScenarioResult {
                    fddi_mb_s: Some(0.0),
                    disk_mb_s: Vec::new(),
                }
            } else {
                run_scenario(params, &disk_hba, Workload::Both, secs, seed)
            };
            Table1Row {
                label,
                disk_hba,
                fddi_only,
                disks_only,
                both_fddi: both.fddi_mb_s.unwrap_or(0.0),
                both_disks: both.disk_mb_s,
            }
        })
        .collect()
}

/// One published Table 1 row:
/// `(label, fddi_only, disks_only, both_fddi, both_disks)`.
pub type PaperRow = (&'static str, Option<f64>, Vec<f64>, Option<f64>, Vec<f64>);

/// The paper's published Table 1 values, for side-by-side reporting.
pub fn paper_table1() -> Vec<PaperRow> {
    vec![
        ("0 disk", Some(8.5), vec![], None, vec![]),
        ("1 disk (one HBA)", None, vec![3.6], Some(5.9), vec![3.4]),
        (
            "2 disk (one HBA)",
            None,
            vec![2.8, 2.8],
            Some(4.7),
            vec![2.4, 2.4],
        ),
        (
            "2 disk (two HBA)",
            None,
            vec![2.9, 2.9],
            Some(2.3),
            vec![2.7, 2.7],
        ),
        (
            "3 disk (two HBA)",
            None,
            vec![2.2, 2.2, 2.7],
            Some(1.4),
            vec![1.9, 1.9, 2.5],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    fn fddi_only_row_matches_paper_shape() {
        let r = run_scenario(params(), &[], Workload::FddiOnly, 20, 1);
        let mb = r.fddi_mb_s.unwrap();
        assert!((7.5..9.5).contains(&mb), "fddi-only {mb} (paper 8.5)");
        assert!(r.disk_mb_s.is_empty());
    }

    #[test]
    fn combined_run_degrades_both_sides() {
        let solo_disk = run_scenario(params(), &[0], Workload::DisksOnly, 20, 1).disk_mb_s[0];
        let solo_net = run_scenario(params(), &[], Workload::FddiOnly, 20, 1)
            .fddi_mb_s
            .unwrap();
        let both = run_scenario(params(), &[0], Workload::Both, 20, 1);
        assert!(both.disk_mb_s[0] <= solo_disk * 1.02);
        assert!(
            both.fddi_mb_s.unwrap() < solo_net,
            "net must lose to DMA contention"
        );
        assert!(both.fddi_mb_s.unwrap() > 4.0, "but not crater with one HBA");
    }

    #[test]
    fn two_hba_row_craters_fddi() {
        let one = run_scenario(params(), &[0, 0], Workload::Both, 20, 1);
        let two = run_scenario(params(), &[0, 1], Workload::Both, 20, 1);
        assert!(
            two.fddi_mb_s.unwrap() < one.fddi_mb_s.unwrap() * 0.75,
            "two-HBA fddi {:?} vs one-HBA {:?} (paper: 2.3 vs 4.7)",
            two.fddi_mb_s,
            one.fddi_mb_s
        );
    }

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = table1(params(), 5, 3);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].label, "0 disk");
        assert!(rows[0].fddi_only.is_some());
        assert_eq!(rows[4].both_disks.len(), 3);
        // Paper reference table aligns row-for-row.
        let paper = paper_table1();
        for (row, p) in rows.iter().zip(&paper) {
            assert_eq!(row.label, p.0);
        }
    }

    #[test]
    fn aggregate_disk_throughput_capped_by_hba_chain() {
        // Two disks on one chain share its ~5 MB/s: each well below the
        // single-disk figure.
        let solo = run_scenario(params(), &[0], Workload::DisksOnly, 20, 2).disk_mb_s[0];
        let shared = run_scenario(params(), &[0, 0], Workload::DisksOnly, 20, 2);
        for d in &shared.disk_mb_s {
            assert!(*d < solo * 0.85, "shared {d} vs solo {solo}");
        }
        let total: f64 = shared.disk_mb_s.iter().sum();
        assert!(total > solo, "two disks still beat one in aggregate");
    }

    #[test]
    fn results_are_deterministic() {
        let a = run_scenario(params(), &[0, 0], Workload::Both, 5, 9);
        let b = run_scenario(params(), &[0, 0], Workload::Both, 5, 9);
        assert_eq!(a, b);
    }
}
