//! Offline stand-in for the `rand` crate.
//!
//! Implements the rand 0.8 API surface this workspace uses:
//! `rngs::StdRng` (a SplitMix64 generator — statistically fine for
//! synthetic media and simulation workloads, NOT cryptographic),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension trait with
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.

use std::ops::Range;

/// Core random source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_f64(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples uniformly from a range.
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<G: RngCore>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> f64 {
        sample_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> f32 {
        sample_f64(rng) as f32
    }
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn sample_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                // Multiply-shift keeps the modulo bias negligible for
                // the spans used here (widening 64x64 -> high 64).
                let r = rng.next_u64() as u128;
                self.start + ((r * span) >> 64) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let r = rng.next_u64() as u128;
                start + ((r * span) >> 64) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        self.start + (sample_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64. Deterministic per seed,
    /// passes casual statistical scrutiny, and is a single u64 of
    /// state — exactly what reproducible tests and simulations need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let i = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn full_range_reached() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
