//! Coordinator load accounting — the instrumentation behind §3.3.
//!
//! "We measured the Coordinator's CPU utilization at 14% and the
//! network utilization at 6%." The Coordinator tallies the CPU time it
//! spends processing requests and the intra-server bytes it moves;
//! utilization is busy time (or bytes) over wall-clock elapsed.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The intra-server network modeled for utilization reporting:
/// 10 Mbit/s Ethernet, as in the paper.
pub const INTRA_SERVER_BYTES_PER_SEC: f64 = 1.25e6;

/// Accumulates Coordinator load figures.
pub struct CoordStats {
    started: Mutex<Instant>,
    busy_ns: AtomicU64,
    bytes: AtomicU64,
    requests: AtomicU64,
    streams_started: AtomicU64,
    streams_done: AtomicU64,
}

impl Default for CoordStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordStats {
    /// Creates zeroed statistics starting now.
    pub fn new() -> CoordStats {
        CoordStats {
            started: Mutex::new(Instant::now()),
            busy_ns: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            streams_started: AtomicU64::new(0),
            streams_done: AtomicU64::new(0),
        }
    }

    /// Resets every counter and restarts the clock (benchmarks call
    /// this after warmup).
    pub fn reset(&self) {
        *self.started.lock() = Instant::now();
        self.busy_ns.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
        self.streams_started.store(0, Ordering::Relaxed);
        self.streams_done.store(0, Ordering::Relaxed);
    }

    /// Records one processed request and the CPU time it took.
    pub fn note_request(&self, busy: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records CPU time outside the request path (e.g. notification
    /// handling).
    pub fn note_busy(&self, busy: Duration) {
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records intra-server bytes moved (both directions).
    pub fn note_bytes(&self, n: usize) {
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records a stream admission.
    pub fn note_stream_started(&self) {
        self.streams_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stream termination.
    pub fn note_stream_done(&self) {
        self.streams_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests processed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Streams started.
    pub fn streams_started(&self) -> u64 {
        self.streams_started.load(Ordering::Relaxed)
    }

    /// Streams terminated.
    pub fn streams_done(&self) -> u64 {
        self.streams_done.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the last reset.
    pub fn elapsed(&self) -> Duration {
        self.started.lock().elapsed()
    }

    /// CPU utilization: busy time / elapsed time.
    pub fn cpu_utilization(&self) -> f64 {
        let e = self.elapsed().as_secs_f64();
        if e == 0.0 {
            return 0.0;
        }
        self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9 / e
    }

    /// Network utilization against the modeled 10 Mbit/s intra-server
    /// Ethernet.
    pub fn network_utilization(&self) -> f64 {
        let e = self.elapsed().as_secs_f64();
        if e == 0.0 {
            return 0.0;
        }
        self.bytes.load(Ordering::Relaxed) as f64 / INTRA_SERVER_BYTES_PER_SEC / e
    }

    /// Offered request rate, requests/second.
    pub fn request_rate(&self) -> f64 {
        let e = self.elapsed().as_secs_f64();
        if e == 0.0 {
            return 0.0;
        }
        self.requests.load(Ordering::Relaxed) as f64 / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = CoordStats::new();
        s.note_request(Duration::from_millis(10));
        s.note_request(Duration::from_millis(30));
        s.note_bytes(125_000);
        std::thread::sleep(Duration::from_millis(100));
        let cpu = s.cpu_utilization();
        assert!(cpu > 0.0 && cpu < 1.0, "{cpu}");
        // 40 ms busy over ≥100 ms elapsed: ≤ 40%.
        assert!(cpu <= 0.45, "{cpu}");
        let net = s.network_utilization();
        // 125 kB over ≥0.1 s on a 1.25 MB/s link ⇒ ≤ 100%.
        assert!(net > 0.0 && net <= 1.0, "{net}");
        assert_eq!(s.requests(), 2);
        assert!(s.request_rate() > 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = CoordStats::new();
        s.note_request(Duration::from_millis(5));
        s.note_bytes(100);
        s.note_stream_started();
        s.note_stream_done();
        s.reset();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.streams_started(), 0);
        assert_eq!(s.streams_done(), 0);
        assert!(s.cpu_utilization() < 0.01);
    }
}
