//! The Calliope Coordinator.
//!
//! "The Coordinator is the global resource manager for Calliope. It
//! maintains a small administrative database and a set of scheduling
//! queues. The database contains information about customers, content
//! stored on Calliope, and resources owned by the system." (paper §2.2)
//!
//! * [`db`] — the administrative database: the content-type table
//!   (with separate bandwidth and storage consumption rates), the table
//!   of contents, and customer records.
//! * [`sched`] — resource accounting: per-disk bandwidth and space,
//!   per-MSU network bandwidth, admission control, and the pending
//!   queue for requests that must wait for resources.
//! * [`rpc`] — the intra-server protocol: one TCP connection per MSU,
//!   request/reply correlation, and failure detection by connection
//!   break (§2.2's fault tolerance).
//! * [`server`] — the Coordinator proper: the client listener (session
//!   threads handling the §2.1 client interface) and the MSU listener.
//! * [`fake_msu`] — the §3.3 scalability experiment's fake MSU, which
//!   "delays for 50 ms and then reports that the user has terminated
//!   the stream".
//! * [`stats`] — CPU-busy and network-byte accounting used to
//!   regenerate the §3.3 utilization measurements.

pub mod db;
pub mod fake_msu;
pub mod rpc;
pub mod sched;
pub mod server;
pub mod stats;

pub use server::{CoordConfig, CoordServer};
