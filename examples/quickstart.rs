//! Quickstart: bring up a Calliope installation, record a movie, play
//! it back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Starts a Coordinator plus one MSU (two file-backed disks) on
//! loopback — the paper's "very small installation" where everything
//! shares a machine — records two seconds of synthetic 1.5 Mbit/s
//! MPEG-1, lists the table of contents, and streams the movie back to
//! a display port while reporting delivery quality.

use calliope::cluster::Cluster;
use calliope::content;
use std::time::Duration;

fn main() {
    println!("starting a Calliope installation (Coordinator + 1 MSU)…");
    let cluster = Cluster::builder().msus(1).build().expect("cluster start");
    let mut client = cluster.client("quickstart", false).expect("session");

    println!("recording 2 s of synthetic MPEG-1 as \"movie\"…");
    let original = content::upload_mpeg(&mut client, "movie", 2, 42).expect("record");
    println!("  uploaded {} bytes", original.len());

    println!("table of contents:");
    for entry in client.list_content().expect("toc") {
        println!(
            "  {:10}  type={:8}  {:>9} bytes  {:.1}s",
            entry.name,
            entry.type_name,
            entry.bytes,
            entry.duration_us as f64 / 1e6
        );
    }

    println!("playing \"movie\" back (paced at 1.5 Mbit/s)…");
    let port = client.open_port("tv", "mpeg1").expect("port");
    let mut play = client.play("movie", "tv", &[&port]).expect("play");
    let stream = play.streams[0];
    let reason = play.wait_end(Duration::from_secs(30)).expect("playback");
    std::thread::sleep(Duration::from_millis(200)); // drain the last packets

    let stats = port.stats(stream);
    println!("playback ended: {reason:?}");
    println!(
        "  {} packets, {} bytes, {} lost, worst lateness {:.1} ms, {:.2}% within 50 ms",
        stats.packets,
        stats.bytes,
        stats.lost,
        stats.max_late_us as f64 / 1000.0,
        stats.pct_within_50ms()
    );
    assert_eq!(stats.bytes, original.len() as u64, "every byte came back");

    cluster.shutdown();
    println!("done.");
}
