//! Bitrate measurement over timed packet traces.
//!
//! The paper characterizes its VBR workloads by average rate and by
//! peak rate "measured using a 50 millisecond sliding window" (§3.2.2).
//! These helpers compute both, and are used by the generator tests and
//! by the Graph 2 bench to report workload statistics alongside the
//! lateness results.

use crate::TimedPacket;

/// Average rate of a trace in bits/second (0 for traces shorter than
/// two packets or with zero span).
pub fn avg_bps(packets: &[TimedPacket]) -> u64 {
    if packets.len() < 2 {
        return 0;
    }
    let span_us = packets.last().expect("non-empty").time_us - packets[0].time_us;
    if span_us == 0 {
        return 0;
    }
    let bits: u64 = packets.iter().map(|p| p.payload.len() as u64 * 8).sum();
    (bits as u128 * 1_000_000 / span_us as u128) as u64
}

/// Peak rate over a sliding window of `window_us` microseconds, in
/// bits/second.
///
/// Slides the window across packet start times (peaks always begin at a
/// packet), counting every packet within `[t, t + window_us)`.
pub fn peak_bps(packets: &[TimedPacket], window_us: u64) -> u64 {
    if packets.is_empty() || window_us == 0 {
        return 0;
    }
    let mut peak_bits = 0u64;
    let mut window_bits = 0u64;
    let mut tail = 0usize;
    for head in 0..packets.len() {
        window_bits += packets[head].payload.len() as u64 * 8;
        while packets[head].time_us - packets[tail].time_us >= window_us {
            window_bits -= packets[tail].payload.len() as u64 * 8;
            tail += 1;
        }
        peak_bits = peak_bits.max(window_bits);
    }
    (peak_bits as u128 * 1_000_000 / window_us as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pkt(t: u64, len: usize) -> TimedPacket {
        TimedPacket::new(t, vec![0; len])
    }

    #[test]
    fn avg_of_steady_stream() {
        // 1000 bytes every 10 ms = 800 kbit/s.
        let pkts: Vec<_> = (0..101).map(|i| pkt(i * 10_000, 1000)).collect();
        let avg = avg_bps(&pkts);
        // Span covers 100 intervals carrying 101 packets; accept the
        // off-by-one-packet edge effect.
        assert!((800_000..=808_000).contains(&avg), "{avg}");
    }

    #[test]
    fn degenerate_traces_are_zero() {
        assert_eq!(avg_bps(&[]), 0);
        assert_eq!(avg_bps(&[pkt(0, 100)]), 0);
        assert_eq!(avg_bps(&[pkt(5, 100), pkt(5, 100)]), 0);
        assert_eq!(peak_bps(&[], 50_000), 0);
        assert_eq!(peak_bps(&[pkt(0, 100)], 0), 0);
    }

    #[test]
    fn peak_sees_the_burst() {
        // Steady 100 B / 10 ms, plus a 10 kB burst at t=1 s.
        let mut pkts: Vec<_> = (0..200).map(|i| pkt(i * 10_000, 100)).collect();
        for j in 0..10 {
            pkts.push(pkt(1_000_000 + j, 1000));
        }
        pkts.sort_by_key(|p| p.time_us);
        let peak = peak_bps(&pkts, 50_000);
        // Window holds the 10 kB burst plus ~5 steady packets:
        // ≥ 80_000 bits / 0.05 s = 1.6 Mbit/s.
        assert!(peak >= 1_600_000, "{peak}");
        let avg = avg_bps(&pkts);
        assert!(peak > 5 * avg, "peak {peak} should dwarf avg {avg}");
    }

    #[test]
    fn single_packet_window() {
        let pkts = vec![pkt(0, 625)]; // 5000 bits
        assert_eq!(peak_bps(&pkts, 50_000), 5000 * 20);
    }

    proptest! {
        #[test]
        fn prop_peak_at_least_avg(times in proptest::collection::vec(0u64..10_000_000, 2..100), len in 1usize..2000) {
            let mut times = times;
            times.sort_unstable();
            let pkts: Vec<_> = times.iter().map(|&t| pkt(t, len)).collect();
            let avg = avg_bps(&pkts);
            // A window as long as the whole trace, slid anywhere, carries
            // at least the average rate.
            let span = times.last().unwrap() - times[0] + 1;
            let peak = peak_bps(&pkts, span);
            prop_assert!(peak + 1 >= avg, "peak {peak} < avg {avg}");
        }

        #[test]
        fn prop_smaller_windows_have_higher_peaks(times in proptest::collection::vec(0u64..1_000_000, 2..100)) {
            let mut times = times;
            times.sort_unstable();
            let pkts: Vec<_> = times.iter().map(|&t| pkt(t, 500)).collect();
            let p_small = peak_bps(&pkts, 10_000);
            let p_big = peak_bps(&pkts, 100_000);
            // Rates over shorter windows are never lower than over longer
            // ones... not strictly true pointwise, but true of maxima
            // within a 10x factor bound; assert the weak direction only.
            prop_assert!(p_small * 10 + 10 >= p_big, "{p_small} vs {p_big}");
        }
    }
}
