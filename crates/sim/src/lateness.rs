//! Cumulative packet-lateness distributions.
//!
//! Graphs 1 and 2 plot "the percent of packets delivered within a given
//! number of milliseconds of their deadline", binned at one
//! millisecond. [`LatenessCdf`] collects per-packet lateness samples and
//! reports exactly that curve.

/// A histogram of packet lateness with 1 ms bins, reporting cumulative
/// percentages like the paper's graphs.
#[derive(Clone, Debug)]
pub struct LatenessCdf {
    /// `bins[i]` counts packets `i` ms late (bin 0 = on time or early).
    bins: Vec<u64>,
    /// Packets later than the last bin.
    overflow: u64,
    total: u64,
    max_late_us: u64,
    sum_late_us: u64,
}

impl LatenessCdf {
    /// Creates a CDF covering `0..max_ms` milliseconds of lateness.
    pub fn new(max_ms: usize) -> LatenessCdf {
        LatenessCdf {
            bins: vec![0; max_ms.max(1)],
            overflow: 0,
            total: 0,
            max_late_us: 0,
            sum_late_us: 0,
        }
    }

    /// Records one packet delivered `late_us` microseconds after its
    /// deadline (0 for on-time or early packets).
    pub fn record(&mut self, late_us: u64) {
        let bin = (late_us / 1_000) as usize;
        if bin < self.bins.len() {
            self.bins[bin] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.max_late_us = self.max_late_us.max(late_us);
        self.sum_late_us += late_us;
    }

    /// Total packets recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The worst lateness seen, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_late_us as f64 / 1_000.0
    }

    /// Mean lateness in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_late_us as f64 / self.total as f64 / 1_000.0
        }
    }

    /// Percentage of packets delivered within `ms` milliseconds of their
    /// deadline (inclusive of the `ms`-th one-millisecond bin, matching
    /// the paper's "delivered within 50 milliseconds").
    pub fn pct_within_ms(&self, ms: usize) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        let count: u64 = self.bins.iter().take(ms + 1).sum();
        count as f64 * 100.0 / self.total as f64
    }

    /// The cumulative curve: one `(ms, cumulative %)` point per bin —
    /// the series plotted in Graphs 1 and 2.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.bins.len());
        let mut acc = 0u64;
        for (ms, &c) in self.bins.iter().enumerate() {
            acc += c;
            let pct = if self.total == 0 {
                100.0
            } else {
                acc as f64 * 100.0 / self.total as f64
            };
            out.push((ms, pct));
        }
        out
    }

    /// Merges another CDF into this one (same bin count required).
    pub fn merge(&mut self, other: &LatenessCdf) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.max_late_us = self.max_late_us.max(other.max_late_us);
        self.sum_late_us += other.sum_late_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_time_packets_are_100_percent_within_zero() {
        let mut c = LatenessCdf::new(300);
        for _ in 0..100 {
            c.record(0);
        }
        assert_eq!(c.total(), 100);
        assert_eq!(c.pct_within_ms(0), 100.0);
        assert_eq!(c.max_ms(), 0.0);
    }

    #[test]
    fn paper_style_query() {
        let mut c = LatenessCdf::new(300);
        // 996 on time, 4 at 120 ms: "0.4 percent of the packets are
        // delivered more than 50 milliseconds late".
        for _ in 0..996 {
            c.record(0);
        }
        for _ in 0..4 {
            c.record(120_000);
        }
        assert!((c.pct_within_ms(50) - 99.6).abs() < 1e-9);
        assert_eq!(c.pct_within_ms(150), 100.0);
        assert!((c.max_ms() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn sub_millisecond_lateness_lands_in_bin_zero() {
        let mut c = LatenessCdf::new(10);
        c.record(999);
        assert_eq!(c.pct_within_ms(0), 100.0);
        c.record(1_000);
        assert_eq!(c.pct_within_ms(0), 50.0);
        assert_eq!(c.pct_within_ms(1), 100.0);
    }

    #[test]
    fn overflow_is_counted_in_total_but_not_curve() {
        let mut c = LatenessCdf::new(10);
        c.record(5_000_000); // 5 s late
        c.record(0);
        assert_eq!(c.total(), 2);
        assert_eq!(c.pct_within_ms(9), 50.0);
        let curve = c.curve();
        assert_eq!(curve.len(), 10);
        assert_eq!(curve.last().unwrap().1, 50.0);
    }

    #[test]
    fn curve_is_monotone() {
        let mut c = LatenessCdf::new(50);
        for i in 0..1000u64 {
            c.record((i * 97) % 60_000);
        }
        let curve = c.curve();
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = LatenessCdf::new(20);
        let mut b = LatenessCdf::new(20);
        a.record(0);
        a.record(5_000);
        b.record(15_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!((a.pct_within_ms(5) - 66.666).abs() < 0.01);
        assert!((a.max_ms() - 15.0).abs() < 1e-9);
        assert!((a.mean_ms() - 20.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_cdf_reports_cleanly() {
        let c = LatenessCdf::new(5);
        assert_eq!(c.total(), 0);
        assert_eq!(c.pct_within_ms(3), 100.0);
        assert_eq!(c.mean_ms(), 0.0);
    }
}
