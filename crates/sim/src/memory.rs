//! The §3.2.3 memory-path bottleneck arithmetic.
//!
//! "As the MSU reads a file from disk and sends it to a client, the
//! data traces the following path through the memory of the MSU PC:
//! 1. Write (DMA from disk to user memory in the raw disk read).
//! 2. Copy (user space buffer to kernel mbuf in network send).
//! 3. Read (UDP checksum).
//! 4. Read (DMA to FDDI interface).
//!
//! Therefore, the fastest rate at which our test system could move data
//! along this path is 1/(1/25 + 1/18 + 2/53) = 7.5 MByte/sec."
//!
//! The diskless measurement (a writer process replacing the disk)
//! reached 6.3 MB/s; the authors attribute the gap to instruction
//! fetches evicting the caches. [`MemoryModel::measured_rate`] applies
//! that overhead factor.

/// Memory-system bandwidths, MB/s (the paper's measured values).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryModel {
    /// Sequential read bandwidth (paper: 53).
    pub read_mb_s: f64,
    /// Sequential write bandwidth (paper: 25).
    pub write_mb_s: f64,
    /// Copy bandwidth (paper: 18).
    pub copy_mb_s: f64,
    /// Slowdown from instruction fetches and cache eviction during real
    /// data movement (paper: 7.5 computed vs 6.3 measured ⇒ ≈1.19).
    pub overhead: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            read_mb_s: 53.0,
            write_mb_s: 25.0,
            copy_mb_s: 18.0,
            overhead: 7.5 / 6.3,
        }
    }
}

/// One traversal of the data through memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// A memory write (e.g. disk DMA into a user buffer).
    Write,
    /// A memory read (e.g. UDP checksum, NIC DMA out).
    Read,
    /// A copy — read plus write at the measured copy rate.
    Copy,
}

impl MemoryModel {
    /// Rate of one pass, MB/s.
    pub fn pass_rate(&self, pass: Pass) -> f64 {
        match pass {
            Pass::Write => self.write_mb_s,
            Pass::Read => self.read_mb_s,
            Pass::Copy => self.copy_mb_s,
        }
    }

    /// The harmonic path rate: every byte makes every pass, so the path
    /// rate is `1 / Σ (1/rateᵢ)` — the paper's formula.
    pub fn path_rate(&self, passes: &[Pass]) -> f64 {
        let total: f64 = passes.iter().map(|p| 1.0 / self.pass_rate(*p)).sum();
        if total == 0.0 {
            f64::INFINITY
        } else {
            1.0 / total
        }
    }

    /// The paper's full MSU read path: disk DMA write, mbuf copy,
    /// checksum read, NIC DMA read.
    pub fn msu_read_path(&self) -> [Pass; 4] {
        [Pass::Write, Pass::Copy, Pass::Read, Pass::Read]
    }

    /// The ttcp-only path (no disk): copy, checksum read, NIC DMA read.
    pub fn ttcp_path(&self) -> [Pass; 3] {
        [Pass::Copy, Pass::Read, Pass::Read]
    }

    /// The computed ceiling of the full path (paper: 7.5 MB/s).
    pub fn computed_rate(&self) -> f64 {
        self.path_rate(&self.msu_read_path())
    }

    /// The expected *measured* rate after instruction-fetch overhead
    /// (paper: ~6.3 MB/s on the diskless test).
    pub fn measured_rate(&self) -> f64 {
        self.computed_rate() / self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_rate_is_the_papers_7_5() {
        let m = MemoryModel::default();
        let r = m.computed_rate();
        assert!((r - 7.5).abs() < 0.05, "{r}");
    }

    #[test]
    fn measured_rate_is_the_papers_6_3() {
        let m = MemoryModel::default();
        let r = m.measured_rate();
        assert!((r - 6.3).abs() < 0.05, "{r}");
    }

    #[test]
    fn formula_matches_hand_computation() {
        let m = MemoryModel::default();
        let expect = 1.0 / (1.0 / 25.0 + 1.0 / 18.0 + 2.0 / 53.0);
        assert!(
            (m.path_rate(&[Pass::Write, Pass::Copy, Pass::Read, Pass::Read]) - expect).abs()
                < 1e-12
        );
    }

    #[test]
    fn ttcp_path_is_faster_than_disk_path() {
        let m = MemoryModel::default();
        assert!(m.path_rate(&m.ttcp_path()) > m.computed_rate());
        // ~10.7 MB/s before overhead; with overhead ≈ 9 — consistent
        // with ttcp's measured 8.5 once per-packet CPU costs are added
        // (the machine model covers those).
        let t = m.path_rate(&m.ttcp_path());
        assert!((10.0..11.5).contains(&t), "{t}");
    }

    #[test]
    fn empty_path_is_unbounded() {
        let m = MemoryModel::default();
        assert!(m.path_rate(&[]).is_infinite());
    }

    #[test]
    fn adding_passes_always_slows_the_path() {
        let m = MemoryModel::default();
        let mut passes = vec![Pass::Copy];
        let mut last = m.path_rate(&passes);
        for p in [Pass::Read, Pass::Write, Pass::Copy, Pass::Read] {
            passes.push(p);
            let r = m.path_rate(&passes);
            assert!(r < last);
            last = r;
        }
    }
}
