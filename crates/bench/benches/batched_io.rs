//! E11 — batched elevator I/O vs. per-stream sequential reads.
//!
//! The disk thread's duty cycle gathers every eligible stream's next
//! pages (read-ahead 2), SCAN-orders them, and issues physically
//! adjacent blocks as single vectored transfers. This bench replays
//! that access pattern against a real file-backed disk and compares it
//! with the old per-stream order (one `read_block` syscall per page,
//! head bouncing between stream regions), at 4, 16, and 64 streams.
//!
//! A second, metered pass reports what the elevator saves in head
//! travel and how many blocks rode a coalesced transfer
//! (`IoStats::batched_blocks`).

use calliope_storage::block::{BlockDevice, FileDisk, MeteredDevice};
use calliope_storage::{coalesce_runs, ElevatorState};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const BS: usize = 4096;
const READ_AHEAD: u64 = 2;

fn pages_per_stream() -> u64 {
    if calliope_bench::quick() {
        16
    } else {
        64
    }
}

/// Start block of each stream's contiguous region. The region order is
/// a fixed permutation of the stream order, so serving streams
/// round-robin (arrival order) bounces the head exactly as interleaved
/// playback does.
fn layout(streams: u64) -> Vec<u64> {
    let pages = pages_per_stream();
    (0..streams).map(|i| (i * 37 % streams) * pages).collect()
}

fn disk_path(streams: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "calliope-batched-io-{}-{streams}.img",
        std::process::id()
    ))
}

fn make_disk(streams: u64) -> FileDisk {
    let blocks = streams * pages_per_stream();
    let path = disk_path(streams);
    let mut disk = FileDisk::create(&path, BS, blocks).expect("create bench disk");
    // Materialize every block so neither driver reads a sparse hole.
    let block = vec![0xC5u8; BS];
    for b in 0..blocks {
        disk.write_block(b, &block).expect("fill bench disk");
    }
    disk.sync().expect("sync bench disk");
    disk
}

/// The old duty cycle: visit streams in arrival order, read each
/// stream's next pages one block at a time. Like the batched driver,
/// every claim lands in its own (pool) buffer.
fn play_sequential(dev: &mut impl BlockDevice, streams: u64, bufs: &mut [Vec<u8>]) {
    let regions = layout(streams);
    let pages = pages_per_stream();
    let mut cycle_page = 0;
    while cycle_page < pages {
        for s in 0..streams as usize {
            for k in 0..READ_AHEAD as usize {
                dev.read_block(
                    regions[s] + cycle_page + k as u64,
                    &mut bufs[s * READ_AHEAD as usize + k],
                )
                .expect("read");
            }
        }
        cycle_page += READ_AHEAD;
    }
}

/// The new duty cycle: gather all streams' claims, SCAN-order them,
/// and issue adjacent blocks as one vectored transfer.
fn play_batched(dev: &mut impl BlockDevice, streams: u64, bufs: &mut [Vec<u8>]) {
    let regions = layout(streams);
    let pages = pages_per_stream();
    let mut elevator = ElevatorState::new();
    let mut addrs: Vec<u64> = Vec::with_capacity((streams * READ_AHEAD) as usize);
    let mut cycle_page = 0;
    while cycle_page < pages {
        addrs.clear();
        for region in &regions {
            for k in 0..READ_AHEAD {
                addrs.push(region + cycle_page + k);
            }
        }
        let order = elevator.plan(&addrs);
        let mut at = 0;
        for run in coalesce_runs(&addrs, &order) {
            let (chunk, _) = bufs[at..].split_at_mut(run.len());
            let mut refs: Vec<&mut [u8]> = chunk.iter_mut().map(|b| b.as_mut_slice()).collect();
            dev.read_blocks_into(run.start, &mut refs).expect("read");
            at += run.len();
        }
        cycle_page += READ_AHEAD;
    }
}

fn bench_playback(c: &mut Criterion) {
    for streams in [4u64, 16, 64] {
        let mut disk = make_disk(streams);
        let bytes = streams * pages_per_stream() * BS as u64;
        let mut bufs: Vec<Vec<u8>> = (0..streams * READ_AHEAD).map(|_| vec![0u8; BS]).collect();

        let mut g = c.benchmark_group(&format!("batched-io/{streams}-streams"));
        g.throughput(Throughput::Bytes(bytes));
        g.bench_function("per-stream-sequential", |b| {
            b.iter(|| play_sequential(&mut disk, streams, &mut bufs))
        });
        g.bench_function("elevator-batched", |b| {
            b.iter(|| play_batched(&mut disk, streams, &mut bufs))
        });
        g.finish();

        let _ = std::fs::remove_file(disk_path(streams));
    }
}

/// One metered pass per driver: seek distance, transfer count, and
/// blocks that rode a coalesced transfer.
fn report_metered(c: &mut Criterion) {
    let _ = c; // accounting pass, nothing to time
    println!("metered pass (MeteredDevice over FileDisk):");
    println!(
        "  {:>7} | {:>12} {:>10} | {:>12} {:>10} {:>8} | {:>6}",
        "streams", "seq seek", "seq xfers", "elev seek", "elev xfers", "batched", "saved"
    );
    for streams in [4u64, 16, 64] {
        let mut bufs: Vec<Vec<u8>> = (0..streams * READ_AHEAD).map(|_| vec![0u8; BS]).collect();
        let mut dev = MeteredDevice::new(make_disk(streams));
        play_sequential(&mut dev, streams, &mut bufs);
        let seq = dev.stats();
        dev.reset_stats();
        play_batched(&mut dev, streams, &mut bufs);
        let elev = dev.stats();
        assert!(
            elev.seek_distance < seq.seek_distance,
            "elevator must strictly lower seek distance \
             ({} vs {} at {streams} streams)",
            elev.seek_distance,
            seq.seek_distance
        );
        println!(
            "  {:>7} | {:>12} {:>10} | {:>12} {:>10} {:>8} | {:>5.1}%",
            streams,
            seq.seek_distance,
            seq.transfers(),
            elev.seek_distance,
            elev.transfers(),
            elev.batched_blocks,
            100.0 * (1.0 - elev.seek_distance as f64 / seq.seek_distance.max(1) as f64)
        );
        let _ = std::fs::remove_file(disk_path(streams));
    }
}

criterion_group!(benches, bench_playback, report_metered);
criterion_main!(benches);
