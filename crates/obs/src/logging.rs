//! The shared `tracing` subscriber for Calliope binaries.
//!
//! All three binaries call [`init_logging`] first thing in `main`. The
//! filter comes from `RUST_LOG` (same directive syntax as `env_logger`:
//! a comma-separated list of `level` or `target=level`, e.g.
//! `info,calliope_msu=debug,calliope_coord::sched=trace`); the output
//! shape from `CALLIOPE_LOG_FORMAT` (`compact`, the default, or
//! `json`). When `RUST_LOG` is unset or empty no subscriber is
//! installed at all, leaving the `tracing` macros on their one-atomic
//! fast path.

use std::io::Write;
use std::time::Instant;
use tracing::Level;

/// One parsed `RUST_LOG` directive: an optional target prefix and the
/// level enabled for it (`None` = off).
#[derive(Debug, Clone)]
struct Directive {
    /// Module-path prefix; empty for the bare default level.
    target: String,
    level: Option<Level>,
}

/// A `RUST_LOG`-style target filter.
#[derive(Debug, Clone, Default)]
pub struct EnvFilter {
    directives: Vec<Directive>,
}

impl EnvFilter {
    /// Parses a directive list. Unknown level names are treated as
    /// `off` rather than rejected — a bad `RUST_LOG` should never take
    /// a media server down.
    pub fn parse(spec: &str) -> EnvFilter {
        let mut directives = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (target, level_str) = match part.split_once('=') {
                Some((t, l)) => (t.trim().to_owned(), l.trim()),
                None => (String::new(), part),
            };
            directives.push(Directive {
                target,
                level: Level::parse(level_str),
            });
        }
        EnvFilter { directives }
    }

    /// The most specific (longest-prefix) directive wins.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let mut best: Option<&Directive> = None;
        for d in &self.directives {
            let matches = d.target.is_empty()
                || target == d.target
                || (target.starts_with(&d.target)
                    && target.as_bytes().get(d.target.len()) == Some(&b':'));
            if matches && best.is_none_or(|b| d.target.len() >= b.target.len()) {
                best = Some(d);
            }
        }
        match best {
            Some(d) => d.level.is_some_and(|min| level >= min),
            None => false,
        }
    }

    /// The loosest level any directive enables — used as the global
    /// `tracing` gate so disabled levels never reach the subscriber.
    pub fn min_level(&self) -> Option<Level> {
        self.directives.iter().filter_map(|d| d.level).min()
    }
}

/// Subscriber writing one line per event to stderr.
pub struct FmtSubscriber {
    filter: EnvFilter,
    json: bool,
    started: Instant,
}

impl tracing::Subscriber for FmtSubscriber {
    fn enabled(&self, target: &str, level: Level) -> bool {
        self.filter.enabled(target, level)
    }

    fn event(
        &self,
        target: &str,
        level: Level,
        spans: &[String],
        message: std::fmt::Arguments<'_>,
    ) {
        let t = self.started.elapsed();
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        let res = if self.json {
            writeln!(
                out,
                "{{\"t_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"spans\":[{}],\"message\":\"{}\"}}",
                t.as_micros(),
                level,
                json_escape(target),
                spans
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect::<Vec<_>>()
                    .join(","),
                json_escape(&message.to_string()),
            )
        } else if spans.is_empty() {
            writeln!(
                out,
                "{:10.6} {:5} {}: {}",
                t.as_secs_f64(),
                level,
                target,
                message
            )
        } else {
            writeln!(
                out,
                "{:10.6} {:5} {}: {}: {}",
                t.as_secs_f64(),
                level,
                target,
                spans.join(":"),
                message
            )
        };
        // Stderr going away (closed pipe) must not crash the server.
        let _ = res;
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Installs the global subscriber from an explicit directive spec.
/// `json` selects line format. Returns false if a subscriber was
/// already installed or the spec enables nothing.
pub fn init_logging_with(spec: &str, json: bool) -> bool {
    let filter = EnvFilter::parse(spec);
    let Some(min) = filter.min_level() else {
        return false;
    };
    tracing::set_subscriber(
        Box::new(FmtSubscriber {
            filter,
            json,
            started: Instant::now(),
        }),
        Some(min),
    )
}

/// Installs the global subscriber from `RUST_LOG` and
/// `CALLIOPE_LOG_FORMAT`. No-op (and zero steady-state cost) when
/// `RUST_LOG` is unset or empty.
pub fn init_logging() -> bool {
    let spec = match std::env::var("RUST_LOG") {
        Ok(s) if !s.trim().is_empty() => s,
        _ => return false,
    };
    let json = std::env::var("CALLIOPE_LOG_FORMAT")
        .map(|f| f.eq_ignore_ascii_case("json"))
        .unwrap_or(false);
    init_logging_with(&spec, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_applies_to_all_targets() {
        let f = EnvFilter::parse("info");
        assert!(f.enabled("calliope_msu::net", Level::INFO));
        assert!(f.enabled("anything", Level::ERROR));
        assert!(!f.enabled("anything", Level::DEBUG));
        assert_eq!(f.min_level(), Some(Level::INFO));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = EnvFilter::parse("warn,calliope_msu=info,calliope_msu::net=trace");
        assert!(f.enabled("calliope_msu::net", Level::TRACE));
        assert!(f.enabled("calliope_msu::net::pacer", Level::TRACE));
        assert!(f.enabled("calliope_msu::disk", Level::INFO));
        assert!(!f.enabled("calliope_msu::disk", Level::DEBUG));
        assert!(!f.enabled("calliope_coord", Level::INFO));
        assert!(f.enabled("calliope_coord", Level::WARN));
        assert_eq!(f.min_level(), Some(Level::TRACE));
    }

    #[test]
    fn prefix_must_end_at_a_path_boundary() {
        let f = EnvFilter::parse("calliope_msu=debug");
        assert!(f.enabled("calliope_msu", Level::DEBUG));
        assert!(f.enabled("calliope_msu::disk", Level::DEBUG));
        // Different crate that merely shares a name prefix.
        assert!(!f.enabled("calliope_msu_extras", Level::ERROR));
    }

    #[test]
    fn off_and_garbage_disable_targets() {
        let f = EnvFilter::parse("info,noisy=off,broken=banana");
        assert!(!f.enabled("noisy", Level::ERROR));
        assert!(!f.enabled("broken::sub", Level::ERROR));
        assert!(f.enabled("fine", Level::INFO));
    }

    #[test]
    fn empty_spec_enables_nothing() {
        let f = EnvFilter::parse("");
        assert!(!f.enabled("x", Level::ERROR));
        assert_eq!(f.min_level(), None);
        assert!(!init_logging_with("  ", false));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
