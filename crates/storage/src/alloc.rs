//! The block allocator.
//!
//! A plain bitmap over the data-block region. With 256 KB blocks even a
//! 9 GB disk needs only 36 K bits (4.5 KB) of bitmap — small enough to
//! cache whole in memory and rewrite on every mutation, consistent with
//! the paper's "meta-data … entirely cached in main memory".
//!
//! Allocation is first-fit from a rotating cursor, which keeps the
//! blocks of a file written in one recording session roughly contiguous
//! without any extra bookkeeping.

use calliope_types::error::{Error, Result};

/// A bitmap allocator over block indices `0..capacity` (indices are
/// relative to the start of the data region).
#[derive(Clone, Debug)]
pub struct BlockAllocator {
    bits: Vec<u64>,
    capacity: u64,
    free: u64,
    cursor: u64,
}

impl BlockAllocator {
    /// Creates an allocator with every block free.
    pub fn new(capacity: u64) -> BlockAllocator {
        let words = capacity.div_ceil(64) as usize;
        BlockAllocator {
            bits: vec![0; words],
            capacity,
            free: capacity,
            cursor: 0,
        }
    }

    /// Number of blocks managed.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of free blocks.
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Number of allocated blocks.
    pub fn used(&self) -> u64 {
        self.capacity - self.free
    }

    fn is_set(&self, idx: u64) -> bool {
        self.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    fn set(&mut self, idx: u64) {
        self.bits[(idx / 64) as usize] |= 1 << (idx % 64);
    }

    fn clear(&mut self, idx: u64) {
        self.bits[(idx / 64) as usize] &= !(1 << (idx % 64));
    }

    /// Allocates one block, first-fit from the rotating cursor.
    pub fn alloc(&mut self) -> Result<u64> {
        if self.free == 0 {
            return Err(Error::storage("disk full: no free blocks"));
        }
        for probe in 0..self.capacity {
            let idx = (self.cursor + probe) % self.capacity;
            if !self.is_set(idx) {
                self.set(idx);
                self.free -= 1;
                self.cursor = (idx + 1) % self.capacity;
                return Ok(idx);
            }
        }
        Err(Error::internal(
            "free count positive but no clear bit found",
        ))
    }

    /// Allocates `n` blocks; on failure nothing is allocated.
    pub fn alloc_many(&mut self, n: u64) -> Result<Vec<u64>> {
        if n > self.free {
            return Err(Error::storage(format!(
                "disk full: need {n} blocks, only {} free",
                self.free
            )));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // Cannot fail: we checked the count and hold &mut self.
            out.push(self.alloc()?);
        }
        Ok(out)
    }

    /// Frees a previously allocated block. Double-frees are reported as
    /// errors (they indicate catalog corruption).
    pub fn free_block(&mut self, idx: u64) -> Result<()> {
        if idx >= self.capacity {
            return Err(Error::storage(format!(
                "free of out-of-range block {idx} (capacity {})",
                self.capacity
            )));
        }
        if !self.is_set(idx) {
            return Err(Error::storage(format!("double free of block {idx}")));
        }
        self.clear(idx);
        self.free += 1;
        Ok(())
    }

    /// Marks a block allocated during recovery (loading a catalog).
    pub fn mark_used(&mut self, idx: u64) -> Result<()> {
        if idx >= self.capacity {
            return Err(Error::storage(format!(
                "catalog references out-of-range block {idx}"
            )));
        }
        if self.is_set(idx) {
            return Err(Error::storage(format!(
                "catalog references block {idx} twice"
            )));
        }
        self.set(idx);
        self.free -= 1;
        Ok(())
    }

    /// Serializes the bitmap (used blocks only; capacity is implied by
    /// the superblock).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len() * 8);
        out.extend_from_slice(&self.capacity.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Restores an allocator from [`BlockAllocator::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<BlockAllocator> {
        if buf.len() < 8 {
            return Err(Error::storage("allocator bitmap truncated"));
        }
        let capacity = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let words = capacity.div_ceil(64) as usize;
        if buf.len() < 8 + words * 8 {
            return Err(Error::storage("allocator bitmap truncated"));
        }
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            let start = 8 + i * 8;
            bits.push(u64::from_le_bytes(
                buf[start..start + 8].try_into().expect("8 bytes"),
            ));
        }
        let mut used = 0;
        for (i, w) in bits.iter().enumerate() {
            // Bits beyond capacity in the last word must be clear.
            let valid = if (i + 1) * 64 <= capacity as usize {
                u64::MAX
            } else {
                let tail = capacity % 64;
                if tail == 0 {
                    u64::MAX
                } else {
                    (1u64 << tail) - 1
                }
            };
            if w & !valid != 0 {
                return Err(Error::storage("allocator bitmap has bits beyond capacity"));
            }
            used += w.count_ones() as u64;
        }
        Ok(BlockAllocator {
            bits,
            capacity,
            free: capacity - used,
            cursor: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = BlockAllocator::new(100);
        assert_eq!(a.free(), 100);
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert_ne!(b1, b2);
        assert_eq!(a.used(), 2);
        a.free_block(b1).unwrap();
        assert_eq!(a.free(), 99);
        assert!(a.free_block(b1).is_err(), "double free detected");
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut a = BlockAllocator::new(3);
        a.alloc_many(3).unwrap();
        assert!(a.alloc().is_err());
        assert!(a.alloc_many(1).is_err());
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut a = BlockAllocator::new(5);
        a.alloc_many(3).unwrap();
        assert!(a.alloc_many(3).is_err());
        assert_eq!(a.used(), 3, "failed alloc_many must not consume blocks");
    }

    #[test]
    fn sequential_session_gets_roughly_contiguous_blocks() {
        let mut a = BlockAllocator::new(1000);
        let blocks = a.alloc_many(100).unwrap();
        for w in blocks.windows(2) {
            assert_eq!(w[1], w[0] + 1, "fresh disk allocates contiguously");
        }
    }

    #[test]
    fn all_allocations_are_unique() {
        let mut a = BlockAllocator::new(257);
        let mut seen = HashSet::new();
        while let Ok(b) = a.alloc() {
            assert!(seen.insert(b));
        }
        assert_eq!(seen.len(), 257);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut a = BlockAllocator::new(130);
        let blocks = a.alloc_many(70).unwrap();
        a.free_block(blocks[10]).unwrap();
        let b = BlockAllocator::decode(&a.encode()).unwrap();
        assert_eq!(b.capacity(), 130);
        assert_eq!(b.free(), a.free());
        for &blk in &blocks {
            if blk == blocks[10] {
                assert!(!b.is_set(blk));
            } else {
                assert!(b.is_set(blk));
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BlockAllocator::decode(&[1, 2]).is_err());
        // Capacity 64 claims but only header present.
        let mut buf = 64u64.to_le_bytes().to_vec();
        assert!(BlockAllocator::decode(&buf).is_err());
        // Bits beyond capacity set.
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut small = 10u64.to_le_bytes().to_vec();
        small.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(BlockAllocator::decode(&small).is_err());
    }

    #[test]
    fn mark_used_rejects_duplicates_and_range() {
        let mut a = BlockAllocator::new(10);
        a.mark_used(3).unwrap();
        assert!(a.mark_used(3).is_err());
        assert!(a.mark_used(10).is_err());
        assert_eq!(a.free(), 9);
    }

    proptest! {
        #[test]
        fn prop_free_count_is_consistent(ops in proptest::collection::vec(any::<(bool, u64)>(), 0..200)) {
            let mut a = BlockAllocator::new(64);
            let mut held: Vec<u64> = Vec::new();
            for (is_alloc, pick) in ops {
                if is_alloc {
                    if let Ok(b) = a.alloc() {
                        held.push(b);
                    }
                } else if !held.is_empty() {
                    let b = held.remove((pick % held.len() as u64) as usize);
                    a.free_block(b).unwrap();
                }
                prop_assert_eq!(a.used(), held.len() as u64);
            }
        }

        #[test]
        fn prop_encode_decode_identity(allocs in 0u64..64) {
            let mut a = BlockAllocator::new(64);
            a.alloc_many(allocs).unwrap();
            let b = BlockAllocator::decode(&a.encode()).unwrap();
            prop_assert_eq!(b.free(), a.free());
            prop_assert_eq!(b.capacity(), a.capacity());
        }
    }
}
