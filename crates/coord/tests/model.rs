//! Model-checking suites for the Coordinator's failure-handling
//! protocol: the reaper (`fail_msu`) racing unsolicited `StreamDone`
//! reports, idempotence across concurrent failure paths, and the
//! no-grants-on-a-downed-MSU invariant. Compiled only under
//! `RUSTFLAGS="--cfg calliope_check"`, where the `calliope_check` shim
//! types route every lock/atomic operation through a deterministic
//! scheduler that explores thread interleavings exhaustively (up to a
//! preemption bound).
//!
//! The models mirror the real structure: a `failures` mutex serializes
//! composite failure-handling sequences, while the scheduler table has
//! its own lock (individual operations are atomic, sequences are not).
//!
//! Run with:
//! `RUSTFLAGS="--cfg calliope_check" cargo test -p calliope-coord --test model`
#![cfg(calliope_check)]

use calliope_check::sync::{Arc, Mutex};
use calliope_check::{model, thread};

/// Per-stream bandwidth of the modelled grant.
const BW: u64 = 10;
/// Per-MSU capacity.
const CAP: u64 = 20;

/// A two-MSU grant table: free bandwidth per MSU plus the single
/// modelled stream's reservation (`Some(msu)` when granted).
struct Table {
    free: [u64; 2],
    res: Option<usize>,
    failovers: u32,
}

/// `fail_over` analog: release already happened; re-admit on any MSU
/// that is not the failed one and has capacity.
fn fail_over(t: &mut Table, failed: usize) {
    for msu in 0..2 {
        if msu != failed && t.free[msu] >= BW {
            t.free[msu] -= BW;
            t.res = Some(msu);
            t.failovers += 1;
            return;
        }
    }
}

/// The race fixed in `handle_msu_notification`: MSU 0 dies holding the
/// stream's grant. The reaper (`fail_msu`) reaps the grant and fails the
/// stream over to MSU 1 — while MSU 0's last `StreamDone { IoError }`
/// report is still in flight. Without the source-MSU guard, a late
/// report would release the *replica's* fresh grant and fail over again;
/// with it, exactly one failover happens and the replica's grant
/// survives, in every interleaving.
#[test]
fn late_stream_done_never_double_releases() {
    let report = model(|| {
        let failures = Arc::new(Mutex::new(()));
        let table = Arc::new(Mutex::new(Table {
            free: [CAP - BW, CAP], // stream granted on MSU 0
            res: Some(0),
            failovers: 0,
        }));

        // Reaper: fail_msu(0).
        let (f2, t2) = (Arc::clone(&failures), Arc::clone(&table));
        let reaper = thread::spawn(move || {
            let _order = f2.lock();
            let reaped = {
                let mut t = t2.lock();
                // mark_down: reap every grant held by MSU 0.
                if t.res == Some(0) {
                    t.free[0] += BW;
                    t.res = None;
                    true
                } else {
                    false
                }
            };
            if reaped {
                fail_over(&mut t2.lock(), 0);
            }
        });

        // Handler: StreamDone { IoError } *from* MSU 0.
        {
            let _order = failures.lock();
            let holder = table.lock().res;
            match holder {
                // Reaped already — the reaper owns the stream's fate.
                None => {}
                // Stale report: the stream moved to another MSU.
                Some(msu) if msu != 0 => {}
                Some(_) => {
                    {
                        let mut t = table.lock();
                        t.free[0] += BW;
                        t.res = None;
                    }
                    fail_over(&mut table.lock(), 0);
                }
            }
        }
        reaper.join().unwrap();

        let t = table.lock();
        assert_eq!(t.res, Some(1), "the stream must end on the replica");
        assert_eq!(t.failovers, 1, "exactly one failover, never two");
        assert_eq!(t.free[0], CAP, "the dead MSU's bandwidth fully credited");
        assert_eq!(t.free[1], CAP - BW, "the replica holds exactly one grant");
    });
    assert!(report.schedules > 1, "must explore multiple interleavings");
}

/// Two failure paths race to declare the same MSU dead — the heartbeat
/// monitor and the connection reader both funnel into `fail_msu`. The
/// mark-down must be idempotent: the MSU's grants are credited exactly
/// once no matter which path wins.
#[test]
fn concurrent_failure_paths_reap_exactly_once() {
    let report = model(|| {
        let failures = Arc::new(Mutex::new(()));
        let table = Arc::new(Mutex::new(Table {
            free: [CAP - BW, CAP],
            res: Some(0),
            failovers: 0,
        }));

        let mut paths = Vec::new();
        for _ in 0..2 {
            let (f2, t2) = (Arc::clone(&failures), Arc::clone(&table));
            paths.push(thread::spawn(move || {
                let _order = f2.lock();
                let reaped = {
                    let mut t = t2.lock();
                    if t.res == Some(0) {
                        t.free[0] += BW;
                        t.res = None;
                        true
                    } else {
                        false
                    }
                };
                if reaped {
                    fail_over(&mut t2.lock(), 0);
                }
            }));
        }
        for p in paths {
            p.join().unwrap();
        }

        let t = table.lock();
        assert_eq!(t.failovers, 1, "the losing path must find nothing to reap");
        assert_eq!(t.free[0], CAP, "credit applied exactly once");
        assert_eq!(t.free[1], CAP - BW, "one grant on the replica, not two");
    });
    assert!(report.schedules > 1);
}

/// Admission racing the reaper: a play request is admitted while MSU 0
/// is being marked down. Whichever order the scheduler explores, no
/// stream may end up granted on a downed MSU — either admission already
/// avoided it, or the reaper reaped the fresh grant and re-admitted it
/// on the survivor.
#[test]
fn no_grant_survives_on_a_downed_msu() {
    struct Adm {
        up: [bool; 2],
        free: [u64; 2],
        res: Option<usize>,
    }
    let report = model(|| {
        let failures = Arc::new(Mutex::new(()));
        let table = Arc::new(Mutex::new(Adm {
            up: [true, true],
            free: [CAP, CAP],
            res: None,
        }));

        // Admission: grant on the first live MSU with capacity (the
        // real `admit_play` does this under the scheduler lock).
        let t2 = Arc::clone(&table);
        let admit = thread::spawn(move || {
            let mut t = t2.lock();
            for msu in 0..2 {
                if t.up[msu] && t.free[msu] >= BW {
                    t.free[msu] -= BW;
                    t.res = Some(msu);
                    break;
                }
            }
        });

        // Reaper: mark MSU 0 down, reap anything granted there, and
        // re-admit it on a survivor.
        {
            let _order = failures.lock();
            let reaped = {
                let mut t = table.lock();
                t.up[0] = false;
                if t.res == Some(0) {
                    t.free[0] += BW;
                    t.res = None;
                    true
                } else {
                    false
                }
            };
            if reaped {
                let mut t = table.lock();
                for msu in 0..2 {
                    if t.up[msu] && t.free[msu] >= BW {
                        t.free[msu] -= BW;
                        t.res = Some(msu);
                        break;
                    }
                }
            }
        }
        admit.join().unwrap();

        let t = table.lock();
        let holder = t.res.expect("the stream must end up granted somewhere");
        assert!(t.up[holder], "a grant survived on a downed MSU");
        assert_eq!(t.free[holder], CAP - BW);
    });
    assert!(report.schedules > 1);
}
