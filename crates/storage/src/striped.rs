//! Striped file layout — the ablation the paper discusses but did not
//! build.
//!
//! "In the current implementation, Calliope's MSU does not stripe files
//! over its disks. … It would be easy to lay out a file so that
//! consecutive blocks are on 'adjacent' disks. The disk process in this
//! case would read or write blocks from its disks in a round-robin
//! fashion." (paper §2.3.3)
//!
//! [`StripedStore`] implements exactly that: global page `i` of a file
//! lives on disk `i mod D`. The paper's analysis of the trade-off —
//! duty cycles of `N·D` slots, VCR-command latency `D×` longer, but any
//! title readable at the full `D`-disk aggregate bandwidth — is
//! quantified by experiment E9 (see DESIGN.md).

use crate::catalog::{FileKind, RootEntry};
use crate::fs::MsuFs;
use calliope_types::error::{Error, Result};

/// A round-robin striped store over several single-disk file systems.
pub struct StripedStore {
    disks: Vec<MsuFs>,
}

impl std::fmt::Debug for StripedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedStore")
            .field("disks", &self.disks.len())
            .finish_non_exhaustive()
    }
}

impl StripedStore {
    /// Builds a store over `disks` (at least one; all must share a block
    /// size).
    pub fn new(disks: Vec<MsuFs>) -> Result<StripedStore> {
        if disks.is_empty() {
            return Err(Error::storage("striped store needs at least one disk"));
        }
        let bs = disks[0].block_size();
        if disks.iter().any(|d| d.block_size() != bs) {
            return Err(Error::storage("striped disks must share a block size"));
        }
        Ok(StripedStore { disks })
    }

    /// Number of member disks (the stripe width `D`).
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// Block size shared by all member disks.
    pub fn block_size(&self) -> usize {
        self.disks[0].block_size()
    }

    /// Aggregate free bytes across all disks.
    pub fn free_bytes(&self) -> u64 {
        self.disks.iter().map(MsuFs::free_bytes).sum()
    }

    /// Creates a striped file, splitting the reservation evenly (rounded
    /// up) across the member disks.
    pub fn create(&mut self, name: &str, kind: FileKind, reserve_bytes: u64) -> Result<()> {
        let per_disk = reserve_bytes.div_ceil(self.disks.len() as u64);
        for (i, d) in self.disks.iter_mut().enumerate() {
            if let Err(e) = d.create(name, kind, per_disk) {
                // Roll back the disks that already created the file so a
                // failed create leaves no partial state.
                for j in 0..i {
                    let _ = self.disks[j].delete(name);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Total global pages written so far for `name`.
    fn global_pages(&self, name: &str) -> Result<u64> {
        let mut total = 0;
        for d in &self.disks {
            total += d.file(name)?.pages();
        }
        Ok(total)
    }

    /// Appends one page; consecutive pages land on adjacent disks.
    /// Returns the global page index.
    pub fn append_page(&mut self, name: &str, page: &[u8], payload_bytes: u64) -> Result<u64> {
        let global = self.global_pages(name)?;
        let disk = (global % self.disks.len() as u64) as usize;
        self.disks[disk].append_page(name, page, payload_bytes)?;
        Ok(global)
    }

    /// Reads global page `idx` into `buf`.
    pub fn read_page(&mut self, name: &str, idx: u64, buf: &mut [u8]) -> Result<()> {
        let d = self.disks.len() as u64;
        let disk = (idx % d) as usize;
        self.disks[disk].read_page(name, idx / d, buf)
    }

    /// Reads the consecutive global pages `start .. start + bufs.len()`
    /// of `name`, batching the per-disk shares: each member disk's pages
    /// are grouped into physically adjacent runs and issued as coalesced
    /// multi-block transfers, so a `D`-wide stripe read costs at most
    /// one seek per disk instead of one per page.
    pub fn read_pages_into(
        &mut self,
        name: &str,
        start: u64,
        bufs: &mut [&mut [u8]],
    ) -> Result<()> {
        let d = self.disks.len() as u64;
        let mut per_disk: Vec<Vec<(u64, &mut [u8])>> =
            (0..self.disks.len()).map(|_| Vec::new()).collect();
        for (j, buf) in bufs.iter_mut().enumerate() {
            let global = start + j as u64;
            let disk = (global % d) as usize;
            let abs = self.disks[disk].page_block(name, global / d)?;
            per_disk[disk].push((abs, &mut **buf));
        }
        for (k, mut reqs) in per_disk.into_iter().enumerate() {
            // Consecutive global pages map to consecutive per-disk pages,
            // but physical adjacency depends on allocation; split into
            // maximal adjacent runs and batch each.
            while !reqs.is_empty() {
                let mut n = 1;
                while n < reqs.len() && reqs[n].0 == reqs[0].0 + n as u64 {
                    n += 1;
                }
                let run_start = reqs[0].0;
                let mut refs: Vec<&mut [u8]> = reqs.drain(..n).map(|(_, b)| b).collect();
                self.disks[k].read_blocks_abs(run_start, &mut refs)?;
            }
        }
        Ok(())
    }

    /// Which disk serves global page `idx` (for duty-cycle scheduling).
    pub fn disk_of(&self, idx: u64) -> usize {
        (idx % self.disks.len() as u64) as usize
    }

    /// Finalizes the file on every disk. The IB-tree root (if any) is
    /// stored on disk 0; roots reference *global* page indices, so the
    /// reader must route through [`StripedStore::read_page`].
    pub fn finalize(&mut self, name: &str, duration_us: u64, root: Vec<RootEntry>) -> Result<()> {
        for (i, d) in self.disks.iter_mut().enumerate() {
            let r = if i == 0 { root.clone() } else { Vec::new() };
            d.finalize(name, duration_us, r)?;
        }
        Ok(())
    }

    /// Deletes the file from every disk.
    pub fn delete(&mut self, name: &str) -> Result<()> {
        for d in &mut self.disks {
            d.delete(name)?;
        }
        Ok(())
    }

    /// Total payload bytes of a finalized file.
    pub fn len_bytes(&self, name: &str) -> Result<u64> {
        let mut total = 0;
        for d in &self.disks {
            total += d.file(name)?.len_bytes;
        }
        Ok(total)
    }

    /// The IB-tree root for a file (stored on disk 0).
    pub fn root(&self, name: &str) -> Result<Vec<RootEntry>> {
        Ok(self.disks[0].file(name)?.root.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;

    const BS: usize = 1024;

    fn store(disks: usize, blocks_each: u64) -> StripedStore {
        let fss = (0..disks)
            .map(|_| MsuFs::format_with(Box::new(MemDisk::new(BS, blocks_each)), 2).unwrap())
            .collect();
        StripedStore::new(fss).unwrap()
    }

    #[test]
    fn pages_round_robin_across_disks() {
        let mut s = store(3, 32);
        s.create("f", FileKind::Raw, 9 * BS as u64).unwrap();
        for i in 0..9u8 {
            let idx = s.append_page("f", &vec![i; BS], BS as u64).unwrap();
            assert_eq!(idx, i as u64);
            assert_eq!(s.disk_of(idx), (i % 3) as usize);
        }
        // Each disk holds exactly 3 pages.
        for d in &s.disks {
            assert_eq!(d.file("f").unwrap().pages(), 3);
        }
        let mut buf = vec![0u8; BS];
        for i in 0..9u8 {
            s.read_page("f", i as u64, &mut buf).unwrap();
            assert_eq!(buf, vec![i; BS]);
        }
    }

    #[test]
    fn batched_stripe_read_spans_disks() {
        let mut s = store(3, 32);
        s.create("f", FileKind::Raw, 12 * BS as u64).unwrap();
        for i in 0..12u8 {
            s.append_page("f", &vec![i; BS], BS as u64).unwrap();
        }
        // A batch that starts mid-stripe and wraps several strides.
        let mut bufs: Vec<Vec<u8>> = (0..7).map(|_| vec![0u8; BS]).collect();
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        s.read_pages_into("f", 2, &mut refs).unwrap();
        for (j, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![(2 + j) as u8; BS], "global page {}", 2 + j);
        }
        // Out-of-range batches fail cleanly.
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(s.read_pages_into("f", 8, &mut refs).is_err());
        assert!(s.read_pages_into("nope", 0, &mut refs).is_err());
    }

    #[test]
    fn finalize_and_len_aggregate() {
        let mut s = store(2, 32);
        s.create("f", FileKind::Raw, 4 * BS as u64).unwrap();
        for i in 0..4u8 {
            s.append_page("f", &vec![i; BS], 500).unwrap();
        }
        s.finalize("f", 9_000, Vec::new()).unwrap();
        assert_eq!(s.len_bytes("f").unwrap(), 2000);
        assert!(s.root("f").unwrap().is_empty());
    }

    #[test]
    fn delete_frees_all_disks() {
        let mut s = store(2, 16);
        let before = s.free_bytes();
        s.create("f", FileKind::Raw, 4 * BS as u64).unwrap();
        s.append_page("f", &vec![0u8; BS], BS as u64).unwrap();
        s.finalize("f", 0, Vec::new()).unwrap();
        s.delete("f").unwrap();
        assert_eq!(s.free_bytes(), before);
    }

    #[test]
    fn failed_create_rolls_back() {
        // Disk 1 is too small for its share: create must fail and leave
        // no residue on disk 0.
        let big = MsuFs::format_with(Box::new(MemDisk::new(BS, 64)), 2).unwrap();
        let tiny = MsuFs::format_with(Box::new(MemDisk::new(BS, 4)), 2).unwrap();
        let mut s = StripedStore::new(vec![big, tiny]).unwrap();
        let free = s.free_bytes();
        assert!(s.create("huge", FileKind::Raw, 40 * BS as u64).is_err());
        assert_eq!(s.free_bytes(), free, "no space leaked");
        assert!(s.disks[0].file("huge").is_err());
    }

    #[test]
    fn empty_store_is_rejected() {
        assert!(StripedStore::new(Vec::new()).is_err());
    }

    #[test]
    fn mismatched_block_sizes_rejected() {
        let a = MsuFs::format_with(Box::new(MemDisk::new(1024, 16)), 2).unwrap();
        let b = MsuFs::format_with(Box::new(MemDisk::new(2048, 16)), 2).unwrap();
        assert!(StripedStore::new(vec![a, b]).is_err());
    }

    #[test]
    fn width_one_degenerates_to_plain_fs() {
        let mut s = store(1, 32);
        s.create("f", FileKind::Raw, 2 * BS as u64).unwrap();
        for i in 0..2u8 {
            assert_eq!(
                s.append_page("f", &vec![i; BS], BS as u64).unwrap(),
                i as u64
            );
            assert_eq!(s.disk_of(i as u64), 0);
        }
    }
}
