//! The disk process: one thread per disk.
//!
//! "When the client starts a read stream, the MSU's disk process loads
//! data from disk into a shared memory buffer. … The disk process makes
//! sure that the network process always has buffered data ready to
//! send. When data is recorded, the network process fills buffers and
//! the disk process writes full ones to disk." (paper §2.3)
//!
//! The thread services its read streams in round-robin duty-cycle order
//! (§2.2.1), reading one 256 KB page per eligible stream per pass, and
//! drains recording rings into the file system. It also owns the MSU
//! file system for its disk, so metadata operations (stat, create,
//! seek, trick-switch) arrive as commands with reply channels.

use crate::metrics::{MsuMetrics, DISK_CYCLE_BUDGET_US};
use crate::pool::{PageData, PagePool};
use crate::spsc::{Consumer, PopError, Producer};
use crate::stream::{raw_seek, ActiveFile, PageBuf, StreamCtl, StreamPhase, StreamShared};
use crate::trick::{self, TrickMode};
use calliope_proto::record::PacketRecord;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::catalog::FileKind;
use calliope_storage::ibtree::{IbTreeReader, IbTreeWriter};
use calliope_storage::page::Geometry;
use calliope_storage::{coalesce_runs, ElevatorState, MsuFs};
use calliope_types::error::{Error, Result};
use calliope_types::time::MediaTime;
use calliope_types::wire::data::PacketKind;
use calliope_types::StreamId;
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events the disk thread reports to the control plane.
#[derive(Debug)]
pub enum DiskEvent {
    /// A group became fully primed and was released.
    GroupReleased(calliope_types::GroupId),
    /// A recording finished (ring closed) and was finalized.
    RecordFinished {
        /// Which stream.
        stream: StreamId,
        /// Payload bytes recorded.
        bytes: u64,
        /// Recording duration, µs.
        duration_us: u64,
    },
    /// A stream died on an I/O error.
    StreamFailed {
        /// Which stream.
        stream: StreamId,
        /// What happened.
        msg: String,
    },
}

/// Names of the trick-play files attached to a read stream.
#[derive(Clone, Debug, Default)]
pub struct TrickNames {
    /// Fast-forward file, if loaded.
    pub fast_forward: Option<String>,
    /// Fast-backward file, if loaded.
    pub fast_backward: Option<String>,
}

/// Commands accepted by a disk thread.
pub enum DiskCmd {
    /// Looks up a file's metadata (used by the Coordinator RPC path).
    Stat {
        /// File name.
        name: String,
        /// Reply channel.
        reply: Sender<Result<ActiveFile>>,
    },
    /// Creates a file for a recording, reserving space.
    Create {
        /// File name.
        name: String,
        /// Raw or IB-tree.
        kind: FileKind,
        /// Bytes to reserve from the client's length estimate.
        reserve_bytes: u64,
        /// Reply channel.
        reply: Sender<Result<()>>,
    },
    /// Deletes a file.
    Delete {
        /// File name.
        name: String,
        /// Reply channel.
        reply: Sender<Result<()>>,
    },
    /// Reports free space, in bytes.
    FreeBytes {
        /// Reply channel.
        reply: Sender<u64>,
    },
    /// Reads one file page (used by the replication copy path).
    ReadPage {
        /// File name.
        name: String,
        /// File-relative page index.
        page: u64,
        /// Reply channel (the full block).
        reply: Sender<Result<Vec<u8>>>,
    },
    /// Appends one page to an unfinalized file (replication copy path).
    AppendPage {
        /// File name.
        name: String,
        /// The page (one block).
        data: Vec<u8>,
        /// Payload bytes the page contributes to `len_bytes`.
        payload_bytes: u64,
        /// Reply channel.
        reply: Sender<Result<u64>>,
    },
    /// Finalizes a file created through the copy path.
    Finalize {
        /// File name.
        name: String,
        /// Play duration, µs.
        duration_us: u64,
        /// IB-tree root (empty for raw files).
        root: Vec<calliope_storage::catalog::RootEntry>,
        /// Reply channel.
        reply: Sender<Result<()>>,
    },
    /// Registers a play stream: the disk thread fills `producer` with
    /// pages.
    AddRead {
        /// Shared stream state.
        shared: Arc<StreamShared>,
        /// Group for release coordination.
        group: Arc<crate::stream::GroupShared>,
        /// The page ring (capacity 2 = double buffering).
        producer: Producer<PageBuf>,
        /// CBR schedule for raw files (None for stored schedules).
        schedule: Option<CbrSchedule>,
        /// Trick-play files, if any.
        trick: TrickNames,
    },
    /// Registers a recording stream: the disk thread drains `consumer`.
    AddWrite {
        /// Shared stream state (its `ctl.file.name` names the file).
        shared: Arc<StreamShared>,
        /// Records from the protocol module.
        consumer: Consumer<PacketRecord>,
        /// Whether to store the delivery schedule (IB-tree) or
        /// concatenate payloads (raw).
        stores_schedule: bool,
        /// For constant-rate recordings, the nominal rate: the
        /// finalized duration is `bytes / rate`, independent of how
        /// fast the packets arrived.
        cbr_rate: Option<calliope_types::time::BitRate>,
    },
    /// Seeks a play stream to a media time.
    Seek {
        /// Which stream.
        stream: StreamId,
        /// Target offset.
        target: MediaTime,
        /// Reply channel.
        reply: Sender<Result<()>>,
    },
    /// Switches a play stream between normal and trick-mode files.
    Trick {
        /// Which stream.
        stream: StreamId,
        /// Desired mode.
        mode: TrickMode,
        /// Reply channel.
        reply: Sender<Result<()>>,
    },
    /// Drops a stream (its rings are torn down by the owner).
    Remove {
        /// Which stream.
        stream: StreamId,
    },
    /// Stops the thread.
    Shutdown,
}

impl std::fmt::Debug for DiskCmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DiskCmd::Stat { .. } => "Stat",
            DiskCmd::Create { .. } => "Create",
            DiskCmd::Delete { .. } => "Delete",
            DiskCmd::FreeBytes { .. } => "FreeBytes",
            DiskCmd::ReadPage { .. } => "ReadPage",
            DiskCmd::AppendPage { .. } => "AppendPage",
            DiskCmd::Finalize { .. } => "Finalize",
            DiskCmd::AddRead { .. } => "AddRead",
            DiskCmd::AddWrite { .. } => "AddWrite",
            DiskCmd::Seek { .. } => "Seek",
            DiskCmd::Trick { .. } => "Trick",
            DiskCmd::Remove { .. } => "Remove",
            DiskCmd::Shutdown => "Shutdown",
        };
        write!(f, "DiskCmd::{name}")
    }
}

struct ReadIo {
    shared: Arc<StreamShared>,
    group: Arc<crate::stream::GroupShared>,
    producer: Producer<PageBuf>,
    schedule: Option<CbrSchedule>,
    trick: TrickNames,
    primed: bool,
    /// The normal-rate file (for trick-position math once `ctl.file` is
    /// a filtered one).
    normal: ActiveFile,
}

/// Per-stream read-ahead ceiling: with the ring at capacity 4, up to two
/// pages ride each duty cycle while two are still being drained —
/// double buffering (§2.2.1) with one cycle of slack.
pub const MAX_READ_AHEAD: usize = 2;

/// One page "ticket" claimed from a stream's control block during the
/// gather phase; the I/O happens later, elevator-ordered and coalesced.
struct Claim {
    id: StreamId,
    gen: u64,
    index: u64,
    skip: usize,
    valid: usize,
    /// Absolute device block address (the elevator's sort key).
    abs: u64,
}

enum WriteSink {
    Ib {
        writer: IbTreeWriter,
    },
    Raw {
        buf: Vec<u8>,
        payload_bytes: u64,
        last_offset: MediaTime,
        cbr_rate: Option<calliope_types::time::BitRate>,
    },
}

struct WriteIo {
    consumer: Consumer<PacketRecord>,
    sink: WriteSink,
    file: String,
    failed: bool,
}

/// The disk thread main loop. Runs until `Shutdown` or channel
/// disconnection.
pub fn run(
    mut fs: MsuFs,
    rx: Receiver<DiskCmd>,
    events: Sender<DiskEvent>,
    metrics: Arc<MsuMetrics>,
) {
    let geo = geometry_for(&fs);
    let pool = PagePool::new(fs.block_size());
    let mut elevator = ElevatorState::new();
    let mut reads: HashMap<StreamId, ReadIo> = HashMap::new();
    let mut writes: HashMap<StreamId, WriteIo> = HashMap::new();
    let mut order: Vec<StreamId> = Vec::new();
    let mut rr: usize = 0;

    loop {
        // Drain the command queue.
        loop {
            match rx.try_recv() {
                Ok(DiskCmd::Shutdown) => return,
                Ok(cmd) => handle_cmd(
                    &mut fs,
                    geo,
                    &pool,
                    cmd,
                    &mut reads,
                    &mut writes,
                    &mut order,
                ),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => return,
            }
        }

        let mut progressed = false;
        let cycle_start = Instant::now();

        // Duty cycle, gather phase: claim every eligible stream's next
        // pages (up to the ring's slack, capped at MAX_READ_AHEAD) so the
        // whole cycle's I/O can be elevator-ordered and coalesced. The
        // claims advance `next_page` under the lock; the reads happen
        // outside it — a concurrent seek bumps `gen` and the network
        // thread discards the stale pages.
        let mut claims: Vec<Claim> = Vec::new();
        let mut failed: Vec<(StreamId, String)> = Vec::new();
        if !order.is_empty() {
            for probe in 0..order.len() {
                let id = order[(rr + probe) % order.len()];
                let Some(io) = reads.get_mut(&id) else {
                    continue;
                };
                if io.producer.is_closed() {
                    continue;
                }
                let slack = io.producer.slack().min(MAX_READ_AHEAD);
                if slack == 0 {
                    continue;
                }
                let mut ctl = io.shared.ctl.lock();
                if ctl.phase == StreamPhase::Done {
                    continue;
                }
                for _ in 0..slack {
                    if ctl.eof || ctl.next_page >= ctl.file.pages {
                        ctl.eof = true;
                        break;
                    }
                    let page_idx = ctl.next_page;
                    ctl.next_page += 1;
                    if ctl.next_page >= ctl.file.pages {
                        ctl.eof = true;
                    }
                    let skip = std::mem::take(&mut ctl.pending_skip);
                    let valid = match ctl.file.kind {
                        FileKind::Raw => {
                            let start = page_idx * fs.block_size() as u64;
                            (ctl.file.len_bytes - start.min(ctl.file.len_bytes))
                                .min(fs.block_size() as u64) as usize
                        }
                        FileKind::IbTree => fs.block_size(),
                    };
                    match fs.page_block(&ctl.file.name, page_idx) {
                        Ok(abs) => claims.push(Claim {
                            id,
                            gen: ctl.gen,
                            index: page_idx,
                            skip,
                            valid,
                            abs,
                        }),
                        Err(e) => {
                            ctl.phase = StreamPhase::Done;
                            failed.push((id, e.to_string()));
                            break;
                        }
                    }
                }
            }
            rr = (rr + 1) % order.len();
        }

        // Issue phase: SCAN-order the batch, merge physically adjacent
        // blocks into single transfers, and read into pooled buffers.
        if !claims.is_empty() {
            let addrs: Vec<u64> = claims.iter().map(|c| c.abs).collect();
            let head_before = elevator.head;
            let issue = elevator.plan(&addrs);
            let planned: Vec<u64> = issue.iter().map(|&i| addrs[i]).collect();
            let gather_travel = ElevatorState::travel(head_before, &addrs);
            let scan_travel = ElevatorState::travel(head_before, &planned);
            metrics
                .disk_seek_saved_blocks
                .add(gather_travel.saturating_sub(scan_travel));
            metrics.disk_batch_pages.record(claims.len() as u64);
            metrics.disk_batched_pages_total.add(claims.len() as u64);

            let mut results: Vec<Option<PageData>> = (0..claims.len()).map(|_| None).collect();
            for run in coalesce_runs(&addrs, &issue) {
                metrics.disk_coalesced_runs.add(1);
                if run.len() >= 2 {
                    metrics.disk_batched_pages.add(run.len() as u64);
                }
                let read_start = Instant::now();
                let mut bufs: Vec<crate::pool::PooledBuf> =
                    (0..run.len()).map(|_| pool.get()).collect();
                let res = {
                    let mut refs: Vec<&mut [u8]> =
                        bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                    fs.read_blocks_abs(run.start, &mut refs)
                };
                match res {
                    Ok(()) => {
                        metrics
                            .disk_read_us
                            .record(read_start.elapsed().as_micros() as u64);
                        for (buf, &ci) in bufs.into_iter().zip(&run.members) {
                            results[ci] = Some(buf.freeze());
                        }
                    }
                    Err(e) => {
                        // Unread pooled buffers return via drop. Fail every
                        // stream with a page in this run, once each.
                        for &ci in &run.members {
                            let id = claims[ci].id;
                            if !failed.iter().any(|(f, _)| *f == id) {
                                failed.push((id, e.to_string()));
                            }
                        }
                    }
                }
            }
            let exhausted = pool.drain_heap_fallbacks();
            if exhausted > 0 {
                metrics.pool_exhausted.add(exhausted);
            }

            // Deliver phase: push per stream in claim order — claims were
            // taken in ascending page order per stream, so rings stay
            // ordered no matter how the elevator reordered the I/O.
            for (ci, claim) in claims.iter().enumerate() {
                let Some(data) = results[ci].take() else {
                    continue;
                };
                let Some(io) = reads.get_mut(&claim.id) else {
                    continue;
                };
                let page = PageBuf {
                    gen: claim.gen,
                    index: claim.index,
                    skip: claim.skip,
                    valid: claim.valid,
                    data,
                };
                // We claimed at most the ring's slack and are the sole
                // producer, so Full is impossible; Closed pages recycle
                // via drop.
                if io.producer.push(page).is_ok() {
                    progressed = true;
                    if !io.primed {
                        io.primed = true;
                        if io.group.prime(claim.id) {
                            let _ = events.send(DiskEvent::GroupReleased(io.group.id));
                        }
                    }
                }
            }
        }
        for (id, msg) in failed {
            if let Some(io) = reads.get(&id) {
                io.shared.ctl.lock().phase = StreamPhase::Done;
            }
            let _ = events.send(DiskEvent::StreamFailed { stream: id, msg });
        }

        // Drain recording rings.
        let mut finished: Vec<StreamId> = Vec::new();
        for (id, w) in writes.iter_mut() {
            let write_start = Instant::now();
            let served = serve_write(&mut fs, w);
            if !matches!(served, Ok(ServeWrite::Idle)) {
                metrics
                    .disk_write_us
                    .record(write_start.elapsed().as_micros() as u64);
            }
            match served {
                Ok(ServeWrite::Progress) => progressed = true,
                Ok(ServeWrite::Idle) => {}
                Ok(ServeWrite::Finished { bytes, duration_us }) => {
                    let _ = events.send(DiskEvent::RecordFinished {
                        stream: *id,
                        bytes,
                        duration_us,
                    });
                    finished.push(*id);
                    progressed = true;
                }
                Err(e) => {
                    let _ = events.send(DiskEvent::StreamFailed {
                        stream: *id,
                        msg: e.to_string(),
                    });
                    finished.push(*id);
                }
            }
        }
        for id in finished {
            writes.remove(&id);
        }

        // Duty-cycle accounting: a pass that outruns the 10 ms timer
        // granularity means this disk is oversubscribed.
        if progressed {
            let pass_us = cycle_start.elapsed().as_micros() as u64;
            if pass_us > DISK_CYCLE_BUDGET_US {
                metrics
                    .disk_cycle_overrun_us
                    .record(pass_us - DISK_CYCLE_BUDGET_US);
                tracing::debug!(
                    "duty cycle overran its budget by {} µs",
                    pass_us - DISK_CYCLE_BUDGET_US
                );
            }
        }

        if !progressed {
            // Idle: block briefly on the command channel so VCR commands
            // stay responsive without spinning.
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(DiskCmd::Shutdown) => return,
                Ok(cmd) => handle_cmd(
                    &mut fs,
                    geo,
                    &pool,
                    cmd,
                    &mut reads,
                    &mut writes,
                    &mut order,
                ),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

fn geometry_for(fs: &MsuFs) -> Geometry {
    let mut geo = Geometry::paper();
    if fs.block_size() != geo.page_size {
        // Test configurations use small blocks; scale the internal page
        // down proportionally.
        geo = Geometry {
            page_size: fs.block_size(),
            internal_size: (fs.block_size() / 8).max(144),
            max_keys: 8,
        };
    }
    geo
}

fn stat_file(fs: &MsuFs, name: &str) -> Result<ActiveFile> {
    let meta = fs.file(name)?;
    Ok(ActiveFile {
        name: meta.name.clone(),
        kind: meta.kind,
        pages: meta.pages(),
        len_bytes: meta.len_bytes,
        root: meta.root.clone(),
        duration_us: meta.duration_us,
    })
}

fn handle_cmd(
    fs: &mut MsuFs,
    geo: Geometry,
    pool: &PagePool,
    cmd: DiskCmd,
    reads: &mut HashMap<StreamId, ReadIo>,
    writes: &mut HashMap<StreamId, WriteIo>,
    order: &mut Vec<StreamId>,
) {
    match cmd {
        DiskCmd::Stat { name, reply } => {
            let _ = reply.send(stat_file(fs, &name));
        }
        DiskCmd::Create {
            name,
            kind,
            reserve_bytes,
            reply,
        } => {
            let _ = reply.send(fs.create(&name, kind, reserve_bytes));
        }
        DiskCmd::Delete { name, reply } => {
            let _ = reply.send(fs.delete(&name));
        }
        DiskCmd::FreeBytes { reply } => {
            let _ = reply.send(fs.free_bytes());
        }
        DiskCmd::ReadPage { name, page, reply } => {
            let mut buf = vec![0u8; fs.block_size()];
            let _ = reply.send(fs.read_page(&name, page, &mut buf).map(|()| buf));
        }
        DiskCmd::AppendPage {
            name,
            data,
            payload_bytes,
            reply,
        } => {
            let _ = reply.send(fs.append_page(&name, &data, payload_bytes));
        }
        DiskCmd::Finalize {
            name,
            duration_us,
            root,
            reply,
        } => {
            let _ = reply.send(fs.finalize(&name, duration_us, root));
        }
        DiskCmd::AddRead {
            shared,
            group,
            producer,
            schedule,
            trick,
        } => {
            let id = shared.id;
            let normal = shared.ctl.lock().file.clone();
            // Size the pool here, on the control path, so the duty cycle
            // never allocates: every stream can have a full ring of pages
            // outstanding plus the one the network thread popped and is
            // still transmitting from.
            let need: u64 = reads
                .values()
                .map(|io| io.producer.capacity() as u64 + 1)
                .sum::<u64>()
                + producer.capacity() as u64
                + 1;
            pool.ensure_capacity(need);
            reads.insert(
                id,
                ReadIo {
                    shared,
                    group,
                    producer,
                    schedule,
                    trick,
                    primed: false,
                    normal,
                },
            );
            order.push(id);
        }
        DiskCmd::AddWrite {
            shared,
            consumer,
            stores_schedule,
            cbr_rate,
        } => {
            let id = shared.id;
            let file = shared.ctl.lock().file.name.clone();
            drop(shared);
            let sink = if stores_schedule {
                match IbTreeWriter::new(geo) {
                    Ok(writer) => WriteSink::Ib { writer },
                    Err(e) => {
                        // Geometry was validated at startup; treat as fatal
                        // for this stream only.
                        let _ = e;
                        return;
                    }
                }
            } else {
                WriteSink::Raw {
                    buf: Vec::with_capacity(fs.block_size()),
                    payload_bytes: 0,
                    last_offset: MediaTime::ZERO,
                    cbr_rate,
                }
            };
            writes.insert(
                id,
                WriteIo {
                    consumer,
                    sink,
                    file,
                    failed: false,
                },
            );
        }
        DiskCmd::Seek {
            stream,
            target,
            reply,
        } => {
            let res = match reads.get_mut(&stream) {
                Some(io) => do_seek(fs, geo, io, target),
                None => Err(Error::NoSuchStream { stream }),
            };
            let _ = reply.send(res);
        }
        DiskCmd::Trick {
            stream,
            mode,
            reply,
        } => {
            let res = match reads.get_mut(&stream) {
                Some(io) => do_trick(fs, io, mode),
                None => Err(Error::NoSuchStream { stream }),
            };
            let _ = reply.send(res);
        }
        DiskCmd::Remove { stream } => {
            reads.remove(&stream);
            order.retain(|s| *s != stream);
            // Recording removal happens via the ring closing; dropping
            // here only matters if the receiver never started.
            writes.remove(&stream);
        }
        DiskCmd::Shutdown => unreachable!("handled by the caller"),
    }
}

enum ServeWrite {
    Progress,
    Idle,
    Finished { bytes: u64, duration_us: u64 },
}

/// Drains up to a bounded batch of records from a recording ring.
fn serve_write(fs: &mut MsuFs, w: &mut WriteIo) -> Result<ServeWrite> {
    let mut any = false;
    for _ in 0..64 {
        match w.consumer.pop() {
            Ok(rec) => {
                any = true;
                if !w.failed {
                    if let Err(e) = sink_push(fs, w, rec) {
                        // Keep draining so the receiver does not wedge,
                        // but stop writing and surface the error once.
                        w.failed = true;
                        return Err(e);
                    }
                }
            }
            Err(PopError::Empty) => {
                return Ok(if any {
                    ServeWrite::Progress
                } else {
                    ServeWrite::Idle
                })
            }
            Err(PopError::Closed) => {
                let (bytes, duration_us) = sink_finish(fs, w)?;
                return Ok(ServeWrite::Finished { bytes, duration_us });
            }
        }
    }
    Ok(ServeWrite::Progress)
}

fn sink_push(fs: &mut MsuFs, w: &mut WriteIo, rec: PacketRecord) -> Result<()> {
    match &mut w.sink {
        WriteSink::Ib { writer } => {
            if let Some(page) = writer.push(&rec)? {
                fs.append_page(&w.file, &page.data, page.payload_bytes)?;
            }
        }
        WriteSink::Raw {
            buf,
            payload_bytes,
            last_offset,
            ..
        } => {
            if rec.kind == PacketKind::Media {
                buf.extend_from_slice(&rec.payload);
                *payload_bytes += rec.payload.len() as u64;
                *last_offset = rec.offset;
                let bs = fs.block_size();
                while buf.len() >= bs {
                    let page: Vec<u8> = buf.drain(..bs).collect();
                    fs.append_page(&w.file, &page, bs as u64)?;
                }
            }
        }
    }
    Ok(())
}

fn sink_finish(fs: &mut MsuFs, w: &mut WriteIo) -> Result<(u64, u64)> {
    match std::mem::replace(
        &mut w.sink,
        WriteSink::Raw {
            buf: Vec::new(),
            payload_bytes: 0,
            last_offset: MediaTime::ZERO,
            cbr_rate: None,
        },
    ) {
        WriteSink::Ib { writer } => {
            let (pages, root, stats) = writer.finish()?;
            for p in pages {
                fs.append_page(&w.file, &p.data, p.payload_bytes)?;
            }
            fs.finalize(&w.file, stats.duration.as_micros(), root)?;
            Ok((stats.payload_bytes, stats.duration.as_micros()))
        }
        WriteSink::Raw {
            mut buf,
            payload_bytes,
            last_offset,
            cbr_rate,
        } => {
            if !buf.is_empty() {
                let valid = buf.len() as u64;
                buf.resize(fs.block_size(), 0);
                fs.append_page(&w.file, &buf, valid)?;
            }
            // Constant-rate content plays at its nominal rate, so its
            // duration is bytes/rate; arrival spacing (which may be a
            // fast upload) is irrelevant.
            let duration_us = match cbr_rate {
                Some(rate) if rate.bps() > 0 => rate.transmit_time(payload_bytes).as_micros(),
                _ => last_offset.as_micros(),
            };
            fs.finalize(&w.file, duration_us, Vec::new())?;
            Ok((payload_bytes, duration_us))
        }
    }
}

fn do_seek(fs: &mut MsuFs, geo: Geometry, io: &mut ReadIo, target: MediaTime) -> Result<()> {
    let now = Instant::now();
    let mut ctl = io.shared.ctl.lock();
    match ctl.file.kind {
        FileKind::Raw => {
            let schedule = io.schedule.ok_or_else(|| Error::Protocol {
                msg: "raw file without a calculated schedule".into(),
            })?;
            let (page, skip, seq) = raw_seek(&schedule, target, fs.block_size());
            apply_seek(&mut ctl, page, skip, seq, 0, schedule.offset_of(seq), now);
        }
        FileKind::IbTree => {
            let reader = IbTreeReader::new(geo, ctl.file.root.clone(), ctl.file.pages)?;
            let file = ctl.file.name.clone();
            // The tree traversal reads pages through the file system; the
            // lock is held, but seeks are rare and the paper accepts "a
            // few seconds of delay" on VCR repositioning.
            let pos = reader.seek(target, |idx, buf| fs.read_page(&file, idx, buf))?;
            apply_seek(&mut ctl, pos.page, 0, 0, target.as_micros(), target, now);
        }
    }
    Ok(())
}

fn apply_seek(
    ctl: &mut StreamCtl,
    page: u64,
    skip: usize,
    seq: u64,
    skip_until_us: u64,
    pace_origin: MediaTime,
    now: Instant,
) {
    ctl.gen += 1;
    ctl.next_page = page;
    ctl.pending_skip = skip;
    ctl.start_seq = seq;
    ctl.skip_until_us = skip_until_us;
    ctl.eof = page >= ctl.file.pages;
    ctl.pacer.rebase(now, pace_origin);
}

fn do_trick(fs: &mut MsuFs, io: &mut ReadIo, mode: TrickMode) -> Result<()> {
    let schedule = io.schedule.ok_or_else(|| Error::Protocol {
        msg: "trick play requires a constant-rate stream".into(),
    })?;
    let target_name = match mode {
        TrickMode::Normal => Some(io.normal.name.clone()),
        TrickMode::FastForward => io.trick.fast_forward.clone(),
        TrickMode::FastBackward => io.trick.fast_backward.clone(),
    };
    let Some(target_name) = target_name else {
        return Err(Error::NoTrickFile {
            content: io.normal.name.clone(),
        });
    };
    let target = stat_file(fs, &target_name)?;

    let now = Instant::now();
    let mut ctl = io.shared.ctl.lock();
    let cur_pos = ctl.pacer.position(now);
    let normal_dur = MediaTime(io.normal.duration_us);
    let to_pos = trick::switch_position(ctl.mode, mode, cur_pos, normal_dur, trick::SKIP);
    // Trick files are raw CBR; seek within the target file.
    let (page, skip, seq) = raw_seek(&schedule, to_pos, fs.block_size());
    ctl.mode = mode;
    ctl.file = target;
    apply_seek(&mut ctl, page, skip, seq, 0, schedule.offset_of(seq), now);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsc::{self, PushError};
    use crate::stream::GroupShared;
    use calliope_storage::block::MemDisk;
    use calliope_types::time::BitRate;
    use calliope_types::GroupId;
    use crossbeam::channel::unbounded;
    use parking_lot::Mutex;

    const BS: usize = 4096;

    fn test_fs() -> MsuFs {
        MsuFs::format_with(Box::new(MemDisk::new(BS, 128)), 4).unwrap()
    }

    fn spawn_disk() -> (
        Sender<DiskCmd>,
        Receiver<DiskEvent>,
        std::thread::JoinHandle<()>,
    ) {
        let fs = test_fs();
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let h = std::thread::spawn(move || run(fs, rx, etx, MsuMetrics::new()));
        (tx, erx, h)
    }

    fn rpc<T: Send + 'static>(tx: &Sender<DiskCmd>, make: impl FnOnce(Sender<T>) -> DiskCmd) -> T {
        let (rtx, rrx) = unbounded();
        tx.send(make(rtx)).unwrap();
        rrx.recv_timeout(Duration::from_secs(5))
            .expect("disk thread reply")
    }

    fn make_stream(id: u64, file: ActiveFile) -> Arc<StreamShared> {
        Arc::new(StreamShared {
            id: StreamId(id),
            group: GroupId(id),
            disk: 0,
            trace: Default::default(),
            ctl: Mutex::new(StreamCtl {
                phase: StreamPhase::Priming,
                gen: 0,
                mode: TrickMode::Normal,
                eof: file.pages == 0,
                file,
                next_page: 0,
                pending_skip: 0,
                skip_until_us: 0,
                start_seq: 0,
                pacer: crate::pacer::Pacer::new(),
            }),
            stats: Default::default(),
        })
    }

    fn write_raw_content(tx: &Sender<DiskCmd>, name: &str, bytes: &[u8]) {
        let r: Result<()> = rpc(tx, |reply| DiskCmd::Create {
            name: name.into(),
            kind: FileKind::Raw,
            reserve_bytes: bytes.len() as u64,
            reply,
        });
        r.unwrap();
        // Feed through the write path.
        let shared = make_stream(
            999,
            ActiveFile {
                name: name.into(),
                kind: FileKind::Raw,
                pages: 0,
                len_bytes: 0,
                root: vec![],
                duration_us: 0,
            },
        );
        let (mut p, c) = spsc::ring(64);
        tx.send(DiskCmd::AddWrite {
            shared,
            consumer: c,
            stores_schedule: false,
            cbr_rate: None,
        })
        .unwrap();
        for (i, chunk) in bytes.chunks(1000).enumerate() {
            let rec = PacketRecord::media(MediaTime(i as u64 * 10_000), chunk.to_vec());
            let mut rec = rec;
            loop {
                match p.push(rec) {
                    Ok(()) => break,
                    Err(PushError::Full(r)) => {
                        rec = r;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(PushError::Closed(_)) => panic!("ring closed"),
                }
            }
        }
        drop(p);
    }

    #[test]
    fn record_then_stat_then_play_pages_flow() {
        let (tx, erx, _h) = spawn_disk();
        let content: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        write_raw_content(&tx, "movie", &content);

        // Wait for the RecordFinished event.
        let ev = erx.recv_timeout(Duration::from_secs(5)).unwrap();
        match ev {
            DiskEvent::RecordFinished { bytes, .. } => assert_eq!(bytes, 10_000),
            other => panic!("{other:?}"),
        }

        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "movie".into(),
            reply,
        });
        let file = file.unwrap();
        assert_eq!(file.len_bytes, 10_000);
        assert_eq!(file.pages, (10_000u64).div_ceil(BS as u64));

        // Play it back through a page ring.
        let shared = make_stream(1, file.clone());
        let group = GroupShared::new(GroupId(1), 1);
        let (p, mut c) = spsc::ring(2);
        tx.send(DiskCmd::AddRead {
            shared: Arc::clone(&shared),
            group: Arc::clone(&group),
            producer: p,
            schedule: Some(CbrSchedule::new(BitRate::from_kbps(64), 1000)),
            trick: TrickNames::default(),
        })
        .unwrap();

        // The group releases once the first page is buffered.
        match erx.recv_timeout(Duration::from_secs(5)).unwrap() {
            DiskEvent::GroupReleased(g) => assert_eq!(g, GroupId(1)),
            other => panic!("{other:?}"),
        }

        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 10_000 {
            match c.pop() {
                Ok(buf) => {
                    assert_eq!(buf.gen, 0);
                    got.extend_from_slice(&buf.data[buf.skip..buf.valid]);
                }
                Err(PopError::Empty) => {
                    assert!(
                        Instant::now() < deadline,
                        "timed out with {} bytes",
                        got.len()
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(PopError::Closed) => break,
            }
        }
        assert_eq!(got, content);
        // EOF reached.
        assert!(shared.ctl.lock().eof);
    }

    #[test]
    fn stat_missing_file_errors() {
        let (tx, _erx, _h) = spawn_disk();
        let r: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "nope".into(),
            reply,
        });
        assert!(r.is_err());
    }

    #[test]
    fn seek_bumps_generation_and_position() {
        let (tx, erx, _h) = spawn_disk();
        let content = vec![7u8; BS * 4];
        write_raw_content(&tx, "f", &content);
        erx.recv_timeout(Duration::from_secs(5)).unwrap();
        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "f".into(),
            reply,
        });
        let file = file.unwrap();

        let shared = make_stream(2, file);
        let group = GroupShared::new(GroupId(2), 1);
        let (p, mut c) = spsc::ring(2);
        let schedule = CbrSchedule::new(BitRate::from_kbps(800), 100);
        tx.send(DiskCmd::AddRead {
            shared: Arc::clone(&shared),
            group,
            producer: p,
            schedule: Some(schedule),
            trick: TrickNames::default(),
        })
        .unwrap();

        // Let it read a page, then seek past the middle.
        std::thread::sleep(Duration::from_millis(20));
        let target = schedule.offset_of((2 * BS / 100) as u64 + 3);
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Seek {
            stream: StreamId(2),
            target,
            reply,
        });
        r.unwrap();
        assert_eq!(shared.ctl.lock().gen, 1);

        // Eventually a gen-1 page arrives for page ≥ 2.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match c.pop() {
                Ok(buf) if buf.gen == 1 => {
                    assert!(buf.index >= 2);
                    assert!(buf.skip > 0, "seek landed mid-page");
                    break;
                }
                Ok(_) => {}
                Err(PopError::Empty) => {
                    assert!(Instant::now() < deadline);
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(PopError::Closed) => panic!("ring closed"),
            }
        }
    }

    #[test]
    fn trick_without_files_is_a_clean_error() {
        let (tx, erx, _h) = spawn_disk();
        write_raw_content(&tx, "g", &vec![1u8; 2000]);
        erx.recv_timeout(Duration::from_secs(5)).unwrap();
        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "g".into(),
            reply,
        });
        let shared = make_stream(3, file.unwrap());
        let group = GroupShared::new(GroupId(3), 1);
        let (p, _c) = spsc::ring(2);
        tx.send(DiskCmd::AddRead {
            shared,
            group,
            producer: p,
            schedule: Some(CbrSchedule::new(BitRate::from_kbps(64), 100)),
            trick: TrickNames::default(),
        })
        .unwrap();
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Trick {
            stream: StreamId(3),
            mode: TrickMode::FastForward,
            reply,
        });
        assert!(matches!(r, Err(Error::NoTrickFile { .. })));
    }

    #[test]
    fn trick_switch_changes_file_and_mode() {
        let (tx, erx, _h) = spawn_disk();
        write_raw_content(&tx, "n", &vec![1u8; BS * 8]);
        erx.recv_timeout(Duration::from_secs(5)).unwrap();
        write_raw_content(&tx, "n.ff", &vec![2u8; BS]);
        erx.recv_timeout(Duration::from_secs(5)).unwrap();

        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "n".into(),
            reply,
        });
        let shared = make_stream(4, file.unwrap());
        let group = GroupShared::new(GroupId(4), 1);
        let (p, _c) = spsc::ring(2);
        tx.send(DiskCmd::AddRead {
            shared: Arc::clone(&shared),
            group,
            producer: p,
            schedule: Some(CbrSchedule::new(BitRate::from_kbps(800), 100)),
            trick: TrickNames {
                fast_forward: Some("n.ff".into()),
                fast_backward: None,
            },
        })
        .unwrap();
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Trick {
            stream: StreamId(4),
            mode: TrickMode::FastForward,
            reply,
        });
        r.unwrap();
        {
            let ctl = shared.ctl.lock();
            assert_eq!(ctl.mode, TrickMode::FastForward);
            assert_eq!(ctl.file.name, "n.ff");
        }
        // FB is not loaded.
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Trick {
            stream: StreamId(4),
            mode: TrickMode::FastBackward,
            reply,
        });
        assert!(r.is_err());
        // And back to normal.
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Trick {
            stream: StreamId(4),
            mode: TrickMode::Normal,
            reply,
        });
        r.unwrap();
        assert_eq!(shared.ctl.lock().file.name, "n");
    }

    #[test]
    fn ib_recording_round_trips_through_fs() {
        let (tx, erx, _h) = spawn_disk();
        let r: Result<()> = rpc(&tx, |reply| DiskCmd::Create {
            name: "vbr".into(),
            kind: FileKind::IbTree,
            reserve_bytes: 20 * BS as u64,
            reply,
        });
        r.unwrap();
        let shared = make_stream(
            5,
            ActiveFile {
                name: "vbr".into(),
                kind: FileKind::IbTree,
                pages: 0,
                len_bytes: 0,
                root: vec![],
                duration_us: 0,
            },
        );
        let (mut p, c) = spsc::ring(64);
        tx.send(DiskCmd::AddWrite {
            shared,
            consumer: c,
            stores_schedule: true,
            cbr_rate: None,
        })
        .unwrap();
        let records: Vec<PacketRecord> = (0..200)
            .map(|i| PacketRecord::media(MediaTime(i * 20_000), vec![(i % 250) as u8; 120]))
            .collect();
        for rec in &records {
            let mut r = rec.clone();
            loop {
                match p.push(r) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        r = back;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(PushError::Closed(_)) => panic!("closed"),
                }
            }
        }
        drop(p);
        match erx.recv_timeout(Duration::from_secs(5)).unwrap() {
            DiskEvent::RecordFinished {
                bytes, duration_us, ..
            } => {
                assert_eq!(bytes, 200 * 120);
                assert_eq!(duration_us, 199 * 20_000);
            }
            other => panic!("{other:?}"),
        }
        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "vbr".into(),
            reply,
        });
        let file = file.unwrap();
        assert!(file.pages > 0);
        assert!(!file.root.is_empty(), "IB-tree root recorded");
    }

    #[test]
    fn concurrent_streams_all_complete_with_zero_heap_fallbacks() {
        // The batched duty cycle must serve every stream (no starvation
        // under elevator reordering) and, once the pool is sized at
        // admission, steady-state playback must never fall back to the
        // heap for a page buffer.
        let fs = test_fs();
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let metrics = MsuMetrics::new();
        let h = std::thread::spawn({
            let m = Arc::clone(&metrics);
            move || run(fs, rx, etx, m)
        });

        let content: Vec<u8> = (0..BS * 8).map(|i| (i % 241) as u8).collect();
        write_raw_content(&tx, "movie", &content);
        match erx.recv_timeout(Duration::from_secs(5)).unwrap() {
            DiskEvent::RecordFinished { .. } => {}
            other => panic!("{other:?}"),
        }
        let file: Result<ActiveFile> = rpc(&tx, |reply| DiskCmd::Stat {
            name: "movie".into(),
            reply,
        });
        let file = file.unwrap();

        const STREAMS: u64 = 6;
        let mut drains = Vec::new();
        for sid in 0..STREAMS {
            let shared = make_stream(sid + 10, file.clone());
            let group = GroupShared::new(GroupId(sid + 10), 1);
            let (p, mut c) = spsc::ring(4);
            tx.send(DiskCmd::AddRead {
                shared,
                group,
                producer: p,
                schedule: Some(CbrSchedule::new(BitRate::from_kbps(800), 1000)),
                trick: TrickNames::default(),
            })
            .unwrap();
            let want = content.clone();
            drains.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(10);
                while got.len() < want.len() {
                    match c.pop() {
                        Ok(buf) => got.extend_from_slice(&buf.data[buf.skip..buf.valid]),
                        Err(PopError::Empty) => {
                            assert!(
                                Instant::now() < deadline,
                                "stream starved with {} of {} bytes",
                                got.len(),
                                want.len()
                            );
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(PopError::Closed) => break,
                    }
                }
                assert_eq!(got, want);
            }));
        }
        for d in drains {
            d.join().unwrap();
        }
        let mut released = 0;
        while let Ok(ev) = erx.recv_timeout(Duration::from_millis(200)) {
            match ev {
                DiskEvent::GroupReleased(_) => released += 1,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(released, STREAMS, "every group primed and released");

        let snap = metrics.registry.snapshot("disk-test");
        assert_eq!(
            snap.counter("disk.pool_exhausted"),
            0,
            "steady-state playback heap-allocated a page"
        );
        assert_eq!(
            snap.counter("disk.batched_pages_total"),
            STREAMS * file.pages,
            "every page went through the batched path exactly once"
        );
        tx.send(DiskCmd::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shutdown_stops_the_thread() {
        let (tx, _erx, h) = spawn_disk();
        tx.send(DiskCmd::Shutdown).unwrap();
        h.join().unwrap();
    }
}
