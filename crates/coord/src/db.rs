//! The administrative database.
//!
//! "The database contains information about customers, content stored
//! on Calliope, and resources owned by the system. … each item of
//! content has a type. The content type entry contains a bandwidth
//! consumption rate which gives the expected rate at which content of
//! this type is to be played and recorded." (paper §2.2)
//!
//! Content may be *composite*; a composite item is recorded as one
//! component file per atomic subtype, all placed on the same MSU so a
//! stream group can play them in sync.

use calliope_types::content::{ContentEntry, ContentTypeSpec, TypeBody};
use calliope_types::error::{Error, Result};
use calliope_types::wire::messages::TrickFiles;
use calliope_types::{DiskId, MsuId};
use std::collections::BTreeMap;

/// Where one replica of a component file lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Location {
    /// The MSU.
    pub msu: MsuId,
    /// The disk (global id).
    pub disk: DiskId,
    /// File name on that MSU's file system.
    pub file: String,
}

/// One atomic component of a content item.
#[derive(Clone, Debug)]
pub struct Component {
    /// The component's atomic type name.
    pub type_name: String,
    /// Replicas ("we can make copies of popular content on several
    /// disks", §2.3.3).
    pub locations: Vec<Location>,
    /// Recorded size in bytes (0 while recording).
    pub bytes: u64,
    /// Recorded duration in µs (0 while recording).
    pub duration_us: u64,
}

/// Lifecycle of a content item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentStatus {
    /// Being recorded; not yet playable.
    Recording,
    /// Complete and playable.
    Ready,
}

/// One item in the table of contents.
#[derive(Clone, Debug)]
pub struct ContentRecord {
    /// Content name.
    pub name: String,
    /// Its (possibly composite) type.
    pub type_name: String,
    /// One component per atomic subtype (exactly one for atomic types).
    pub components: Vec<Component>,
    /// Recording or ready.
    pub status: ContentStatus,
    /// Pre-filtered trick-play files, once an administrator attaches
    /// them (§2.3.1).
    pub trick: Option<TrickFiles>,
}

impl ContentRecord {
    /// Total bytes across components.
    pub fn bytes(&self) -> u64 {
        self.components.iter().map(|c| c.bytes).sum()
    }

    /// Duration (maximum across components).
    pub fn duration_us(&self) -> u64 {
        self.components
            .iter()
            .map(|c| c.duration_us)
            .max()
            .unwrap_or(0)
    }

    /// The catalog entry shown to clients.
    pub fn entry(&self) -> ContentEntry {
        ContentEntry {
            name: self.name.clone(),
            type_name: self.type_name.clone(),
            bytes: self.bytes(),
            duration_us: self.duration_us(),
        }
    }
}

/// A known customer.
#[derive(Clone, Debug)]
pub struct Customer {
    /// Self-reported name.
    pub name: String,
    /// Administrative rights (gates delete / add-type / attach-trick).
    pub admin: bool,
    /// Sessions opened so far.
    pub sessions: u64,
}

/// The in-memory administrative database.
#[derive(Debug, Default)]
pub struct AdminDb {
    types: BTreeMap<String, ContentTypeSpec>,
    content: BTreeMap<String, ContentRecord>,
    customers: BTreeMap<String, Customer>,
}

impl AdminDb {
    /// Creates a database pre-loaded with the built-in content types.
    pub fn with_builtin_types() -> AdminDb {
        let mut db = AdminDb::default();
        for t in calliope_types::content::builtin_types() {
            db.types.insert(t.name.clone(), t);
        }
        db
    }

    /// Looks up a type.
    pub fn content_type(&self, name: &str) -> Result<&ContentTypeSpec> {
        self.types.get(name).ok_or_else(|| Error::NoSuchType {
            name: name.to_owned(),
        })
    }

    /// All types, for `ListTypes`.
    pub fn types(&self) -> Vec<ContentTypeSpec> {
        self.types.values().cloned().collect()
    }

    /// Adds a type (admin operation). Composite components must name
    /// existing atomic types.
    pub fn add_type(&mut self, spec: ContentTypeSpec) -> Result<()> {
        if self.types.contains_key(&spec.name) {
            return Err(Error::AlreadyExists {
                kind: "type",
                name: spec.name,
            });
        }
        if let TypeBody::Composite { components } = &spec.body {
            if components.is_empty() {
                return Err(Error::Protocol {
                    msg: "composite type with no components".into(),
                });
            }
            for c in components {
                let t = self.content_type(c)?;
                if t.is_composite() {
                    return Err(Error::Protocol {
                        msg: format!("composite types cannot nest ({c:?})"),
                    });
                }
            }
        }
        self.types.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Resolves a type to its atomic component types (itself if
    /// atomic), in component order.
    pub fn atomic_components(&self, type_name: &str) -> Result<Vec<ContentTypeSpec>> {
        let spec = self.content_type(type_name)?;
        match &spec.body {
            TypeBody::Atomic { .. } => Ok(vec![spec.clone()]),
            TypeBody::Composite { components } => components
                .iter()
                .map(|c| self.content_type(c).cloned())
                .collect(),
        }
    }

    /// Looks up content.
    pub fn content(&self, name: &str) -> Result<&ContentRecord> {
        self.content.get(name).ok_or_else(|| Error::NoSuchContent {
            name: name.to_owned(),
        })
    }

    /// Looks up content mutably.
    pub fn content_mut(&mut self, name: &str) -> Result<&mut ContentRecord> {
        self.content
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchContent {
                name: name.to_owned(),
            })
    }

    /// Inserts a new content record.
    pub fn insert_content(&mut self, rec: ContentRecord) -> Result<()> {
        if self.content.contains_key(&rec.name) {
            return Err(Error::AlreadyExists {
                kind: "content",
                name: rec.name,
            });
        }
        self.content.insert(rec.name.clone(), rec);
        Ok(())
    }

    /// Removes a content record, returning it so the caller can free
    /// disk space.
    pub fn remove_content(&mut self, name: &str) -> Result<ContentRecord> {
        self.content
            .remove(name)
            .ok_or_else(|| Error::NoSuchContent {
                name: name.to_owned(),
            })
    }

    /// The table of contents (ready items only; recordings in progress
    /// are not playable).
    pub fn toc(&self) -> Vec<ContentEntry> {
        self.content
            .values()
            .filter(|r| r.status == ContentStatus::Ready)
            .map(ContentRecord::entry)
            .collect()
    }

    /// Registers (or revisits) a customer.
    pub fn touch_customer(&mut self, name: &str, admin: bool) {
        let c = self.customers.entry(name.to_owned()).or_insert(Customer {
            name: name.to_owned(),
            admin,
            sessions: 0,
        });
        c.admin |= admin;
        c.sessions += 1;
    }

    /// Number of known customers.
    pub fn customer_count(&self) -> usize {
        self.customers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::content::ProtocolId;
    use calliope_types::time::BitRate;

    fn db() -> AdminDb {
        AdminDb::with_builtin_types()
    }

    fn record(name: &str, ty: &str, ready: bool) -> ContentRecord {
        ContentRecord {
            name: name.into(),
            type_name: ty.into(),
            components: vec![Component {
                type_name: ty.into(),
                locations: vec![Location {
                    msu: MsuId(1),
                    disk: DiskId(1),
                    file: name.into(),
                }],
                bytes: 1000,
                duration_us: 5_000_000,
            }],
            status: if ready {
                ContentStatus::Ready
            } else {
                ContentStatus::Recording
            },
            trick: None,
        }
    }

    #[test]
    fn builtin_types_are_loaded() {
        let db = db();
        assert!(db.content_type("mpeg1").is_ok());
        assert!(db.content_type("seminar").is_ok());
        assert!(db.content_type("nope").is_err());
        assert_eq!(db.types().len(), 4);
    }

    #[test]
    fn composite_resolution_orders_components() {
        let db = db();
        let comps = db.atomic_components("seminar").unwrap();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].name, "nv-video");
        assert_eq!(comps[1].name, "vat-audio");
        // Atomic resolves to itself.
        let single = db.atomic_components("mpeg1").unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].name, "mpeg1");
    }

    #[test]
    fn add_type_validates() {
        let mut db = db();
        // Duplicate.
        assert!(db
            .add_type(ContentTypeSpec::constant(
                "mpeg1",
                ProtocolId::ConstantRate,
                BitRate(1)
            ))
            .is_err());
        // Unknown component.
        assert!(db
            .add_type(ContentTypeSpec::composite("bad", &["ghost"]))
            .is_err());
        // Nested composite.
        assert!(db
            .add_type(ContentTypeSpec::composite("nest", &["seminar"]))
            .is_err());
        // Empty composite.
        assert!(db
            .add_type(ContentTypeSpec::composite("empty", &[]))
            .is_err());
        // A fine new type.
        db.add_type(ContentTypeSpec::constant(
            "mpeg2",
            ProtocolId::ConstantRate,
            BitRate::from_mbps(4),
        ))
        .unwrap();
        assert!(db.content_type("mpeg2").is_ok());
    }

    #[test]
    fn toc_hides_in_progress_recordings() {
        let mut db = db();
        db.insert_content(record("done", "mpeg1", true)).unwrap();
        db.insert_content(record("rec", "mpeg1", false)).unwrap();
        let toc = db.toc();
        assert_eq!(toc.len(), 1);
        assert_eq!(toc[0].name, "done");
        assert_eq!(toc[0].bytes, 1000);
        assert_eq!(toc[0].duration_us, 5_000_000);
    }

    #[test]
    fn content_crud() {
        let mut db = db();
        db.insert_content(record("a", "mpeg1", true)).unwrap();
        assert!(db.insert_content(record("a", "mpeg1", true)).is_err());
        assert!(db.content("a").is_ok());
        db.content_mut("a").unwrap().status = ContentStatus::Recording;
        let removed = db.remove_content("a").unwrap();
        assert_eq!(removed.name, "a");
        assert!(db.content("a").is_err());
        assert!(db.remove_content("a").is_err());
    }

    #[test]
    fn customers_accumulate_sessions_and_admin() {
        let mut db = db();
        db.touch_customer("alice", false);
        db.touch_customer("alice", true);
        db.touch_customer("bob", false);
        assert_eq!(db.customer_count(), 2);
        // Once admin, always admin within this run.
        db.touch_customer("alice", false);
        assert!(db.customers.get("alice").unwrap().admin);
        assert_eq!(db.customers.get("alice").unwrap().sessions, 3);
    }
}
