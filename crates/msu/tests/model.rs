//! Model-checking suites for the MSU's concurrent kernels: the SPSC
//! ring and the page pool. Compiled only under
//! `RUSTFLAGS="--cfg calliope_check"`, where the `calliope_check` shim
//! types route every atomic/cell operation through a deterministic
//! scheduler that explores thread interleavings and weak-memory
//! outcomes exhaustively (up to a preemption bound).
//!
//! Run with: `RUSTFLAGS="--cfg calliope_check" cargo test -p calliope-msu --test model`
#![cfg(calliope_check)]

use calliope_check::{model, thread};
use calliope_msu::pool::PagePool;
use calliope_msu::spsc::{ring, PopError, PushError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc as StdArc;

/// A payload that counts its drops on a real (unshimmed) counter, so a
/// leak or double-drop in any explored schedule shows up as a count
/// mismatch at the end of that execution.
struct Tok {
    v: u32,
    drops: StdArc<AtomicUsize>,
}

impl Tok {
    fn new(v: u32, drops: &StdArc<AtomicUsize>) -> Tok {
        Tok {
            v,
            drops: StdArc::clone(drops),
        }
    }
}

impl Drop for Tok {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Cross-thread transfer: every popped value arrives in push order with
/// its payload intact, nothing is duplicated, and every pushed value is
/// dropped exactly once whether it was popped or stranded in the ring.
#[test]
fn ring_transfer_no_dup_no_loss() {
    let report = model(|| {
        let drops = StdArc::new(AtomicUsize::new(0));
        let (mut p, mut c) = ring::<Tok>(2);
        let d2 = StdArc::clone(&drops);
        let producer = thread::spawn(move || {
            let mut sent = 0u32;
            for v in 0..3u32 {
                let mut tok = Tok::new(v, &d2);
                // Bounded retries: an unbounded spin never terminates
                // under exhaustive scheduling.
                let mut pushed = false;
                for _ in 0..4 {
                    match p.push(tok) {
                        Ok(()) => {
                            pushed = true;
                            sent += 1;
                            break;
                        }
                        Err(PushError::Full(back)) => {
                            tok = back;
                            thread::yield_now();
                        }
                        Err(PushError::Closed(_)) => return sent,
                    }
                }
                if !pushed {
                    return sent; // gave up; tok drops here
                }
            }
            sent
        });
        let mut got: Vec<u32> = Vec::new();
        for _ in 0..8 {
            match c.pop() {
                Ok(tok) => got.push(tok.v),
                Err(PopError::Empty) => thread::yield_now(),
                Err(PopError::Closed) => break,
            }
        }
        let sent = producer.join().unwrap();
        // FIFO, no duplicates, no reordering: what arrived is exactly
        // the first `got.len()` pushed values in order.
        let expect: Vec<u32> = (0..got.len() as u32).collect();
        assert_eq!(got, expect, "ring reordered, duplicated, or lost a value");
        assert!(
            got.len() <= sent as usize,
            "popped more values than were pushed"
        );
        drop(c);
        // Both endpoints are gone: everything ever created must have
        // dropped exactly once (popped, drained, or reclaimed by the
        // ring's own drop).
        let created = 3; // every Tok::new counts, pushed or not
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "leak or double-drop across the ring"
        );
    });
    assert!(report.schedules > 1, "must explore multiple interleavings");
}

/// The close/drop race: the consumer walks away mid-stream while the
/// producer is still pushing. A push that lands after the consumer's
/// closing drain strands its value in the ring; the ring itself must
/// drop it exactly once when the last endpoint goes.
#[test]
fn ring_close_race_drops_stranded_values_once() {
    let report = model(|| {
        let drops = StdArc::new(AtomicUsize::new(0));
        let (mut p, mut c) = ring::<Tok>(2);
        let consumer = thread::spawn(move || {
            // Pop at most once, then leave; the drop drains what it can
            // and closes the ring under the producer's feet.
            let _ = c.pop();
        });
        let mut created = 0usize;
        for v in 0..2u32 {
            created += 1;
            match p.push(Tok::new(v, &drops)) {
                Ok(()) | Err(PushError::Closed(_)) => {}
                Err(PushError::Full(_)) => break,
            }
        }
        consumer.join().unwrap();
        drop(p);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "a value stranded by the close race leaked or double-dropped"
        );
    });
    assert!(report.schedules > 1);
}

/// Regression test for the watermark ordering bug: the high-water mark
/// is raised *before* the `head` release-store, so any queue depth the
/// consumer can observe is already reflected in the mark. With the old
/// order (mark raised after publishing `head`) this test fails: the
/// consumer sees `len() == 2` while `high_water()` still reads 1.
#[test]
fn ring_watermark_is_at_least_any_observed_depth() {
    let report = model(|| {
        let (mut p, c) = ring::<u32>(4);
        let watcher = thread::spawn(move || {
            let depth = c.len();
            let mark = c.high_water();
            assert!(
                mark >= depth,
                "consumer observed depth {depth} but high_water {mark}"
            );
            c
        });
        let _ = p.push(1);
        let _ = p.push(2);
        let _c = watcher.join().unwrap();
    });
    assert!(report.schedules > 1);
}

/// Page-pool refcount safety: while any clone of a frozen page is
/// alive, its buffer must not be recycled — a re-checkout from the pool
/// must get different memory. A broken refcount recycles early and the
/// overwrite becomes visible through the live clone.
#[test]
fn pool_never_recycles_while_a_clone_is_live() {
    let report = model(|| {
        let pool = PagePool::with_capacity(8, 1);
        let mut buf = pool.get();
        buf.as_mut_slice()[0] = 0xAB;
        let page = buf.freeze();
        let clone = page.clone();
        let pool2 = pool.clone();
        let t = thread::spawn(move || {
            // Races the main thread's drop of `page`.
            let v = clone[0];
            assert_eq!(v, 0xAB, "live clone observed recycled memory");
            drop(clone);
        });
        drop(page);
        // If the refcount ever hit zero early, this checkout reuses the
        // clone's buffer and the write below is visible through it.
        let mut again = pool2.get();
        again.as_mut_slice()[0] = 0x11;
        drop(again);
        t.join().unwrap();
    });
    assert!(report.schedules > 1);
}

/// Pool accounting stays conserved across a concurrent checkout/freeze/
/// drop cycle: every buffer is either free or outstanding, and teardown
/// returns them all.
#[test]
fn pool_accounting_is_conserved_across_threads() {
    let report = model(|| {
        let pool = PagePool::with_capacity(8, 2);
        let p2 = pool.clone();
        let t = thread::spawn(move || {
            let b = p2.get();
            drop(b.freeze());
        });
        let b = pool.get();
        drop(b); // unfrozen return path
        t.join().unwrap();
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "a checkout was never returned");
        assert_eq!(s.free, s.capacity, "free list lost a buffer");
        assert_eq!(s.capacity, 2, "no heap fallback should be needed");
    });
    assert!(report.schedules > 1);
}
