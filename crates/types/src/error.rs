//! The shared error type.
//!
//! Calliope components return `Result<T, Error>` rather than panicking:
//! a multimedia server must survive malformed requests, disconnected
//! peers, and exhausted resources without taking down unrelated streams.

use crate::ids::{DiskId, MsuId, StreamId};
use core::fmt;
use std::io;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = core::result::Result<T, E>;

/// Errors produced by Calliope components.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A wire frame could not be decoded.
    Wire(crate::wire::WireError),
    /// The named content does not exist in the catalog.
    NoSuchContent {
        /// The content name the client asked for.
        name: String,
    },
    /// The named content type is not in the type table.
    NoSuchType {
        /// The type name.
        name: String,
    },
    /// The named display port is not registered in this session.
    NoSuchPort {
        /// The port name.
        name: String,
    },
    /// A name was reused (content, port, or type already exists).
    AlreadyExists {
        /// What kind of thing collided ("content", "port", "type"...).
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// The port's type does not match the content's type.
    TypeMismatch {
        /// Type of the content being played or recorded.
        content_type: String,
        /// Type of the display port offered.
        port_type: String,
    },
    /// A composite type was used where an atomic rate was required.
    CompositeHasNoRate {
        /// The composite type's name.
        type_name: String,
    },
    /// No MSU currently has the bandwidth (and, for recording, space) to
    /// satisfy the request; it was not queued.
    ResourcesExhausted {
        /// Human-readable description of what ran out.
        what: String,
    },
    /// The MSU the Coordinator chose is no longer reachable.
    MsuUnavailable {
        /// Which MSU failed.
        msu: MsuId,
    },
    /// A stream id was not recognised by the MSU.
    NoSuchStream {
        /// The unknown stream.
        stream: StreamId,
    },
    /// The requested disk does not exist or is full.
    Disk {
        /// Which disk.
        disk: DiskId,
        /// What went wrong.
        msg: String,
    },
    /// The on-disk file system is corrupt or from an incompatible version.
    Storage {
        /// Description of the inconsistency.
        msg: String,
    },
    /// The request is valid but not permitted (e.g. admin-only).
    PermissionDenied {
        /// The operation that was denied.
        op: &'static str,
    },
    /// A protocol module rejected a packet or stream.
    Protocol {
        /// Description of the violation.
        msg: String,
    },
    /// The peer closed the connection or violated the session protocol.
    SessionClosed,
    /// Trick-play was requested but no filtered file is attached.
    NoTrickFile {
        /// The content lacking a trick file.
        content: String,
    },
    /// An internal invariant failed; indicates a bug, reported rather
    /// than panicking so one stream cannot kill the server.
    Internal {
        /// Description of the broken invariant.
        msg: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::NoSuchContent { name } => write!(f, "no such content: {name:?}"),
            Error::NoSuchType { name } => write!(f, "no such content type: {name:?}"),
            Error::NoSuchPort { name } => write!(f, "no such display port: {name:?}"),
            Error::AlreadyExists { kind, name } => write!(f, "{kind} already exists: {name:?}"),
            Error::TypeMismatch {
                content_type,
                port_type,
            } => write!(
                f,
                "type mismatch: content is {content_type:?} but port is {port_type:?}"
            ),
            Error::CompositeHasNoRate { type_name } => {
                write!(f, "composite type {type_name:?} has no atomic rate")
            }
            Error::ResourcesExhausted { what } => write!(f, "resources exhausted: {what}"),
            Error::MsuUnavailable { msu } => write!(f, "{msu} is unavailable"),
            Error::NoSuchStream { stream } => write!(f, "no such stream: {stream}"),
            Error::Disk { disk, msg } => write!(f, "{disk}: {msg}"),
            Error::Storage { msg } => write!(f, "storage: {msg}"),
            Error::PermissionDenied { op } => write!(f, "permission denied: {op}"),
            Error::Protocol { msg } => write!(f, "protocol: {msg}"),
            Error::SessionClosed => f.write_str("session closed"),
            Error::NoTrickFile { content } => {
                write!(f, "no trick-play file loaded for {content:?}")
            }
            Error::Internal { msg } => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<crate::wire::WireError> for Error {
    fn from(e: crate::wire::WireError) -> Self {
        Error::Wire(e)
    }
}

impl Error {
    /// Builds an [`Error::Internal`] from anything displayable.
    pub fn internal(msg: impl fmt::Display) -> Self {
        Error::Internal {
            msg: msg.to_string(),
        }
    }

    /// Builds an [`Error::Storage`] from anything displayable.
    pub fn storage(msg: impl fmt::Display) -> Self {
        Error::Storage {
            msg: msg.to_string(),
        }
    }

    /// Stable numeric code used when sending errors over the wire.
    pub fn wire_code(&self) -> u16 {
        match self {
            Error::Io(_) => 1,
            Error::Wire(_) => 2,
            Error::NoSuchContent { .. } => 3,
            Error::NoSuchType { .. } => 4,
            Error::NoSuchPort { .. } => 5,
            Error::AlreadyExists { .. } => 6,
            Error::TypeMismatch { .. } => 7,
            Error::CompositeHasNoRate { .. } => 8,
            Error::ResourcesExhausted { .. } => 9,
            Error::MsuUnavailable { .. } => 10,
            Error::NoSuchStream { .. } => 11,
            Error::Disk { .. } => 12,
            Error::Storage { .. } => 13,
            Error::PermissionDenied { .. } => 14,
            Error::Protocol { .. } => 15,
            Error::SessionClosed => 16,
            Error::NoTrickFile { .. } => 17,
            Error::Internal { .. } => 18,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::TypeMismatch {
            content_type: "mpeg1".into(),
            port_type: "vat-audio".into(),
        };
        let s = e.to_string();
        assert!(s.contains("mpeg1") && s.contains("vat-audio"), "{s}");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: Error = io::Error::new(io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn wire_codes_are_distinct() {
        let samples = [
            Error::SessionClosed,
            Error::NoSuchContent { name: "x".into() },
            Error::ResourcesExhausted { what: "bw".into() },
            Error::internal("x"),
            Error::storage("y"),
        ];
        let mut codes: Vec<u16> = samples.iter().map(Error::wire_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), samples.len());
    }
}
