//! Criterion micro-benchmarks of the hot data-path components: the
//! wire codec, the packet-record codec, the IB-tree writer, the CBR
//! packetizer, and the file-system page path.

use calliope_proto::record::PacketRecord;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::block::MemDisk;
use calliope_storage::catalog::FileKind;
use calliope_storage::ibtree::IbTreeWriter;
use calliope_storage::page::Geometry;
use calliope_storage::MsuFs;
use calliope_types::time::{BitRate, MediaTime};
use calliope_types::wire::data::{DataHeader, PacketKind};
use calliope_types::wire::messages::{ClientRequest, CoordReply};
use calliope_types::wire::Wire;
use calliope_types::StreamId;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire-codec");
    let req = ClientRequest::Play {
        content: "a-two-hour-feature-film".into(),
        port: "living-room-set-top".into(),
    };
    let bytes = req.to_bytes();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode-play-request", |b| {
        b.iter(|| std::hint::black_box(&req).to_bytes())
    });
    g.bench_function("decode-play-request", |b| {
        b.iter(|| ClientRequest::from_bytes(std::hint::black_box(&bytes)).expect("decode"))
    });
    let reply = CoordReply::ContentList {
        entries: (0..50)
            .map(|i| calliope_types::content::ContentEntry {
                name: format!("movie-{i}"),
                type_name: "mpeg1".into(),
                bytes: 1_350_000_000,
                duration_us: 7_200_000_000,
            })
            .collect(),
    };
    let reply_bytes = reply.to_bytes();
    g.throughput(Throughput::Bytes(reply_bytes.len() as u64));
    g.bench_function("decode-50-entry-catalog", |b| {
        b.iter(|| CoordReply::from_bytes(std::hint::black_box(&reply_bytes)).expect("decode"))
    });
    g.finish();
}

fn bench_data_header(c: &mut Criterion) {
    let mut g = c.benchmark_group("data-header");
    let header = DataHeader {
        stream: StreamId(42),
        seq: 1000,
        offset: MediaTime::from_millis(21),
        kind: PacketKind::Media,
    };
    let payload = vec![0u8; 4096];
    let datagram = header.encode_packet(&payload);
    g.throughput(Throughput::Bytes(datagram.len() as u64));
    g.bench_function("encode-4k-packet", |b| {
        b.iter(|| std::hint::black_box(&header).encode_packet(std::hint::black_box(&payload)))
    });
    g.bench_function("decode-4k-packet", |b| {
        b.iter(|| DataHeader::decode_packet(std::hint::black_box(&datagram)).expect("decode"))
    });
    g.finish();
}

fn bench_ibtree_writer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ibtree");
    let geo = Geometry::paper();
    // Push 1 KB records through the writer; measure per-record cost
    // including page assembly.
    g.throughput(Throughput::Bytes(1000));
    g.bench_function("push-1k-record", |b| {
        b.iter_batched(
            || IbTreeWriter::new(geo).expect("writer"),
            |mut w| {
                for i in 0..512u64 {
                    let rec = PacketRecord::media(MediaTime(i * 12_000), vec![0u8; 1000]);
                    std::hint::black_box(w.push(&rec).expect("push"));
                }
                w
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cbr_packetizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("packetizer");
    let page = vec![0u8; 256 * 1024];
    g.throughput(Throughput::Bytes(page.len() as u64));
    g.bench_function("feed-256k-page", |b| {
        b.iter_batched(
            || {
                calliope_msu::packetize::CbrPacketizer::new(CbrSchedule::new(
                    BitRate::from_kbps(1500),
                    4096,
                ))
            },
            |mut p| std::hint::black_box(p.feed(std::hint::black_box(&page))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_spsc_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc");
    // Single-threaded push/pop cost of the paper's shared-memory queue.
    g.bench_function("push-pop-page-handle", |b| {
        let (mut p, mut consumer) = calliope_msu::spsc::ring::<Box<[u8; 64]>>(2);
        b.iter(|| {
            p.push(Box::new([7u8; 64])).ok();
            std::hint::black_box(consumer.pop().ok());
        })
    });
    g.finish();
}

fn bench_fs_page_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("msufs");
    g.sample_size(20);
    let block = 64 * 1024; // smaller blocks keep the in-memory disk cheap
    g.throughput(Throughput::Bytes(block as u64));
    g.bench_function("append-and-read-page", |b| {
        b.iter_batched(
            || {
                let mut fs =
                    MsuFs::format_with(Box::new(MemDisk::new(block, 256)), 4).expect("format");
                fs.create("f", FileKind::Raw, 128 * block as u64)
                    .expect("create");
                fs
            },
            |mut fs| {
                let page = vec![7u8; block];
                let mut buf = vec![0u8; block];
                for _ in 0..64 {
                    let idx = fs.append_page("f", &page, block as u64).expect("append");
                    fs.read_page("f", idx, &mut buf).expect("read");
                }
                fs
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_data_header,
    bench_ibtree_writer,
    bench_cbr_packetizer,
    bench_spsc_ring,
    bench_fs_page_path
);
criterion_main!(benches);
