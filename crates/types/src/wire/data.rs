//! The UDP data-packet header.
//!
//! Real-time data travels over UDP (paper §2). Every Calliope data packet
//! carries a small fixed-size header so the receiver can (a) demultiplex
//! streams sharing one display-port socket, (b) detect loss and
//! reordering by sequence number, and (c) measure how late each packet
//! arrived relative to its delivery schedule — the metric of Graphs 1
//! and 2.
//!
//! The header is deliberately minimal: the protocol payload (RTP, VAT,
//! raw MPEG) follows it unmodified, so a thin shim can strip the header
//! and hand the payload to an unmodified decoder.

use super::{Reader, Wire, WireError};
use crate::ids::StreamId;
use crate::time::MediaTime;

/// Magic number opening every Calliope data packet.
pub const DATA_MAGIC: u16 = 0xCA11;

/// Wire format version.
pub const DATA_VERSION: u8 = 1;

/// Size of the encoded header in bytes.
pub const DATA_HEADER_LEN: usize = 2 + 1 + 1 + 8 + 4 + 8;

/// What a data packet carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Ordinary media payload.
    Media,
    /// Interleaved protocol control message (e.g. RTCP for the RTP
    /// module, paper §2.3.2).
    Control,
    /// Marks the end of the stream; carries no payload.
    EndOfStream,
}

impl PacketKind {
    /// Stable numeric tag.
    pub const fn tag(self) -> u8 {
        match self {
            PacketKind::Media => 0,
            PacketKind::Control => 1,
            PacketKind::EndOfStream => 2,
        }
    }

    /// Inverse of [`PacketKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(PacketKind::Media),
            1 => Some(PacketKind::Control),
            2 => Some(PacketKind::EndOfStream),
            _ => None,
        }
    }
}

/// Header prepended to every UDP data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataHeader {
    /// Which stream the packet belongs to.
    pub stream: StreamId,
    /// Per-stream sequence number, starting at 0.
    pub seq: u32,
    /// Scheduled delivery time, as an offset from the start of playback.
    pub offset: MediaTime,
    /// Payload classification.
    pub kind: PacketKind,
}

impl DataHeader {
    /// Encodes the header followed by `payload` into a datagram buffer.
    pub fn encode_packet(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(DATA_HEADER_LEN + payload.len());
        self.encode_packet_into(payload, &mut buf);
        buf
    }

    /// Encodes the header followed by `payload` into `out`, clearing it
    /// first. The send path reuses one scratch buffer across packets so
    /// steady-state transmission never allocates.
    pub fn encode_packet_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(DATA_HEADER_LEN + payload.len());
        self.encode(out);
        out.extend_from_slice(payload);
    }

    /// Splits a received datagram into header and payload.
    pub fn decode_packet(datagram: &[u8]) -> Result<(DataHeader, &[u8]), WireError> {
        let mut r = Reader::new(datagram);
        let header = DataHeader::decode(&mut r)?;
        Ok((header, &datagram[DATA_HEADER_LEN..]))
    }
}

impl Wire for DataHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        DATA_MAGIC.encode(buf);
        buf.push(DATA_VERSION);
        buf.push(self.kind.tag());
        self.stream.encode(buf);
        self.seq.encode(buf);
        self.offset.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.u16("data magic")?;
        if magic != DATA_MAGIC {
            return Err(WireError::BadTag {
                what: "data magic",
                tag: (magic & 0xFF) as u8,
            });
        }
        let version = r.u8("data version")?;
        if version != DATA_VERSION {
            return Err(WireError::BadTag {
                what: "data version",
                tag: version,
            });
        }
        let kind_tag = r.u8("packet kind")?;
        let kind = PacketKind::from_tag(kind_tag).ok_or(WireError::BadTag {
            what: "packet kind",
            tag: kind_tag,
        })?;
        Ok(DataHeader {
            stream: StreamId::decode(r)?,
            seq: u32::decode(r)?,
            offset: MediaTime::decode(r)?,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn header() -> DataHeader {
        DataHeader {
            stream: StreamId(3),
            seq: 42,
            offset: MediaTime::from_millis(1_234),
            kind: PacketKind::Media,
        }
    }

    #[test]
    fn header_len_matches_constant() {
        assert_eq!(header().to_bytes().len(), DATA_HEADER_LEN);
    }

    #[test]
    fn packet_round_trip() {
        let payload = b"mpeg bits go here";
        let datagram = header().encode_packet(payload);
        let (h, p) = DataHeader::decode_packet(&datagram).unwrap();
        assert_eq!(h, header());
        assert_eq!(p, payload);
    }

    #[test]
    fn empty_payload_round_trip() {
        let h = DataHeader {
            kind: PacketKind::EndOfStream,
            ..header()
        };
        let datagram = h.encode_packet(&[]);
        let (back, p) = DataHeader::decode_packet(&datagram).unwrap();
        assert_eq!(back.kind, PacketKind::EndOfStream);
        assert!(p.is_empty());
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut datagram = header().encode_packet(b"x");
        datagram[0] ^= 0xFF;
        assert!(DataHeader::decode_packet(&datagram).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut datagram = header().encode_packet(b"x");
        datagram[2] = DATA_VERSION + 1;
        assert!(DataHeader::decode_packet(&datagram).is_err());
    }

    #[test]
    fn short_datagram_is_rejected() {
        let datagram = header().encode_packet(b"payload");
        for cut in 0..DATA_HEADER_LEN {
            assert!(DataHeader::decode_packet(&datagram[..cut]).is_err());
        }
    }

    proptest! {
        #[test]
        fn prop_header_round_trips(stream in any::<u64>(), seq in any::<u32>(), us in any::<u64>(), kind_tag in 0u8..3) {
            let h = DataHeader {
                stream: StreamId(stream),
                seq,
                offset: MediaTime(us),
                kind: PacketKind::from_tag(kind_tag).unwrap(),
            };
            let datagram = h.encode_packet(&[]);
            let (back, rest) = DataHeader::decode_packet(&datagram).unwrap();
            prop_assert_eq!(back, h);
            prop_assert!(rest.is_empty());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = DataHeader::decode_packet(&bytes);
        }
    }
}
