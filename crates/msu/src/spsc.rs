//! The lock-free single-producer/single-consumer ring.
//!
//! "Instead of using expensive semaphore operations, the MSU processes
//! communicate using a shared memory queue structure that relies on the
//! atomicity of memory read and write instructions to produce atomic
//! enqueue and dequeue operations." (paper §2.3)
//!
//! The classic construction: a fixed-capacity ring indexed by a
//! producer-owned `head` and a consumer-owned `tail`, each written by
//! exactly one side and read by the other. On modern hardware "the
//! atomicity of memory read and write" means release/acquire atomics;
//! the structure is otherwise the paper's.
//!
//! One ring per stream gives the MSU its double buffering for free: a
//! play stream's ring has capacity 2, so the disk process fills one
//! 256 KB page while the network process drains the other (§2.2.1).

use calliope_check::cell::UnsafeCell;
use calliope_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use calliope_check::sync::Arc;
use std::mem::MaybeUninit;

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the producer will write (monotonically increasing; the
    /// slot index is `head % capacity`).
    head: AtomicUsize,
    /// Next slot the consumer will read.
    tail: AtomicUsize,
    /// Deepest occupancy ever observed (queue-depth high-water mark,
    /// maintained by the producer on every push).
    watermark: AtomicUsize,
    /// Set when either side is dropped.
    closed: AtomicBool,
}

// SAFETY: the ring hands each slot to exactly one thread at a time: the
// producer writes slot `head` only while `head - tail < capacity` (the
// consumer has finished with it), and the consumer reads slot `tail`
// only while `tail < head` (the producer has published it). `head` and
// `tail` are published with Release and observed with Acquire, so slot
// contents are visible before the index that hands them over. This
// protocol is model-checked in tests/model.rs.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: see above — shared access is mediated entirely through the
// atomic indices.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // When the model checker aborts an execution mid-schedule, a
        // thread may have been stopped between moving a value out of a
        // slot and retiring the slot (the `tail` store), so the indices
        // no longer describe slot ownership. Running destructors from
        // them would double-drop; leaking the aborted execution's
        // values is harmless.
        if cfg!(calliope_check) && std::thread::panicking() {
            return;
        }
        // Both endpoints are gone (the Arc count hit zero), so whatever
        // sits in [tail, head) was pushed but never popped — e.g. the
        // producer raced a push past the consumer's closing drain. Each
        // such slot holds an initialized value that must be dropped
        // here, exactly once, or it leaks.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let cap = self.slots.len();
        for i in tail..head {
            self.slots[i % cap].with_mut(|p|
                // SAFETY: `tail <= i < head` means the producer
                // initialized this slot and the consumer never read it;
                // `&mut self` proves no endpoint can touch it again.
                unsafe { (*p).assume_init_drop() });
        }
    }
}

/// Creates a ring of the given capacity, returning the two endpoints.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let ring = Arc::new(Ring {
        slots: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        watermark: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

/// Why a `push` did not take the value.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is returned.
    Full(T),
    /// The consumer is gone; the value is returned.
    Closed(T),
}

/// Why a `pop` returned nothing.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PopError {
    /// Nothing buffered right now.
    Empty,
    /// Nothing buffered and the producer is gone — no more will come.
    Closed,
}

/// The writing endpoint.
pub struct Producer<T: Send> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

impl<T: Send> Producer<T> {
    /// Attempts to enqueue; non-blocking.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        if self.ring.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(value));
        }
        // relaxed: `head` is producer-owned; only this thread writes it.
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head - tail >= self.ring.slots.len() {
            return Err(PushError::Full(value));
        }
        let slot = &self.ring.slots[head % self.ring.slots.len()];
        slot.with_mut(|p|
            // SAFETY: `head - tail < capacity`, so the consumer has
            // finished with this slot (it only reads slots below
            // `head`), and only this producer writes slots. The Release
            // store below publishes the write.
            unsafe { (*p).write(value) });
        // The watermark must be raised *before* the head store
        // publishes the new depth: the consumer's Acquire load of
        // `head` is the only synchronizing edge, so a mark written
        // after it could lag a depth the consumer already observed
        // (`len() == 2` but `high_water() == 1`). Caught by the
        // watermark_is_at_least_any_observed_depth model test.
        // relaxed: ordered before the Release store of `head` by
        // program order; the consumer reads it only after acquiring
        // `head`, which carries this write along.
        self.ring
            .watermark
            .fetch_max(head + 1 - tail, Ordering::Relaxed);
        self.ring.head.store(head + 1, Ordering::Release);
        Ok(())
    }

    /// Deepest occupancy the ring has ever reached.
    pub fn high_water(&self) -> usize {
        // relaxed: monotone statistic; the producer orders updates
        // before the `head` release-store (see `push`).
        self.ring.watermark.load(Ordering::Relaxed)
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        // relaxed: `head` is producer-owned; only this thread writes it.
        self.ring.head.load(Ordering::Relaxed) - self.ring.tail.load(Ordering::Acquire)
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the ring cannot take another item right now.
    pub fn is_full(&self) -> bool {
        self.len() >= self.ring.slots.len()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Free slots right now (capacity minus occupancy) — the disk
    /// process's read-ahead allowance.
    pub fn slack(&self) -> usize {
        self.capacity() - self.len()
    }

    /// True if the consumer has been dropped.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T: Send> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// The reading endpoint.
pub struct Consumer<T: Send> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

impl<T: Send> Consumer<T> {
    /// Attempts to dequeue; non-blocking.
    pub fn pop(&mut self) -> Result<T, PopError> {
        // relaxed: `tail` is consumer-owned; only this thread writes it.
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        if tail == head {
            return if self.ring.closed.load(Ordering::Acquire) {
                // Re-check head: the producer may have pushed between the
                // first load and the closed check.
                if self.ring.head.load(Ordering::Acquire) == tail {
                    Err(PopError::Closed)
                } else {
                    self.pop()
                }
            } else {
                Err(PopError::Empty)
            };
        }
        let slot = &self.ring.slots[tail % self.ring.slots.len()];
        let value = slot.with(|p|
            // SAFETY: `tail < head`, so the producer published this slot
            // with its Release store of `head` (matched by the Acquire
            // load above), and only this consumer reads slots. The value
            // is moved out exactly once because `tail` advances past the
            // slot below.
            unsafe { (*p).assume_init_read() });
        self.ring.tail.store(tail + 1, Ordering::Release);
        Ok(value)
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        // relaxed: `tail` is consumer-owned; only this thread writes it.
        self.ring.head.load(Ordering::Acquire) - self.ring.tail.load(Ordering::Relaxed)
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the producer has been dropped (items may still remain).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Deepest occupancy the ring has ever reached.
    pub fn high_water(&self) -> usize {
        // relaxed: the producer orders watermark updates before the
        // `head` release-store (see `push`), so any depth this consumer
        // has observed is already reflected here.
        self.ring.watermark.load(Ordering::Relaxed)
    }
}

impl<T: Send> Drop for Consumer<T> {
    fn drop(&mut self) {
        // See Ring::drop: during a model-abort unwind the indices may
        // not describe slot ownership, so draining could re-read a slot
        // whose value was already moved out.
        if cfg!(calliope_check) && std::thread::panicking() {
            return;
        }
        self.ring.closed.store(true, Ordering::Release);
        // Drain remaining items so their destructors run.
        while self.pop().is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_order_single_thread() {
        let (mut p, mut c) = ring::<u32>(4);
        assert_eq!(c.pop(), Err(PopError::Empty));
        p.push(1).unwrap();
        p.push(2).unwrap();
        p.push(3).unwrap();
        assert_eq!(c.pop(), Ok(1));
        p.push(4).unwrap();
        p.push(5).unwrap();
        assert_eq!(c.pop(), Ok(2));
        assert_eq!(c.pop(), Ok(3));
        assert_eq!(c.pop(), Ok(4));
        assert_eq!(c.pop(), Ok(5));
        assert_eq!(c.pop(), Err(PopError::Empty));
    }

    #[test]
    fn full_ring_rejects_without_losing_the_value() {
        let (mut p, mut c) = ring::<String>(2);
        p.push("a".into()).unwrap();
        p.push("b".into()).unwrap();
        assert!(p.is_full());
        match p.push("c".into()) {
            Err(PushError::Full(v)) => assert_eq!(v, "c"),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.pop().unwrap(), "a");
        p.push("c".into()).unwrap();
        assert_eq!(c.pop().unwrap(), "b");
        assert_eq!(c.pop().unwrap(), "c");
    }

    #[test]
    fn capacity_two_is_double_buffering() {
        // The paper's scheme: the disk fills one buffer while the network
        // drains the other.
        let (mut p, mut c) = ring::<Vec<u8>>(2);
        p.push(vec![0; 256 * 1024]).unwrap();
        p.push(vec![1; 256 * 1024]).unwrap();
        assert!(p.is_full(), "both buffers in use");
        let drained = c.pop().unwrap();
        assert_eq!(drained[0], 0);
        assert!(!p.is_full(), "a buffer came free for the disk process");
    }

    #[test]
    fn consumer_sees_closed_after_producer_drop() {
        let (mut p, mut c) = ring::<u8>(4);
        p.push(9).unwrap();
        drop(p);
        assert_eq!(c.pop(), Ok(9), "buffered items still drain");
        assert_eq!(c.pop(), Err(PopError::Closed));
        assert!(c.is_closed());
    }

    #[test]
    fn producer_sees_closed_after_consumer_drop() {
        let (mut p, c) = ring::<u8>(4);
        drop(c);
        match p.push(1) {
            Err(PushError::Closed(1)) => {}
            other => panic!("{other:?}"),
        }
        assert!(p.is_closed());
    }

    #[test]
    fn drops_run_for_undrained_items() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = ring::<D>(8);
        for _ in 0..5 {
            assert!(p.push(D).is_ok());
        }
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_stress_preserves_sequence() {
        let (mut p, mut c) = ring::<u64>(8);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match p.push(next) {
                    Ok(()) => next += 1,
                    // Yield rather than spin: CI machines may schedule
                    // both sides on one core.
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("consumer died"),
                }
            }
        });
        let mut expected = 0u64;
        loop {
            match c.pop() {
                Ok(v) => {
                    assert_eq!(v, expected, "items must arrive in order");
                    expected += 1;
                    if expected == N {
                        break;
                    }
                }
                Err(PopError::Empty) => std::thread::yield_now(),
                Err(PopError::Closed) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, N);
    }

    #[test]
    fn cross_thread_stress_with_large_payloads() {
        // Page-sized payloads across threads: checks that the handoff
        // publishes whole buffers, not just indices.
        let (mut p, mut c) = ring::<Vec<u8>>(2);
        const N: usize = 2_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let page = vec![(i % 251) as u8; 4096];
                let mut v = page;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                        Err(PushError::Closed(_)) => return,
                    }
                }
            }
        });
        let mut got = 0usize;
        while got < N {
            match c.pop() {
                Ok(page) => {
                    assert!(page.iter().all(|&b| b == (got % 251) as u8));
                    got += 1;
                }
                Err(PopError::Empty) => std::thread::yield_now(),
                Err(PopError::Closed) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(got, N);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ring::<u8>(0);
    }

    #[test]
    fn watermark_tracks_peak_depth() {
        let (mut p, mut c) = ring::<u8>(8);
        assert_eq!(p.high_water(), 0);
        p.push(1).unwrap();
        p.push(2).unwrap();
        p.push(3).unwrap();
        assert_eq!(p.high_water(), 3);
        c.pop().unwrap();
        c.pop().unwrap();
        // Draining does not lower the mark.
        assert_eq!(c.high_water(), 3);
        p.push(4).unwrap();
        // Depth only reached 2 here; the mark stays at its peak.
        assert_eq!(p.high_water(), 3);
        for v in 5..10 {
            p.push(v).unwrap();
        }
        assert_eq!(c.high_water(), 7);
    }
}
