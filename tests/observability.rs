//! Observability integration: a real Coordinator + MSU serve a stream
//! while a client pulls live metrics snapshots over the wire and checks
//! that the counters actually moved.

use calliope::cluster::Cluster;
use calliope::content;
use calliope_obs::FlightCode;
use calliope_types::wire::messages::DoneReason;
use calliope_types::wire::stats::MetricValue;
use calliope_types::SpanKind;
use std::time::Duration;

#[test]
fn stats_over_the_wire_reflect_a_played_stream() {
    // Honors RUST_LOG so a failing run can be narrated; no-op otherwise.
    calliope_obs::init_logging();
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let msu_id = cluster.msus[0].id();
    let mut client = cluster.client("alice", false).unwrap();

    // One record admission (the upload) and one play admission.
    let original = content::upload_mpeg(&mut client, "movie", 1, 42).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("movie", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    let reason = play.wait_end(Duration::from_secs(30)).unwrap();
    assert_eq!(reason, DoneReason::Completed);

    // Full fan-out: the Coordinator's snapshot plus one per MSU.
    let snaps = client.stats(None).unwrap();
    assert_eq!(snaps.len(), 2, "coordinator + 1 MSU: {snaps:#?}");

    let coord = snaps
        .iter()
        .find(|s| s.source == "coordinator")
        .expect("coordinator snapshot present");
    assert_eq!(
        coord.counter("admission.granted"),
        2,
        "record + play admissions"
    );
    assert_eq!(coord.counter("coord.streams_started"), 2);
    assert_eq!(coord.counter("admission.rejected"), 0);
    let wait = coord
        .get("admission.queue_wait_us")
        .expect("queue-wait histogram registered");
    let MetricValue::Histogram { count, .. } = wait else {
        panic!("admission.queue_wait_us must be a histogram, got {wait:?}");
    };
    assert_eq!(*count, 2, "every admission records its queue wait");
    assert!(wait.quantile(0.99).is_some());

    let msu = snaps
        .iter()
        .find(|s| s.source == msu_id.to_string())
        .unwrap_or_else(|| panic!("{msu_id} snapshot present in {snaps:#?}"));
    assert!(
        msu.counter("net.packets_sent") > 0,
        "{msu_id} sent packets for {stream}"
    );
    assert_eq!(
        msu.counter("net.bytes_sent"),
        original.len() as u64,
        "{msu_id} accounted every byte of {stream}"
    );
    assert!(
        msu.counter("net.packets_recorded") > 0,
        "upload was counted"
    );
    let disk_read = msu
        .get("disk.read_service_us")
        .expect("disk service-time histogram registered");
    let MetricValue::Histogram { count, .. } = disk_read else {
        panic!("disk.read_service_us must be a histogram");
    };
    assert!(*count > 0, "playback touched the disk");
    match msu.get("spsc.play_ring_depth") {
        Some(MetricValue::Gauge { high_water, .. }) => {
            assert!(*high_water > 0, "play ring was used");
        }
        other => panic!("spsc.play_ring_depth must be a gauge, got {other:?}"),
    }

    // Targeted form: just the one MSU.
    let one = client.stats(Some(msu_id)).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].source, msu_id.to_string());

    // The client's own receive-side view exports the same shape.
    let local = port.snapshot_stats();
    assert_eq!(local.source, "client:tv");
    assert!(local.counter("recv.packets") > 0);
    assert_eq!(local.counter("recv.bytes"), original.len() as u64);
    assert!(local.counter(&format!("stream.{}.packets", stream.0)) > 0);

    cluster.shutdown();
}

/// One playback, one trace id: the context the Coordinator mints at
/// admission reaches the client (via `StreamStart`) and the MSU (via
/// `ScheduleRead`), and both flight recorders stamp their events with
/// it — the end-to-end property one `RUST_LOG=trace` grep relies on.
#[test]
fn one_trace_id_spans_client_coordinator_and_msu() {
    calliope_obs::init_logging();
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("carol", false).unwrap();
    content::upload_mpeg(&mut client, "traced", 1, 9).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("traced", "tv", &[&port]).unwrap();

    // Client side: the trace arrived on the wire with the admission.
    let trace = play.traces[0];
    assert!(trace.is_traced(), "admission must mint a trace id");
    assert_eq!(trace.kind, SpanKind::Play);
    play.wait_end(Duration::from_secs(30)).unwrap();

    // The MSU tells the client about the end of the stream directly, so
    // the Coordinator's own copy of `StreamDone` may still be in flight
    // when `wait_end` returns — poll briefly rather than racing it.
    let has = |events: &[calliope_obs::FlightEventRecord], code: FlightCode| {
        events.iter().any(|e| e.code == code && e.trace == trace.id)
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        // Coordinator side: admission and teardown share the id.
        let coord_events = cluster.coord.flight().snapshot();
        let coord_ok = [
            FlightCode::Admit,
            FlightCode::Schedule,
            FlightCode::StreamDone,
        ]
        .into_iter()
        .all(|code| has(&coord_events, code));
        // MSU side: the grant and the group release carry the same id.
        let msu_events = cluster.msus[0].flight().snapshot();
        let msu_ok = [
            FlightCode::Schedule,
            FlightCode::GroupReady,
            FlightCode::StreamDone,
        ]
        .into_iter()
        .all(|code| has(&msu_events, code));
        if coord_ok && msu_ok {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "flight recorders never completed the [{trace}] span: \
             coordinator {coord_events:#?}, MSU {msu_events:#?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

/// The Coordinator's cluster view: heartbeat `Pong`s piggyback each
/// MSU's snapshot, and `ClusterStats` serves the merged aggregate —
/// counters summed, histograms bucket-merged — without any extra RPC.
#[test]
fn cluster_stats_merge_heartbeat_snapshots() {
    let cluster = Cluster::builder()
        .msus(2)
        .heartbeat(Duration::from_millis(50), 20)
        .build()
        .unwrap();
    let mut client = cluster.client("dave", false).unwrap();
    content::upload_mpeg(&mut client, "clip", 1, 21).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("clip", "tv", &[&port]).unwrap();
    play.wait_end(Duration::from_secs(30)).unwrap();

    // Wait for a heartbeat round to carry both MSUs' post-playback
    // snapshots into the Coordinator's cache.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (merged, msus) = loop {
        let (merged, msus) = client.cluster_stats().unwrap();
        if msus.len() == 2 && merged.counter("net.packets_sent") > 0 {
            break (merged, msus);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cluster view never filled: {merged:#?} {msus:#?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    assert_eq!(merged.source, "cluster");
    // Counters merge by summation across MSUs.
    for name in ["net.packets_sent", "net.bytes_sent", "msu.io_errors"] {
        let sum: u64 = msus.iter().map(|s| s.counter(name)).sum();
        assert_eq!(merged.counter(name), sum, "{name} must sum across MSUs");
    }
    // The merged send-lateness histogram answers the `top` quantiles.
    let late = merged
        .get("net.send_lateness_us")
        .expect("merged histogram present");
    assert!(matches!(late, MetricValue::Histogram { .. }));
    for p in [0.50, 0.95, 0.99] {
        assert!(
            late.quantile(p).is_some(),
            "p{} of send lateness",
            p * 100.0
        );
    }
    assert!(cluster.coord.stats().snapshots_merged.get() >= 2);
    cluster.shutdown();
}

#[test]
fn per_stream_counters_appear_and_vanish_with_the_stream() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let msu_id = cluster.msus[0].id();
    let mut client = cluster.client("bob", false).unwrap();
    content::upload_mpeg(&mut client, "clip", 2, 7).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("clip", "tv", &[&port]).unwrap();
    let stream = play.streams[0];

    // While playing, the MSU snapshot carries per-stream counters.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let key = format!("stream.{}.packets", stream.0);
    loop {
        let snap = &client.stats(Some(msu_id)).unwrap()[0];
        if snap.counter(&key) > 0 {
            assert!(snap
                .get(&format!("stream.{}.deadline_misses", stream.0))
                .is_some());
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no per-stream counters for {stream} on {msu_id}: {snap:#?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    play.wait_end(Duration::from_secs(30)).unwrap();
    // Torn down: the per-stream series is gone, the port-wide totals stay.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = &client.stats(Some(msu_id)).unwrap()[0];
        if snap.get(&key).is_none() {
            assert!(snap.counter("net.packets_sent") > 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{stream} counters survived teardown on {msu_id}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}
