//! End-to-end stream tracing.
//!
//! A [`TraceCtx`] is minted by the Coordinator when a play or record
//! request is admitted and then rides along on every wire message that
//! concerns the stream: the `ScheduleRead`/`ScheduleWrite` grant to the
//! MSU, the `StreamStart`/`RecordStart` handed back to the client, the
//! `GroupReady` the MSU sends on the control connection, and the final
//! `StreamDone`. Every component logs the same 64-bit id, so one
//! `RUST_LOG=trace` grep for `t0000000000000042` reconstructs a stream's
//! life across client, Coordinator, and MSU — and the flight recorder
//! stamps the same id into its binary events.
//!
//! A failover keeps the original trace id (the stream is the *same*
//! viewing from the user's point of view) but switches the span kind to
//! [`SpanKind::Failover`], so the re-admission is visibly part of the
//! original timeline.

use crate::wire::{Reader, Wire, WireError};
use core::fmt;

/// What kind of stream lifecycle a trace id belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpanKind {
    /// No trace context (id 0): paths that never went through
    /// admission, or peers that predate tracing.
    #[default]
    None = 0,
    /// A playback admitted via `ClientRequest::Play`.
    Play = 1,
    /// A recording admitted via `ClientRequest::Record`.
    Record = 2,
    /// A playback re-admitted on a replica after its MSU or disk died.
    Failover = 3,
}

impl SpanKind {
    fn from_tag(tag: u8) -> Option<SpanKind> {
        match tag {
            0 => Some(SpanKind::None),
            1 => Some(SpanKind::Play),
            2 => Some(SpanKind::Record),
            3 => Some(SpanKind::Failover),
            _ => None,
        }
    }

    /// Short lower-case name used in log lines.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::None => "none",
            SpanKind::Play => "play",
            SpanKind::Record => "record",
            SpanKind::Failover => "failover",
        }
    }
}

/// A trace context: a cluster-unique 64-bit id plus the span kind.
///
/// Encodes as the raw `u64` followed by a tag byte. The default value
/// (`id == 0`, [`SpanKind::None`]) means "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// Cluster-unique trace id; 0 means untraced.
    pub id: u64,
    /// Which lifecycle this trace follows.
    pub kind: SpanKind,
}

impl TraceCtx {
    /// A fresh context for an admitted stream.
    pub fn new(id: u64, kind: SpanKind) -> TraceCtx {
        TraceCtx { id, kind }
    }

    /// True if this context carries a real trace id.
    pub fn is_traced(&self) -> bool {
        self.id != 0
    }

    /// The same trace id continuing as a failover span.
    pub fn into_failover(self) -> TraceCtx {
        TraceCtx {
            id: self.id,
            kind: SpanKind::Failover,
        }
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:016x}/{}", self.id, self.kind.name())
    }
}

impl Wire for TraceCtx {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        buf.push(self.kind as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = u64::decode(r)?;
        let tag = r.u8("span kind")?;
        let kind = SpanKind::from_tag(tag).ok_or(WireError::BadTag {
            what: "span kind",
            tag,
        })?;
        Ok(TraceCtx { id, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ctx_round_trips() {
        for kind in [
            SpanKind::None,
            SpanKind::Play,
            SpanKind::Record,
            SpanKind::Failover,
        ] {
            let ctx = TraceCtx::new(0xDEADBEEF_00C0FFEE, kind);
            let back = TraceCtx::from_bytes(&ctx.to_bytes()).unwrap();
            assert_eq!(back, ctx);
        }
        let ctx = TraceCtx::default();
        assert!(!ctx.is_traced());
        assert_eq!(TraceCtx::from_bytes(&ctx.to_bytes()).unwrap(), ctx);
    }

    #[test]
    fn bad_span_kind_tag_is_rejected() {
        let mut bytes = 1u64.to_bytes();
        bytes.push(9);
        assert_eq!(
            TraceCtx::from_bytes(&bytes),
            Err(WireError::BadTag {
                what: "span kind",
                tag: 9
            })
        );
    }

    #[test]
    fn display_is_greppable() {
        let ctx = TraceCtx::new(0x42, SpanKind::Play);
        assert_eq!(ctx.to_string(), "t0000000000000042/play");
        assert_eq!(
            ctx.into_failover().to_string(),
            "t0000000000000042/failover"
        );
    }
}
