//! Protocol extension modules and delivery schedules.
//!
//! Calliope's MSU is extensible: support for a new network protocol is a
//! small module — "essentially a header definition and a few control
//! messages" (paper §2.3.2). A module does two things:
//!
//! 1. it performs whatever per-packet work the protocol needs beyond
//!    plain data transfer (e.g. the RTP module interleaves RTCP control
//!    messages with the data stream while recording and separates them
//!    again on playback), and
//! 2. it derives a *delivery time* for each packet recorded. By default
//!    that is the packet's arrival time; a protocol with sender
//!    timestamps in its header (RTP, VAT) derives delivery time from the
//!    timestamp instead, which excludes network-induced jitter from the
//!    stored schedule.
//!
//! Delivery times are offsets from the beginning of the recording
//! session (paper §2.2.1). For variable-rate streams the schedule is
//! stored interleaved with the data (see `calliope-storage`'s IB-tree);
//! for constant-rate streams it is calculated at playback time
//! ([`schedule::CbrSchedule`]).

pub mod cbr;
pub mod module;
pub mod record;
pub mod rtp;
pub mod schedule;
pub mod vat;

pub use module::{registry, PlaybackClass, ProtocolModule, RecordedPacket};
pub use record::PacketRecord;
pub use schedule::{CbrSchedule, ScheduleBuilder};
