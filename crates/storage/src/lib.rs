//! The MSU user-level file system.
//!
//! "The MSU has to manage files that are often large … and are usually
//! read and written sequentially. Instead of the BSD fast file system,
//! the MSU uses a simple user-level file system tuned to the multimedia
//! workload." (paper §2.3.3)
//!
//! The file system's defining choices, all from the paper:
//!
//! * **Large blocks** — 256 KB transfers amortize seeks ("the MSU
//!   achieves 70% of the maximum disk transfer bandwidth") and shrink
//!   metadata until it is *entirely cached in main memory*.
//! * **No LRU block cache** — clients stream sequentially and share
//!   nothing on a one-second granularity, so caching data blocks would
//!   only waste memory. Read-ahead / write-behind buffering is done by
//!   the MSU's disk process instead.
//! * **Raw device access** — the FS sits directly on a [`block::BlockDevice`]
//!   (a file-backed disk in this reproduction), not on a kernel FS.
//! * **The Integrated B-tree** ([`ibtree`]) — variable-rate files
//!   interleave their delivery schedule with the data, embedding the
//!   B-tree's internal pages *inside* data pages so a data+index write
//!   costs one transfer and one seek (paper §2.2.1).
//! * **No striping by default** — a file's blocks live on one disk
//!   (§2.3.3 discusses the trade-off at length); [`striped`] implements
//!   the striped layout the authors considered, as an ablation.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod block;
pub mod catalog;
pub mod elevator;
pub mod faults;
pub mod fs;
pub mod ibtree;
pub mod layout;
pub mod page;
pub mod striped;

pub use block::{BlockDevice, FileDisk, IoStats, MemDisk, MeteredDevice};
pub use catalog::{FileKind, FileMeta};
pub use elevator::{coalesce_runs, ElevatorState, Run};
pub use faults::{FaultControl, FaultPlan, FaultyDisk};
pub use fs::MsuFs;
pub use ibtree::{IbTreeReader, IbTreeWriter, SeekPos};
pub use layout::BLOCK_SIZE;
