//! Elevator (SCAN) disk-head scheduling, shared by the simulator and
//! the real MSU disk process.
//!
//! The paper's §2.3.3 measures the policy with "a simple program that
//! simulated 24 concurrent users reading random 256 KByte disk blocks"
//! (that program lives in `calliope-sim::diskpolicy` and drives this
//! module's [`ElevatorState::next`]); the real MSU duty cycle uses
//! [`ElevatorState::plan`] to order each duty-cycle batch before the
//! reads are issued, and [`coalesce_runs`] to merge physically adjacent
//! blocks into single multi-block transfers.
//!
//! The semantics are classic SCAN: the head sweeps in one direction,
//! serving the nearest pending request ahead of it, and reverses only
//! when nothing remains in the current direction.

/// The persistent head state of one disk's elevator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElevatorState {
    /// Current head position (block address).
    pub head: u64,
    /// Sweep direction: `true` = toward higher addresses.
    pub up: bool,
}

impl Default for ElevatorState {
    fn default() -> Self {
        ElevatorState { head: 0, up: true }
    }
}

impl ElevatorState {
    /// A fresh elevator parked at block 0, sweeping upward.
    pub fn new() -> ElevatorState {
        ElevatorState::default()
    }

    /// Index of the nearest pending request in the current sweep
    /// direction, or `None` if the current direction is exhausted.
    /// Ties go to the earliest index, matching the round-robin
    /// registration order.
    pub fn select(&self, pending: &[u64]) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, &p)| {
                if self.up {
                    p >= self.head
                } else {
                    p <= self.head
                }
            })
            .min_by_key(|(_, &p)| p.abs_diff(self.head))
            .map(|(i, _)| i)
    }

    /// Picks the next request to serve, reversing the sweep if the
    /// current direction is exhausted, and moves the head there.
    /// Returns `None` only when `pending` is empty.
    pub fn next(&mut self, pending: &[u64]) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        let idx = match self.select(pending) {
            Some(i) => i,
            None => {
                self.up = !self.up;
                self.select(pending).expect("non-empty pending set")
            }
        };
        self.head = pending[idx];
        Some(idx)
    }

    /// Orders a whole batch of requests into SCAN issue order, starting
    /// from the current head position and direction. Returns the
    /// permutation of `addrs` indices in issue order and leaves the
    /// head parked at the last request served.
    ///
    /// The result always decomposes into at most two monotone runs: the
    /// remainder of the current sweep, then (if anything was behind the
    /// head) one reversed sweep back — the invariant the property tests
    /// assert.
    pub fn plan(&mut self, addrs: &[u64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..addrs.len()).collect();
        // Ahead of the head in the current direction, sorted along the
        // sweep; then everything behind, swept back the other way.
        let up = self.up;
        let head = self.head;
        let ahead = |a: u64| if up { a >= head } else { a <= head };
        order.sort_by(|&i, &j| {
            let (a, b) = (addrs[i], addrs[j]);
            match (ahead(a), ahead(b)) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (true, true) => {
                    if up {
                        a.cmp(&b).then(i.cmp(&j))
                    } else {
                        b.cmp(&a).then(i.cmp(&j))
                    }
                }
                (false, false) => {
                    if up {
                        b.cmp(&a).then(i.cmp(&j))
                    } else {
                        a.cmp(&b).then(i.cmp(&j))
                    }
                }
            }
        });
        if let Some(&last) = order.last() {
            // If the batch ended on the reversed sweep, the elevator is
            // now travelling the other way.
            if !ahead(addrs[last]) {
                self.up = !self.up;
            }
            self.head = addrs[last];
        }
        order
    }

    /// Total head travel, in blocks, of visiting `addrs` in the given
    /// order starting from `head` (the figure the round-robin duty
    /// cycle pays and the elevator saves).
    pub fn travel(head: u64, addrs: &[u64]) -> u64 {
        let mut at = head;
        let mut sum = 0;
        for &a in addrs {
            sum += at.abs_diff(a);
            at = a;
        }
        sum
    }
}

/// One physically contiguous run inside a batch: `count` blocks
/// starting at `start`, with `members[i]` the batch index of the
/// request for block `start + i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Run {
    /// First block address of the run.
    pub start: u64,
    /// Batch indices of the requests, in block order.
    pub members: Vec<usize>,
}

impl Run {
    /// Number of blocks in the run.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the run is empty (never produced by [`coalesce_runs`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Splits an issue-ordered batch into maximal runs of physically
/// adjacent block addresses — each run can be issued as one multi-block
/// transfer. `order` indexes into `addrs` (as produced by
/// [`ElevatorState::plan`]). Adjacency counts in both directions: a
/// downward sweep visits a contiguous range high-to-low, and the run
/// grows downward so `members[i]` always maps to block `start + i`.
pub fn coalesce_runs(addrs: &[u64], order: &[usize]) -> Vec<Run> {
    let mut runs: Vec<Run> = Vec::new();
    for &idx in order {
        let addr = addrs[idx];
        match runs.last_mut() {
            Some(run) if addr == run.start + run.members.len() as u64 => {
                run.members.push(idx);
            }
            Some(run) if run.start > 0 && addr == run.start - 1 => {
                run.start -= 1;
                run.members.insert(0, idx);
            }
            _ => runs.push(Run {
                start: addr,
                members: vec![idx],
            }),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Splits an issue order into maximal monotone runs of addresses.
    fn monotone_runs(addrs: &[u64], order: &[usize]) -> usize {
        if order.len() < 2 {
            return order.len();
        }
        let mut runs = 1;
        let mut dir: Option<bool> = None;
        for w in order.windows(2) {
            let (a, b) = (addrs[w[0]], addrs[w[1]]);
            if a == b {
                continue;
            }
            let up = b > a;
            match dir {
                None => dir = Some(up),
                Some(d) if d != up => {
                    runs += 1;
                    dir = Some(up);
                }
                Some(_) => {}
            }
        }
        runs
    }

    #[test]
    fn plan_serves_ahead_then_sweeps_back() {
        let mut el = ElevatorState { head: 50, up: true };
        let addrs = [60, 10, 55, 90, 40];
        let order = el.plan(&addrs);
        let visited: Vec<u64> = order.iter().map(|&i| addrs[i]).collect();
        assert_eq!(visited, vec![55, 60, 90, 40, 10]);
        assert_eq!(el.head, 10);
        assert!(!el.up, "batch ended on the downward sweep");
    }

    #[test]
    fn plan_all_behind_reverses_once() {
        let mut el = ElevatorState {
            head: 100,
            up: true,
        };
        let addrs = [30, 70, 10];
        let order = el.plan(&addrs);
        let visited: Vec<u64> = order.iter().map(|&i| addrs[i]).collect();
        assert_eq!(visited, vec![70, 30, 10]);
        assert!(!el.up);
    }

    #[test]
    fn next_matches_plan_for_a_fixed_batch() {
        // Serving a fixed pending set one at a time with `next` visits
        // the same sequence `plan` computes up front.
        let addrs = vec![5u64, 93, 40, 41, 12, 77];
        let mut planner = ElevatorState { head: 30, up: true };
        let order = planner.plan(&addrs);

        let mut stepper = ElevatorState { head: 30, up: true };
        let mut pending = addrs.clone();
        let mut visited = Vec::new();
        while !pending.is_empty() {
            let i = stepper.next(&pending).unwrap();
            visited.push(pending.remove(i));
        }
        let planned: Vec<u64> = order.iter().map(|&i| addrs[i]).collect();
        assert_eq!(visited, planned);
    }

    #[test]
    fn coalesce_merges_adjacent_blocks() {
        let addrs = [10, 11, 12, 40, 41, 7];
        let order: Vec<usize> = (0..addrs.len()).collect();
        let runs = coalesce_runs(&addrs, &order);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].start, 10);
        assert_eq!(runs[0].members, vec![0, 1, 2]);
        assert_eq!(runs[1].start, 40);
        assert_eq!(runs[1].members, vec![3, 4]);
        assert_eq!(runs[2].start, 7);
        assert!(!runs[2].is_empty());
        assert_eq!(runs[2].len(), 1);
    }

    #[test]
    fn coalesce_merges_descending_sweeps() {
        // A downward sweep (41, 40, 12, 11, 10) is two contiguous
        // transfers even though the addresses descend.
        let addrs = [41, 40, 12, 11, 10];
        let order: Vec<usize> = (0..addrs.len()).collect();
        let runs = coalesce_runs(&addrs, &order);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].start, 40);
        assert_eq!(runs[0].members, vec![1, 0]);
        assert_eq!(runs[1].start, 10);
        assert_eq!(runs[1].members, vec![4, 3, 2]);
    }

    #[test]
    fn travel_sums_head_movement() {
        assert_eq!(ElevatorState::travel(10, &[20, 5, 6]), 10 + 15 + 1);
        assert_eq!(ElevatorState::travel(0, &[]), 0);
    }

    proptest! {
        #[test]
        fn prop_plan_is_a_permutation_in_at_most_two_sweeps(
            addrs in proptest::collection::vec(0u64..10_000, 1..64),
            head in 0u64..10_000,
            up in any::<bool>(),
        ) {
            let mut el = ElevatorState { head, up };
            let order = el.plan(&addrs);
            // Every request is served exactly once.
            let mut seen = vec![false; addrs.len()];
            for &i in &order {
                prop_assert!(!seen[i], "request {i} issued twice");
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
            // The issue order is at most two monotone sweeps: the
            // remainder of the current stroke plus one reversal.
            prop_assert!(monotone_runs(&addrs, &order) <= 2);
        }

        #[test]
        fn prop_plan_travel_is_bounded_by_one_round_trip(
            addrs in proptest::collection::vec(0u64..10_000, 1..64),
            head in 0u64..10_000,
        ) {
            // SCAN's travel is at most one stroke out plus one stroke
            // back over the span of the batch — independent of batch
            // size, which is the whole point of sweeping.
            let mut el = ElevatorState { head, up: true };
            let order = el.plan(&addrs);
            let planned: Vec<u64> = order.iter().map(|&i| addrs[i]).collect();
            let lo = *addrs.iter().min().unwrap();
            let hi = *addrs.iter().max().unwrap();
            let span = hi - lo + hi.abs_diff(head) + lo.abs_diff(head);
            prop_assert!(ElevatorState::travel(head, &planned) <= span);
        }

        #[test]
        fn prop_coalesced_runs_cover_the_batch_contiguously(
            addrs in proptest::collection::vec(0u64..500, 1..64),
            head in 0u64..500,
        ) {
            let mut el = ElevatorState { head, up: true };
            let order = el.plan(&addrs);
            let runs = coalesce_runs(&addrs, &order);
            // Each run is one contiguous transfer (members[i] ↔ start+i)
            // and every request lands in exactly one run. Within a run
            // the block order may differ from the issue order — a
            // downward sweep fills its run high-to-low — so compare as
            // sets, not sequences.
            let mut replay = Vec::new();
            for run in &runs {
                for (k, &m) in run.members.iter().enumerate() {
                    prop_assert_eq!(addrs[m], run.start + k as u64);
                    replay.push(m);
                }
            }
            let mut sorted_replay = replay.clone();
            sorted_replay.sort_unstable();
            let mut sorted_order = order.clone();
            sorted_order.sort_unstable();
            prop_assert_eq!(sorted_replay, sorted_order);
        }
    }
}
