//! E2 — Graph 1: cumulative packet-delivery distribution for constant
//! bit-rate streams (22/23/24 × 1.5 Mbit/s).

use calliope_bench::{banner, horizon_secs};
use calliope_sim::msu_model::{run, MsuWorkload};

fn main() {
    banner(
        "E2",
        "Cumulative packet delivery distribution, constant bit-rate",
        "Graph 1, §3.2.1",
    );
    let secs = horizon_secs();
    println!("workload: n × 1.5 Mbit/s MPEG-1 streams, 4 KB packets, 2 disks on 1 HBA, {secs} s");
    println!("(the paper ran six minutes and ~16480 packets per stream)");
    println!();
    println!(
        "{:>8} | {:>9} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>9} {:>9}",
        "streams",
        "packets",
        "≤10ms",
        "≤20ms",
        "≤50ms",
        "≤150ms",
        "max(ms)",
        "wire MB/s",
        "disk MB/s"
    );
    println!("{}", "-".repeat(98));
    for n in [22usize, 23, 24] {
        let r = run(&MsuWorkload::cbr(n, secs, 42));
        println!(
            "{:>8} | {:>9} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1} | {:>9.2} {:>9.2}",
            n,
            r.packets,
            r.cdf.pct_within_ms(10),
            r.cdf.pct_within_ms(20),
            r.cdf.pct_within_ms(50),
            r.cdf.pct_within_ms(150),
            r.cdf.max_ms(),
            r.wire_mb_s,
            r.disk_mb_s,
        );
    }
    println!();
    println!("Curve series for plotting (cumulative % by ms late):");
    for n in [22usize, 23, 24] {
        let r = run(&MsuWorkload::cbr(n, secs, 42));
        let points: Vec<String> = [0usize, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300]
            .iter()
            .map(|ms| format!("{ms}:{:.1}", r.cdf.pct_within_ms(*ms)))
            .collect();
        println!("  n={n:2}  {}", points.join("  "));
    }
    println!();
    println!("Paper reference points:");
    println!("  22 streams: 99.6% within 50 ms, nothing beyond 150 ms — good service");
    println!("  23 streams: quality \"first degrades gradually\"");
    println!("  24 streams: only 38% within 50 ms over six minutes — \"then dramatically\"");
    println!("  (22 streams ≈ 4.1 MB/s on the wire ≈ 90% of the 4.7 MB/s baseline)");
}
