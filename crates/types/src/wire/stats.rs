//! Metrics snapshot types carried by the `Stats` wire messages.
//!
//! Every Calliope component keeps live counters, gauges, and fixed-bucket
//! histograms (the `calliope-obs` registry). A snapshot flattens those
//! into self-describing name/value pairs so any component's internals can
//! be inspected over the existing TCP control plane — the Coordinator
//! forwards `GetStats` to MSUs and merges their answers, and
//! `calliope-cli stats` renders the result.
//!
//! Histograms travel as cumulative buckets, Prometheus-style: each
//! [`HistBucket`] counts the samples `<= le`, and the final bucket has
//! `le == u64::MAX` so the series always covers every sample. That makes
//! [`MetricValue::quantile`] a single scan, and lets two snapshots be
//! subtracted bucket-wise to get a rate window.

use super::{Reader, Wire, WireError};

/// One cumulative histogram bucket: how many samples were `<= le`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive upper bound of the bucket (`u64::MAX` for the overflow
    /// bucket).
    pub le: u64,
    /// Cumulative sample count for this bound.
    pub count: u64,
}

impl Wire for HistBucket {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.le.encode(buf);
        self.count.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HistBucket {
            le: u64::decode(r)?,
            count: u64::decode(r)?,
        })
    }
}

/// The value of one named metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous level plus the highest level ever observed.
    Gauge {
        /// Current value.
        value: u64,
        /// High-water mark since the component started.
        high_water: u64,
    },
    /// Distribution of recorded values (units are per-metric; the MSU
    /// and Coordinator record microseconds).
    Histogram {
        /// Cumulative buckets, ascending `le`, ending at `u64::MAX`.
        buckets: Vec<HistBucket>,
        /// Total samples recorded.
        count: u64,
        /// Sum of all recorded values.
        sum: u64,
    },
}

impl MetricValue {
    /// Estimates the `q`-quantile (`0.0..=1.0`) of a histogram as the
    /// upper bound of the bucket containing that rank. Returns `None`
    /// for non-histograms and empty histograms.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let MetricValue::Histogram { buckets, count, .. } = self else {
            return None;
        };
        if *count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * *count as f64).ceil() as u64).max(1);
        buckets.iter().find(|b| b.count >= rank).map(|b| b.le)
    }

    /// Mean of a histogram's samples, `None` if empty or not a
    /// histogram.
    pub fn mean(&self) -> Option<f64> {
        match self {
            MetricValue::Histogram { count, sum, .. } if *count > 0 => {
                Some(*sum as f64 / *count as f64)
            }
            _ => None,
        }
    }

    /// The counter's value, `None` for other kinds.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }
}

impl Wire for MetricValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MetricValue::Counter(v) => {
                buf.push(0);
                v.encode(buf);
            }
            MetricValue::Gauge { value, high_water } => {
                buf.push(1);
                value.encode(buf);
                high_water.encode(buf);
            }
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                buf.push(2);
                buckets.encode(buf);
                count.encode(buf);
                sum.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("metric value")? {
            0 => MetricValue::Counter(u64::decode(r)?),
            1 => MetricValue::Gauge {
                value: u64::decode(r)?,
                high_water: u64::decode(r)?,
            },
            2 => MetricValue::Histogram {
                buckets: Vec::<HistBucket>::decode(r)?,
                count: u64::decode(r)?,
                sum: u64::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "metric value",
                    tag,
                })
            }
        })
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// Dotted metric name, e.g. `net.deadline_misses`.
    pub name: String,
    /// Its value.
    pub value: MetricValue,
}

impl Wire for MetricEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.value.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MetricEntry {
            name: String::decode(r)?,
            value: MetricValue::decode(r)?,
        })
    }
}

/// A full metrics snapshot from one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Who produced it: `coordinator`, `msu-3`, `client`, ….
    pub source: String,
    /// Microseconds since the component started.
    pub uptime_us: u64,
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricEntry>,
}

impl StatsSnapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Convenience: a counter's value, zero if absent or another kind.
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name)
            .and_then(MetricValue::as_counter)
            .unwrap_or(0)
    }
}

impl Wire for StatsSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.source.encode(buf);
        self.uptime_us.encode(buf);
        self.metrics.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StatsSnapshot {
            source: String::decode(r)?,
            uptime_us: u64::decode(r)?,
            metrics: Vec::<MetricEntry>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + core::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        assert_eq!(&T::from_bytes(&bytes).expect("decode"), v);
    }

    fn sample_histogram() -> MetricValue {
        // 10 samples: 4 <= 100, 9 <= 1000, 1 overflow.
        MetricValue::Histogram {
            buckets: vec![
                HistBucket { le: 100, count: 4 },
                HistBucket { le: 1000, count: 9 },
                HistBucket {
                    le: u64::MAX,
                    count: 10,
                },
            ],
            count: 10,
            sum: 5000,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = StatsSnapshot {
            source: "msu-2".into(),
            uptime_us: 1_234_567,
            metrics: vec![
                MetricEntry {
                    name: "net.packets_sent".into(),
                    value: MetricValue::Counter(42),
                },
                MetricEntry {
                    name: "spsc.net_queue_depth".into(),
                    value: MetricValue::Gauge {
                        value: 3,
                        high_water: 17,
                    },
                },
                MetricEntry {
                    name: "net.lateness_us".into(),
                    value: sample_histogram(),
                },
            ],
        };
        round_trip(&snap);
        assert_eq!(snap.counter("net.packets_sent"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.get("net.lateness_us").is_some());
    }

    #[test]
    fn quantiles_pick_the_right_bucket() {
        let h = sample_histogram();
        // rank(0.5 * 10) = 5 -> first bucket with cum >= 5 is le=1000.
        assert_eq!(h.quantile(0.5), Some(1000));
        // rank 1 -> le=100.
        assert_eq!(h.quantile(0.0), Some(100));
        assert_eq!(h.quantile(0.4), Some(100));
        // rank 10 -> overflow bucket.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.mean(), Some(500.0));
        // Non-histograms and empty histograms have no quantiles.
        assert_eq!(MetricValue::Counter(5).quantile(0.5), None);
        let empty = MetricValue::Histogram {
            buckets: vec![HistBucket {
                le: u64::MAX,
                count: 0,
            }],
            count: 0,
            sum: 0,
        };
        assert_eq!(empty.quantile(0.99), None);
    }

    #[test]
    fn metric_values_round_trip_and_reject_bad_tags() {
        round_trip(&MetricValue::Counter(u64::MAX));
        round_trip(&MetricValue::Gauge {
            value: 0,
            high_water: 9,
        });
        round_trip(&sample_histogram());
        assert!(matches!(
            MetricValue::from_bytes(&[9]),
            Err(WireError::BadTag {
                what: "metric value",
                ..
            })
        ));
    }
}
