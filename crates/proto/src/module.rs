//! The protocol-module interface.
//!
//! "An MSU protocol extension module is comprised of two functions. The
//! first performs any operations required by the protocol beyond the
//! normal sending or receiving of data packets. … The MSU calls the
//! second extension function during recording to construct a delivery
//! schedule." (paper §2.3.2)
//!
//! We express the pair as the [`ProtocolModule`] trait:
//! [`ProtocolModule::on_record`] is called per incoming packet while
//! recording and yields the [`PacketRecord`] to store (with a normalized
//! delivery offset); [`ProtocolModule::on_play`] is called per stored
//! record during playback and classifies it for output. Modules are
//! stateful — the RTP module, for example, unwraps 32-bit timestamps and
//! tracks its control stream.

use crate::record::PacketRecord;
use calliope_types::content::ProtocolId;
use calliope_types::error::Result;
use calliope_types::time::BitRate;
use calliope_types::wire::data::PacketKind;

/// Where a played-back record should go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaybackClass {
    /// Send on the data path with its scheduled delivery time.
    Media,
    /// Send as an interleaved control message (e.g. RTCP). Control
    /// packets piggyback on the schedule of the surrounding media.
    Control,
    /// Do not send (module consumed the record internally).
    Drop,
}

/// A packet accepted for recording, ready for the disk process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedPacket {
    /// The record to append to the file (offset already normalized).
    pub record: PacketRecord,
}

/// A protocol extension module (paper §2.3.2).
///
/// One instance exists per active stream; modules may keep per-stream
/// state and must be `Send` so they can live on the MSU's network
/// process (thread).
pub trait ProtocolModule: Send {
    /// Which protocol this module implements.
    fn id(&self) -> ProtocolId;

    /// Processes one incoming packet during recording.
    ///
    /// * `kind` — media or control, as marked by the sender.
    /// * `payload` — protocol bytes (header included).
    /// * `arrival_us` — receive time on the MSU's monotonic clock, in
    ///   microseconds.
    ///
    /// Returns the record to store, or `Ok(None)` to drop the packet
    /// (e.g. malformed but non-fatal). By default the delivery time is
    /// derived from the arrival time; modules whose protocol carries a
    /// sender timestamp derive it from the header instead, which keeps
    /// network-induced jitter out of the stored schedule.
    fn on_record(
        &mut self,
        kind: PacketKind,
        payload: &[u8],
        arrival_us: u64,
    ) -> Result<Option<RecordedPacket>>;

    /// Classifies one stored record during playback.
    ///
    /// The default sends media records on the data path and control
    /// records on the control path, unchanged.
    fn on_play(&mut self, record: &PacketRecord) -> Result<PlaybackClass> {
        Ok(match record.kind {
            PacketKind::Media => PlaybackClass::Media,
            PacketKind::Control => PlaybackClass::Control,
            PacketKind::EndOfStream => PlaybackClass::Drop,
        })
    }
}

/// Instantiates the module registered for `id`.
///
/// `cbr_rate` parameterizes the constant-rate module's sanity checks; it
/// is ignored by the timestamped protocols.
pub fn registry(id: ProtocolId, cbr_rate: Option<BitRate>) -> Box<dyn ProtocolModule> {
    match id {
        ProtocolId::ConstantRate => Box::new(crate::cbr::CbrModule::new(cbr_rate)),
        ProtocolId::Rtp => Box::new(crate::rtp::RtpModule::new(crate::rtp::VIDEO_CLOCK_HZ)),
        ProtocolId::Vat => Box::new(crate::vat::VatModule::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::time::MediaTime;

    struct DefaultModule;
    impl ProtocolModule for DefaultModule {
        fn id(&self) -> ProtocolId {
            ProtocolId::ConstantRate
        }
        fn on_record(
            &mut self,
            kind: PacketKind,
            payload: &[u8],
            arrival_us: u64,
        ) -> Result<Option<RecordedPacket>> {
            Ok(Some(RecordedPacket {
                record: PacketRecord {
                    offset: MediaTime(arrival_us),
                    kind,
                    payload: payload.to_vec(),
                },
            }))
        }
    }

    #[test]
    fn default_on_play_routes_by_kind() {
        let mut m = DefaultModule;
        let media = PacketRecord::media(MediaTime::ZERO, vec![1]);
        let ctrl = PacketRecord::control(MediaTime::ZERO, vec![2]);
        let eos = PacketRecord {
            offset: MediaTime::ZERO,
            kind: PacketKind::EndOfStream,
            payload: vec![],
        };
        assert_eq!(m.on_play(&media).unwrap(), PlaybackClass::Media);
        assert_eq!(m.on_play(&ctrl).unwrap(), PlaybackClass::Control);
        assert_eq!(m.on_play(&eos).unwrap(), PlaybackClass::Drop);
    }

    #[test]
    fn registry_returns_matching_module() {
        for id in ProtocolId::ALL {
            let m = registry(id, Some(BitRate::from_kbps(1500)));
            assert_eq!(m.id(), id);
        }
    }
}
