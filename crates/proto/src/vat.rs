//! The VAT audio protocol module.
//!
//! VAT was the MBone audioconferencing tool; Calliope records its
//! packet stream directly (paper §2.1 lists a VAT audio content type).
//! We implement the classic 8-byte VAT packet header: flags, a
//! conference id, and a 32-bit media timestamp. As with RTP, the module
//! derives delivery times from the sender timestamp so stored schedules
//! are free of network jitter.

use crate::module::{ProtocolModule, RecordedPacket};
use crate::record::PacketRecord;
use crate::schedule::ScheduleBuilder;
use calliope_types::content::ProtocolId;
use calliope_types::error::{Error, Result};
use calliope_types::wire::data::PacketKind;

/// VAT's fixed header length in bytes.
pub const VAT_HEADER_LEN: usize = 8;

/// The VAT audio clock rate: 8 kHz PCM.
pub const AUDIO_CLOCK_HZ: u32 = 8_000;

/// A parsed VAT packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VatHeader {
    /// Protocol flags (we only validate that the "hidden" bits are sane).
    pub flags: u8,
    /// Audio format tag.
    pub format: u8,
    /// Conference identifier.
    pub conf_id: u16,
    /// Media timestamp in 8 kHz ticks.
    pub timestamp: u32,
}

impl VatHeader {
    /// Serializes the 8-byte header.
    pub fn to_bytes(&self) -> [u8; VAT_HEADER_LEN] {
        let mut b = [0u8; VAT_HEADER_LEN];
        b[0] = self.flags;
        b[1] = self.format;
        b[2..4].copy_from_slice(&self.conf_id.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b
    }

    /// Parses a header from the front of a VAT packet.
    pub fn parse(buf: &[u8]) -> Result<VatHeader> {
        if buf.len() < VAT_HEADER_LEN {
            return Err(Error::Protocol {
                msg: format!("vat packet too short: {} bytes", buf.len()),
            });
        }
        Ok(VatHeader {
            flags: buf[0],
            format: buf[1],
            conf_id: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }
}

/// The VAT protocol module.
pub struct VatModule {
    schedule: ScheduleBuilder,
    last_offset_us: u64,
    dropped: u64,
}

impl VatModule {
    /// Creates a fresh module.
    pub fn new() -> Self {
        VatModule {
            schedule: ScheduleBuilder::new(),
            last_offset_us: 0,
            dropped: 0,
        }
    }

    /// Packets dropped because their header failed to parse.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for VatModule {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtocolModule for VatModule {
    fn id(&self) -> ProtocolId {
        ProtocolId::Vat
    }

    fn on_record(
        &mut self,
        kind: PacketKind,
        payload: &[u8],
        _arrival_us: u64,
    ) -> Result<Option<RecordedPacket>> {
        match kind {
            PacketKind::Media => {
                let header = match VatHeader::parse(payload) {
                    Ok(h) => h,
                    Err(_) => {
                        self.dropped += 1;
                        return Ok(None);
                    }
                };
                // 8 kHz ticks → microseconds. Audio sessions are short
                // enough that 32-bit tick wraps (149 hours) are out of
                // scope; the schedule builder clamps if one ever occurs.
                let raw_us = header.timestamp as u64 * 1_000_000 / AUDIO_CLOCK_HZ as u64;
                let offset = self.schedule.push(raw_us);
                self.last_offset_us = offset.as_micros();
                Ok(Some(RecordedPacket {
                    record: PacketRecord::media(offset, payload.to_vec()),
                }))
            }
            PacketKind::Control => Ok(Some(RecordedPacket {
                record: PacketRecord::control(
                    calliope_types::time::MediaTime(self.last_offset_us),
                    payload.to_vec(),
                ),
            })),
            PacketKind::EndOfStream => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vat_packet(timestamp: u32, body: &[u8]) -> Vec<u8> {
        let mut pkt = VatHeader {
            flags: 0,
            format: 1,
            conf_id: 7,
            timestamp,
        }
        .to_bytes()
        .to_vec();
        pkt.extend_from_slice(body);
        pkt
    }

    #[test]
    fn header_round_trip() {
        let h = VatHeader {
            flags: 0x80,
            format: 3,
            conf_id: 0x1234,
            timestamp: 0xCAFEBABE,
        };
        assert_eq!(VatHeader::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn delivery_time_uses_audio_clock() {
        let mut m = VatModule::new();
        let a = m
            .on_record(PacketKind::Media, &vat_packet(0, &[0; 160]), 0)
            .unwrap()
            .unwrap();
        // 160 ticks at 8 kHz = 20 ms: the classic audio packetization.
        let b = m
            .on_record(PacketKind::Media, &vat_packet(160, &[0; 160]), 1)
            .unwrap()
            .unwrap();
        assert_eq!(a.record.offset.as_micros(), 0);
        assert_eq!(b.record.offset.as_micros(), 20_000);
    }

    #[test]
    fn short_packet_is_dropped() {
        let mut m = VatModule::new();
        assert!(m
            .on_record(PacketKind::Media, &[1, 2], 0)
            .unwrap()
            .is_none());
        assert_eq!(m.dropped(), 1);
    }

    #[test]
    fn control_packets_are_interleaved() {
        let mut m = VatModule::new();
        m.on_record(PacketKind::Media, &vat_packet(800, &[]), 0)
            .unwrap();
        m.on_record(PacketKind::Media, &vat_packet(1600, &[]), 1)
            .unwrap();
        let c = m
            .on_record(PacketKind::Control, b"id string", 2)
            .unwrap()
            .unwrap();
        assert_eq!(c.record.kind, PacketKind::Control);
        assert_eq!(c.record.offset.as_micros(), 100_000);
    }

    #[test]
    fn first_packet_defines_time_zero() {
        let mut m = VatModule::new();
        // Sender's clock starts at an arbitrary large value.
        let a = m
            .on_record(PacketKind::Media, &vat_packet(4_000_000, &[]), 0)
            .unwrap()
            .unwrap();
        assert_eq!(a.record.offset.as_micros(), 0);
        let b = m
            .on_record(PacketKind::Media, &vat_packet(4_000_080, &[]), 1)
            .unwrap()
            .unwrap();
        assert_eq!(b.record.offset.as_micros(), 10_000);
    }
}
