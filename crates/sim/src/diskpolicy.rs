//! Disk-head scheduling policies — the §2.3.3 elevator comparison.
//!
//! "The current implementation of the MSU does not employ disk head
//! scheduling. The MSU services the customers for each disk in a
//! round-robin fashion, resulting in random seeks between disk
//! transfers. … Using a simple program that simulated 24 concurrent
//! users reading random 256 KByte disk blocks, we found that an
//! elevator scheduling algorithm improves throughput by only about 6%
//! for our disks." (paper §2.3.3)
//!
//! This module is that simple program: `users` closed-loop readers, one
//! outstanding random 256 KB request each, served either in round-robin
//! order or by an elevator (SCAN). The gain is small because rotation,
//! settling, and the 50 ms media transfer dwarf the seek component —
//! exactly the paper's argument.

use crate::machine::DiskParams;
use calliope_storage::elevator::ElevatorState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Head-scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Serve users in fixed round-robin order (the MSU's duty cycle):
    /// effectively random seeks.
    RoundRobin,
    /// SCAN: sweep the head across the disk, serving the nearest
    /// pending request in the current direction.
    Elevator,
}

/// Result of one policy run.
#[derive(Clone, Copy, Debug)]
pub struct PolicyResult {
    /// Sustained throughput, MB/s.
    pub mb_s: f64,
    /// Mean seek distance, positions.
    pub mean_seek_distance: f64,
    /// Mean service time, ms.
    pub mean_service_ms: f64,
    /// Transfers completed.
    pub transfers: u64,
}

/// Simulates `users` concurrent readers of random `block_bytes` blocks
/// for `secs` seconds under `policy`.
pub fn simulate(
    disk: DiskParams,
    users: usize,
    block_bytes: u64,
    policy: Policy,
    secs: u64,
    seed: u64,
) -> PolicyResult {
    assert!(users > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // One pending request position per user.
    let mut pending: Vec<u64> = (0..users)
        .map(|_| rng.gen_range(0..disk.positions))
        .collect();
    // The elevator state is the shared implementation the real MSU disk
    // process batches with; here it picks one request at a time.
    let mut elevator = ElevatorState::new();
    let mut rr = 0usize;

    let horizon_ms = secs as f64 * 1_000.0;
    let mut now_ms = 0.0;
    let mut transfers = 0u64;
    let mut seek_sum = 0u64;

    while now_ms < horizon_ms {
        let head_before = elevator.head;
        let idx = match policy {
            Policy::RoundRobin => {
                let i = rr;
                rr = (rr + 1) % users;
                i
            }
            // Nearest request in the sweep direction; reverse at the end
            // of the stroke. `next` also moves the head to the request.
            Policy::Elevator => elevator.next(&pending).expect("requests always pending"),
        };
        let pos = pending[idx];
        let dist = head_before.abs_diff(pos);
        seek_sum += dist;
        let service = disk.seek_ms(dist)
            + rng.gen_range(0.0..2.0 * disk.avg_rotation_ms())
            + disk.transfer_ms(block_bytes)
            + disk.overhead_ms;
        now_ms += service;
        elevator.head = pos; // round-robin moves the head by hand
        transfers += 1;
        // Closed loop: the user immediately asks for another block.
        pending[idx] = rng.gen_range(0..disk.positions);
    }

    PolicyResult {
        mb_s: transfers as f64 * block_bytes as f64 / 1e6 / (now_ms / 1_000.0),
        mean_seek_distance: seek_sum as f64 / transfers as f64,
        mean_service_ms: now_ms / transfers as f64,
        transfers,
    }
}

/// Runs both policies and returns `(round_robin, elevator, gain)` where
/// `gain` is the elevator's fractional throughput improvement.
pub fn compare(
    disk: DiskParams,
    users: usize,
    block_bytes: u64,
    secs: u64,
    seed: u64,
) -> (PolicyResult, PolicyResult, f64) {
    let rr = simulate(disk, users, block_bytes, Policy::RoundRobin, secs, seed);
    let el = simulate(disk, users, block_bytes, Policy::Elevator, secs, seed);
    let gain = el.mb_s / rr.mb_s - 1.0;
    (rr, el, gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: u64 = 256 * 1024;

    #[test]
    fn elevator_gain_is_about_six_percent() {
        let (rr, el, gain) = compare(DiskParams::default(), 24, BLOCK, 120, 1);
        assert!(
            (0.02..0.12).contains(&gain),
            "elevator gain {:.1}% (paper: ~6%); rr={:.2} el={:.2}",
            gain * 100.0,
            rr.mb_s,
            el.mb_s
        );
    }

    #[test]
    fn elevator_shortens_seeks_dramatically() {
        let (rr, el, _) = compare(DiskParams::default(), 24, BLOCK, 60, 2);
        // With 24 queued requests SCAN's next-in-direction hop is ~D/24
        // vs ~D/3 for random order.
        assert!(
            el.mean_seek_distance < rr.mean_seek_distance / 4.0,
            "elevator {:.0} vs rr {:.0}",
            el.mean_seek_distance,
            rr.mean_seek_distance
        );
    }

    #[test]
    fn gain_stays_small_because_transfer_dominates() {
        // The whole point of large blocks (paper §2.3.3): even with all
        // seek time eliminated, throughput is bounded by rotation +
        // transfer + overhead.
        let d = DiskParams::default();
        let (rr, el, _) = compare(d, 24, BLOCK, 60, 3);
        let no_seek_service = d.avg_rotation_ms() + d.transfer_ms(BLOCK) + d.overhead_ms;
        let upper_bound = BLOCK as f64 / 1e6 / (no_seek_service / 1_000.0);
        assert!(el.mb_s < upper_bound);
        assert!(rr.mb_s > upper_bound * 0.8, "rr already close to the cap");
    }

    #[test]
    fn more_users_help_the_elevator() {
        let (_, _, gain2) = compare(DiskParams::default(), 2, BLOCK, 60, 4);
        let (_, _, gain24) = compare(DiskParams::default(), 24, BLOCK, 60, 4);
        assert!(gain24 > gain2, "24 users {gain24:.3} vs 2 users {gain2:.3}");
    }

    #[test]
    fn small_blocks_make_scheduling_matter() {
        // With 8 KB blocks the seek dominates, so the elevator's edge is
        // far larger — the flip side of the paper's design choice.
        let (_, _, gain_small) = compare(DiskParams::default(), 24, 8 * 1024, 60, 5);
        let (_, _, gain_big) = compare(DiskParams::default(), 24, BLOCK, 60, 5);
        assert!(
            gain_small > 2.0 * gain_big,
            "8KB gain {gain_small:.2} vs 256KB gain {gain_big:.2}"
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate(DiskParams::default(), 24, BLOCK, Policy::Elevator, 10, 6);
        let b = simulate(DiskParams::default(), 24, BLOCK, Policy::Elevator, 10, 6);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.mb_s, b.mb_s);
    }
}
