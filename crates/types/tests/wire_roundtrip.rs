//! Property tests: every control-plane message round-trips through the
//! wire codec for *arbitrary* field values, and the decoders never
//! panic on garbage. These complement the unit round trips in the
//! module tests by generating the message structures themselves.

use calliope_types::content::{ContentKind, ContentTypeSpec, ProtocolId, TypeBody};
use calliope_types::time::{BitRate, ByteRate, MediaTime};
use calliope_types::trace::{SpanKind, TraceCtx};
use calliope_types::wire::messages::*;
use calliope_types::wire::Wire;
use calliope_types::{DiskId, GroupId, MsuId, SessionId, StreamId, VcrCommand};
use proptest::prelude::*;
use std::net::SocketAddr;

fn arb_trace() -> impl Strategy<Value = TraceCtx> {
    (
        any::<u64>(),
        prop_oneof![
            Just(SpanKind::None),
            Just(SpanKind::Play),
            Just(SpanKind::Record),
            Just(SpanKind::Failover),
        ],
    )
        .prop_map(|(id, kind)| TraceCtx { id, kind })
}

fn arb_addr() -> impl Strategy<Value = SocketAddr> {
    prop_oneof![
        (any::<[u8; 4]>(), any::<u16>())
            .prop_map(|(ip, port)| { SocketAddr::new(std::net::IpAddr::V4(ip.into()), port) }),
        (any::<[u8; 16]>(), any::<u16>())
            .prop_map(|(ip, port)| { SocketAddr::new(std::net::IpAddr::V6(ip.into()), port) }),
    ]
}

fn arb_protocol() -> impl Strategy<Value = ProtocolId> {
    prop_oneof![
        Just(ProtocolId::ConstantRate),
        Just(ProtocolId::Rtp),
        Just(ProtocolId::Vat),
    ]
}

fn arb_type_spec() -> impl Strategy<Value = ContentTypeSpec> {
    let atomic = (
        any::<String>(),
        arb_protocol(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(name, protocol, a, b, constant)| ContentTypeSpec {
            name,
            body: TypeBody::Atomic {
                protocol,
                kind: if constant {
                    ContentKind::Constant { rate: BitRate(a) }
                } else {
                    ContentKind::Variable {
                        bandwidth: BitRate(a),
                        storage: ByteRate(b),
                    }
                },
            },
        });
    let composite = (
        any::<String>(),
        proptest::collection::vec(any::<String>(), 0..4),
    )
        .prop_map(|(name, components)| ContentTypeSpec {
            name,
            body: TypeBody::Composite { components },
        });
    prop_oneof![atomic, composite]
}

fn arb_vcr() -> impl Strategy<Value = VcrCommand> {
    prop_oneof![
        Just(VcrCommand::Play),
        Just(VcrCommand::Pause),
        any::<u64>().prop_map(|us| VcrCommand::Seek(MediaTime(us))),
        Just(VcrCommand::FastForward),
        Just(VcrCommand::FastBackward),
        Just(VcrCommand::Quit),
    ]
}

fn arb_done_reason() -> impl Strategy<Value = DoneReason> {
    prop_oneof![
        Just(DoneReason::Completed),
        Just(DoneReason::ClientQuit),
        Just(DoneReason::Cancelled),
        Just(DoneReason::MsuShutdown),
        any::<String>().prop_map(DoneReason::Error),
        any::<String>().prop_map(DoneReason::IoError),
    ]
}

fn arb_client_request() -> impl Strategy<Value = ClientRequest> {
    prop_oneof![
        (any::<String>(), any::<bool>())
            .prop_map(|(client_name, admin)| ClientRequest::Hello { client_name, admin }),
        Just(ClientRequest::ListContent),
        Just(ClientRequest::ListTypes),
        (any::<String>(), any::<String>(), arb_addr(), arb_addr()).prop_map(
            |(name, type_name, data_addr, ctrl_addr)| ClientRequest::RegisterPort {
                name,
                type_name,
                data_addr,
                ctrl_addr,
            }
        ),
        (
            any::<String>(),
            any::<String>(),
            proptest::collection::vec(any::<String>(), 0..4)
        )
            .prop_map(|(name, type_name, components)| {
                ClientRequest::RegisterCompositePort {
                    name,
                    type_name,
                    components,
                }
            }),
        any::<String>().prop_map(|name| ClientRequest::UnregisterPort { name }),
        (any::<String>(), any::<String>())
            .prop_map(|(content, port)| ClientRequest::Play { content, port }),
        (
            any::<String>(),
            any::<String>(),
            any::<String>(),
            any::<u32>()
        )
            .prop_map(
                |(content, port, type_name, est_secs)| ClientRequest::Record {
                    content,
                    port,
                    type_name,
                    est_secs,
                }
            ),
        any::<String>().prop_map(|content| ClientRequest::Delete { content }),
        arb_type_spec().prop_map(|spec| ClientRequest::AddType { spec }),
        (any::<String>(), any::<String>(), any::<String>()).prop_map(|(content, ff, fb)| {
            ClientRequest::AttachTrick {
                content,
                files: TrickFiles {
                    fast_forward: ff,
                    fast_backward: fb,
                },
            }
        }),
        any::<String>().prop_map(|content| ClientRequest::Replicate { content }),
        Just(ClientRequest::ClusterStats),
        Just(ClientRequest::Bye),
    ]
}

fn arb_coord_to_msu() -> impl Strategy<Value = CoordToMsu> {
    let pacing = prop_oneof![
        (any::<u64>(), 1u32..1_000_000).prop_map(|(bps, packet_bytes)| PacingSpec::Constant {
            rate: BitRate(bps),
            packet_bytes,
        }),
        Just(PacingSpec::Stored),
    ];
    prop_oneof![
        (any::<u64>(), proptest::collection::vec(any::<u64>(), 0..5)).prop_map(|(m, d)| {
            CoordToMsu::RegisterAck {
                msu: MsuId(m),
                disk_ids: d.into_iter().map(DiskId).collect(),
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<String>(),
            arb_protocol(),
            pacing,
            arb_addr(),
            arb_addr(),
            proptest::option::of((any::<String>(), any::<String>())),
            arb_trace(),
        )
            .prop_map(
                |(s, g, gs, d, file, protocol, pacing, a, b, trick, trace)| {
                    CoordToMsu::ScheduleRead {
                        stream: StreamId(s),
                        group: GroupId(g),
                        group_size: gs,
                        disk: DiskId(d),
                        file,
                        protocol,
                        pacing,
                        client_data: a,
                        client_ctrl: b,
                        trick: trick.map(|(ff, fb)| TrickFiles {
                            fast_forward: ff,
                            fast_backward: fb,
                        }),
                        trace,
                    }
                }
            ),
        any::<u64>().prop_map(|s| CoordToMsu::Cancel {
            stream: StreamId(s)
        }),
        (any::<u64>(), any::<u64>(), any::<String>()).prop_map(|(a, b, file)| {
            CoordToMsu::CopyFile {
                src_disk: DiskId(a),
                dst_disk: DiskId(b),
                file,
            }
        }),
        (any::<u64>(), any::<String>()).prop_map(|(d, file)| CoordToMsu::DeleteFile {
            disk: DiskId(d),
            file
        }),
        Just(CoordToMsu::Ping),
        Just(CoordToMsu::Shutdown),
    ]
}

fn arb_msu_to_coord() -> impl Strategy<Value = MsuToCoord> {
    prop_oneof![
        (
            arb_addr(),
            proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..4),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(|(ctrl_addr, disks, previous)| MsuToCoord::Register {
                ctrl_addr,
                disks: disks
                    .into_iter()
                    .map(|(c, f, b)| DiskReport {
                        capacity_bytes: c,
                        free_bytes: f,
                        bandwidth: ByteRate(b),
                    })
                    .collect(),
                previous: previous.map(MsuId),
            }),
        proptest::option::of(any::<String>()).prop_map(|error| MsuToCoord::ReadScheduled { error }),
        (
            proptest::option::of(arb_addr()),
            proptest::option::of(any::<String>())
        )
            .prop_map(|(udp_sink, error)| MsuToCoord::WriteScheduled { udp_sink, error }),
        (
            any::<u64>(),
            arb_done_reason(),
            any::<u64>(),
            any::<u64>(),
            arb_trace()
        )
            .prop_map(
                |(s, reason, bytes, duration_us, trace)| MsuToCoord::StreamDone {
                    stream: StreamId(s),
                    reason,
                    bytes,
                    duration_us,
                    trace,
                }
            ),
        Just(MsuToCoord::Pong { snapshot: None }),
        proptest::option::of(any::<String>()).prop_map(|error| MsuToCoord::FileDeleted { error }),
        proptest::option::of(any::<String>()).prop_map(|error| MsuToCoord::FileCopied { error }),
    ]
}

fn arb_coord_reply() -> impl Strategy<Value = CoordReply> {
    prop_oneof![
        any::<u64>().prop_map(|s| CoordReply::Welcome {
            session: SessionId(s)
        }),
        Just(CoordReply::Ok),
        Just(CoordReply::Queued),
        (
            any::<u64>(),
            proptest::collection::vec(
                (any::<u64>(), any::<String>(), any::<u64>(), arb_trace()),
                0..4
            )
        )
            .prop_map(|(g, streams)| CoordReply::PlayStarted {
                group: GroupId(g),
                streams: streams
                    .into_iter()
                    .map(|(s, port_name, m, trace)| StreamStart {
                        stream: StreamId(s),
                        port_name,
                        msu: MsuId(m),
                        trace,
                    })
                    .collect(),
            }),
        (any::<u16>(), any::<String>()).prop_map(|(code, msg)| CoordReply::Error { code, msg }),
        proptest::collection::vec(arb_type_spec(), 0..4)
            .prop_map(|types| CoordReply::TypeList { types }),
    ]
}

/// The heartbeat and fault-reporting messages round-trip exactly: the
/// Coordinator's liveness probe (`Ping`/`Pong`) and the disk-failure
/// stream ending (`StreamDone { reason: IoError }`) that triggers
/// replica failover.
#[test]
fn heartbeat_and_io_error_round_trip() {
    let ping = CoordEnvelope {
        req_id: 42,
        body: CoordToMsu::Ping,
    };
    assert_eq!(CoordEnvelope::from_bytes(&ping.to_bytes()).unwrap(), ping);

    let pong = MsuEnvelope {
        req_id: 42,
        body: MsuToCoord::Pong { snapshot: None },
    };
    assert_eq!(MsuEnvelope::from_bytes(&pong.to_bytes()).unwrap(), pong);

    let done = MsuEnvelope {
        req_id: 0,
        body: MsuToCoord::StreamDone {
            stream: StreamId(7),
            reason: DoneReason::IoError("read failed: injected fault".into()),
            bytes: 1024,
            duration_us: 5_000_000,
            trace: TraceCtx::new(9, SpanKind::Play),
        },
    };
    assert_eq!(MsuEnvelope::from_bytes(&done.to_bytes()).unwrap(), done);
}

/// The trace context survives every message that carries it, and the
/// failover continuation keeps the id while switching span kind.
#[test]
fn trace_ctx_fields_round_trip() {
    let trace = TraceCtx::new(0x1122_3344_5566_7788, SpanKind::Play);
    let start = StreamStart {
        stream: StreamId(1),
        port_name: "tv".into(),
        msu: MsuId(2),
        trace,
    };
    assert_eq!(StreamStart::from_bytes(&start.to_bytes()).unwrap(), start);

    let ready = MsuToClient::GroupReady {
        group: GroupId(3),
        streams: vec![StreamId(1)],
        trace: trace.into_failover(),
    };
    let back = MsuToClient::from_bytes(&ready.to_bytes()).unwrap();
    assert_eq!(back, ready);
    let MsuToClient::GroupReady { trace: got, .. } = back else {
        unreachable!()
    };
    assert_eq!(got.id, trace.id, "failover keeps the trace id");
    assert_eq!(got.kind, SpanKind::Failover);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn client_requests_round_trip(req in arb_client_request()) {
        let bytes = req.to_bytes();
        prop_assert_eq!(ClientRequest::from_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn coord_replies_round_trip(reply in arb_coord_reply()) {
        let bytes = reply.to_bytes();
        prop_assert_eq!(CoordReply::from_bytes(&bytes).unwrap(), reply);
    }

    #[test]
    fn coord_to_msu_round_trips(body in arb_coord_to_msu(), req_id in any::<u64>()) {
        let env = CoordEnvelope { req_id, body };
        let bytes = env.to_bytes();
        prop_assert_eq!(CoordEnvelope::from_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn msu_to_coord_round_trips(body in arb_msu_to_coord(), req_id in any::<u64>()) {
        let env = MsuEnvelope { req_id, body };
        let bytes = env.to_bytes();
        prop_assert_eq!(MsuEnvelope::from_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn vcr_messages_round_trip(g in any::<u64>(), cmd in arb_vcr()) {
        let msg = ClientToMsu::Vcr { group: GroupId(g), cmd };
        let bytes = msg.to_bytes();
        prop_assert_eq!(ClientToMsu::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncation_never_panics(req in arb_client_request(), cut_ratio in 0.0f64..1.0) {
        let bytes = req.to_bytes();
        let cut = (bytes.len() as f64 * cut_ratio) as usize;
        let _ = ClientRequest::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn single_byte_corruption_never_panics(body in arb_coord_to_msu(), pos_ratio in 0.0f64..1.0, flip in 1u8..=255) {
        let env = CoordEnvelope { req_id: 1, body };
        let mut bytes = env.to_bytes();
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_ratio) as usize;
            bytes[pos] ^= flip;
            // May decode to something else or fail; must never panic.
            let _ = CoordEnvelope::from_bytes(&bytes);
        }
    }
}
