//! Strongly-typed identifiers used throughout Calliope.
//!
//! Every entity that crosses a component boundary (client, Coordinator,
//! MSU) is named by a small-integer identifier. Newtypes keep the different
//! id spaces from being mixed up at compile time, and a shared
//! [`IdAllocator`] hands out fresh values on the Coordinator.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw integer value of this identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifies a client known to the Coordinator.
    ClientId,
    "client-"
);
define_id!(
    /// Identifies one client-Coordinator session.
    ///
    /// Display ports are scoped to a session: when the session drops, the
    /// Coordinator deallocates its local representation of the ports.
    SessionId,
    "session-"
);
define_id!(
    /// Identifies one real-time stream being played or recorded by an MSU.
    StreamId,
    "stream-"
);
define_id!(
    /// Identifies a Multimedia Storage Unit.
    MsuId,
    "msu-"
);
define_id!(
    /// Identifies a disk within an MSU.
    ///
    /// Disk ids are global (allocated by the Coordinator when the MSU
    /// registers), so a (content, disk) pair pins a replica.
    DiskId,
    "disk-"
);
define_id!(
    /// Identifies an item of content in the Coordinator's catalog.
    ContentId,
    "content-"
);
define_id!(
    /// Identifies a registered display port within a session.
    PortId,
    "port-"
);
define_id!(
    /// Identifies a stream group.
    ///
    /// All streams playing the components of one composite content item
    /// belong to the same group and are controlled by the same VCR
    /// commands; the Coordinator schedules the whole group on one MSU.
    GroupId,
    "group-"
);

/// A monotonically increasing allocator for one id space.
///
/// Thread-safe; ids start at 1 so that 0 can be used as a sentinel (for
/// example, request id 0 marks unsolicited MSU notifications on the
/// Coordinator-MSU connection).
#[derive(Debug)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// Creates an allocator whose first id is 1.
    pub const fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// Returns a fresh raw id.
    pub fn next_raw(&self) -> u64 {
        // relaxed: uniqueness is all that matters; ids carry no
        // happens-before obligations.
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a fresh id of the requested newtype.
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }
}

impl Default for IdAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(StreamId(7).to_string(), "stream-7");
        assert_eq!(format!("{:?}", MsuId(3)), "msu-3");
        assert_eq!(DiskId(12).raw(), 12);
    }

    #[test]
    fn allocator_starts_at_one_and_is_monotonic() {
        let a = IdAllocator::new();
        let first: StreamId = a.next();
        let second: StreamId = a.next();
        assert_eq!(first, StreamId(1));
        assert_eq!(second, StreamId(2));
    }

    #[test]
    fn allocator_is_unique_across_threads() {
        let a = Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| a.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ContentId(1) < ContentId(2));
        assert!(GroupId(10) > GroupId(9));
    }
}
