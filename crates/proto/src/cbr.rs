//! The constant-rate protocol module.
//!
//! Calliope supports "any protocol and/or encoding which can be handled
//! by transmitting fixed sized packets at a constant rate" (paper
//! §2.3.2) — the mode used for raw MPEG-1 delivered to a dumb set-top
//! decoder. The stream is opaque: the MSU never parses MPEG (the paper
//! stresses that real-time MPEG parsing is too expensive). Delivery
//! schedules are calculated, not stored, so on recording this module
//! simply stamps packets with their arrival time; the storage layer
//! concatenates the payloads into a raw file.

use crate::module::{ProtocolModule, RecordedPacket};
use crate::record::PacketRecord;
use crate::schedule::ScheduleBuilder;
use calliope_types::content::ProtocolId;
use calliope_types::error::Result;
use calliope_types::time::BitRate;
use calliope_types::wire::data::PacketKind;

/// The constant-rate module.
pub struct CbrModule {
    /// Nominal stream rate, used only for diagnostics (actual pacing is
    /// the sender's business; the computed schedule governs playback).
    rate: Option<BitRate>,
    schedule: ScheduleBuilder,
    bytes: u64,
}

impl CbrModule {
    /// Creates a module; the rate is optional and informational.
    pub fn new(rate: Option<BitRate>) -> Self {
        CbrModule {
            rate,
            schedule: ScheduleBuilder::new(),
            bytes: 0,
        }
    }

    /// The nominal rate, if one was configured.
    pub fn rate(&self) -> Option<BitRate> {
        self.rate
    }

    /// Total media bytes recorded through this module.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl ProtocolModule for CbrModule {
    fn id(&self) -> ProtocolId {
        ProtocolId::ConstantRate
    }

    fn on_record(
        &mut self,
        kind: PacketKind,
        payload: &[u8],
        arrival_us: u64,
    ) -> Result<Option<RecordedPacket>> {
        match kind {
            PacketKind::Media => {
                // No protocol timestamp exists; arrival time is the best
                // available delivery time (paper §2.3.2's default).
                let offset = self.schedule.push(arrival_us);
                self.bytes += payload.len() as u64;
                Ok(Some(RecordedPacket {
                    record: PacketRecord::media(offset, payload.to_vec()),
                }))
            }
            // A constant-rate stream has no control messages; drop them.
            PacketKind::Control | PacketKind::EndOfStream => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_times_become_offsets() {
        let mut m = CbrModule::new(Some(BitRate::from_kbps(1500)));
        let a = m
            .on_record(PacketKind::Media, &[0u8; 4096], 50_000)
            .unwrap()
            .unwrap();
        let b = m
            .on_record(PacketKind::Media, &[0u8; 4096], 71_845)
            .unwrap()
            .unwrap();
        assert_eq!(a.record.offset.as_micros(), 0);
        assert_eq!(b.record.offset.as_micros(), 21_845);
        assert_eq!(m.bytes(), 8192);
    }

    #[test]
    fn control_packets_are_ignored() {
        let mut m = CbrModule::new(None);
        assert!(m
            .on_record(PacketKind::Control, b"noise", 0)
            .unwrap()
            .is_none());
        assert!(m
            .on_record(PacketKind::EndOfStream, &[], 0)
            .unwrap()
            .is_none());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn rate_is_reported() {
        assert_eq!(
            CbrModule::new(Some(BitRate::from_mbps(2))).rate(),
            Some(BitRate::from_mbps(2))
        );
        assert_eq!(CbrModule::new(None).rate(), None);
    }
}
