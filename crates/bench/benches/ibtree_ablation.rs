//! E8 — §2.2.1: the Integrated B-tree's design accounting.
//!
//! "We use 28 KByte internal pages (with 1024 keys) and 256 KByte data
//! pages. … internal pages … are so small and only appear in 0.1% of
//! the data pages so they do not affect read bandwidth appreciably. On
//! writes, the IB-tree writes both data page and internal page using a
//! single disk transfer and seek. If the two pages were stored
//! separately, the internal page writes would add slots to Calliope's
//! disk duty cycle and the extra seeks would reduce disk utilization."

use calliope_bench::banner;
use calliope_proto::record::PacketRecord;
use calliope_sim::machine::DiskParams;
use calliope_storage::ibtree::IbTreeWriter;
use calliope_storage::page::Geometry;
use calliope_types::time::MediaTime;

fn build(duration_mins: u64) -> (u64, u64, u64, u64) {
    // NV-like recording: ~1 KB packets every ~12 ms ≈ 680 kbit/s.
    let geo = Geometry::paper();
    let mut w = IbTreeWriter::new(geo).expect("geometry");
    let mut pages = 0u64;
    let packets = duration_mins * 60 * 1_000_000 / 12_000;
    for i in 0..packets {
        let rec = PacketRecord::media(MediaTime(i * 12_000), vec![0u8; 1000]);
        if w.push(&rec).expect("push").is_some() {
            pages += 1;
        }
    }
    let (finals, root, stats) = w.finish().expect("finish");
    pages += finals.len() as u64;
    (
        pages,
        stats.internal_pages,
        stats.records,
        root.len() as u64,
    )
}

fn main() {
    banner(
        "E8",
        "IB-tree: integrated vs. separate internal pages",
        "§2.2.1",
    );
    let disk = DiskParams::default();
    let geo = Geometry::paper();

    println!(
        "{:>10} | {:>9} {:>10} {:>10} | {:>12} {:>14}",
        "recording", "pages", "internal", "records", "%pages w/idx", "root entries"
    );
    println!("{}", "-".repeat(78));
    for mins in [10u64, 30, 120] {
        let (pages, internal, records, root) = build(mins);
        println!(
            "{:>7} min | {:>9} {:>10} {:>10} | {:>11.2}% {:>14}",
            mins,
            pages,
            internal,
            records,
            internal as f64 * 100.0 / pages as f64,
            root
        );
    }
    println!("  (paper: internal pages appear in ~0.1% of data pages)");
    println!();

    // Write-side cost of the *separate* layout: every internal page
    // becomes an extra small transfer with its own seek+rotation.
    let (pages, internal, _, _) = build(30);
    let data_io_ms = disk.expected_service_ms(geo.page_size as u64);
    let internal_io_ms = disk.expected_service_ms(geo.internal_size as u64);
    let integrated_ms = pages as f64 * data_io_ms;
    let separate_ms = pages as f64 * data_io_ms + internal as f64 * internal_io_ms;
    println!("write cost of a 30-minute recording (expected duty-cycle time):");
    println!(
        "  integrated: {pages} transfers           = {:.1} s of disk time",
        integrated_ms / 1000.0
    );
    println!(
        "  separate:   {pages} + {internal} transfers = {:.1} s of disk time ({:+.2}%)",
        separate_ms / 1000.0,
        (separate_ms / integrated_ms - 1.0) * 100.0
    );
    println!(
        "  each separate internal write costs a {:.0} ms slot (seek+rotation dominate a 28 KB transfer)",
        internal_io_ms
    );
    println!();

    // Read-side overhead of carrying embedded internals on sequential
    // scans.
    let carried = internal as f64 * geo.internal_size as f64;
    let total = pages as f64 * geo.page_size as f64;
    println!("read-bandwidth overhead of embedded internal pages on sequential scans:");
    println!(
        "  {:.0} KB carried in {:.0} MB = {:.3}% (paper: \"do not affect read bandwidth appreciably\")",
        carried / 1024.0,
        total / 1e6,
        carried * 100.0 / total
    );
    println!();

    // Seek cost: a VCR seek reads root (cached) → 1 hosting page → 1
    // data page.
    println!("VCR seek cost: root is in cached metadata; 1 page read for the");
    println!(
        "internal page + 1 for the data page ≈ {:.0} ms — well inside the",
        2.0 * data_io_ms
    );
    println!("paper's \"few seconds of delay\" budget for trick-mode switches.");
}
