//! MSU assembly: disks, threads, and the Coordinator protocol.
//!
//! [`MsuServer::start`] builds the whole unit: it opens (or formats)
//! the file-backed disks, spawns one disk thread per disk plus the
//! network thread and the event loop, dials the Coordinator, registers
//! its disks, and then executes scheduling requests until shut down.
//! If the Coordinator connection breaks, the MSU keeps serving its
//! streams and re-registers (with its previous identity) once the
//! Coordinator is reachable again — the paper's §2.2 fault-tolerance
//! behaviour.

use crate::config::MsuConfig;
use crate::control::{run_group_ctrl, GroupInfo, ServerShared, StreamInfo};
use crate::disk::{self, DiskCmd, DiskEvent, TrickNames};
use crate::metrics::MsuMetrics;
use crate::net::{self, NetCmd, NetEvent};
use crate::spsc;
use crate::stream::{ActiveFile, GroupShared, StreamCtl, StreamPhase, StreamShared};
use crate::trick::TrickMode;
use calliope_obs::{FlightCode, FlightRecorder};
use calliope_proto::module::registry as proto_registry;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::catalog::FileKind;
use calliope_storage::page::Geometry;
use calliope_storage::{BlockDevice, FaultControl, FaultyDisk, FileDisk, MsuFs, BLOCK_SIZE};
use calliope_types::error::{Error, Result};
use calliope_types::time::ByteRate;
use calliope_types::wire::messages::{
    CoordEnvelope, CoordToMsu, DiskReport, DoneReason, MsuEnvelope, MsuToClient, MsuToCoord,
    PacingSpec, TrickFiles,
};
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::{DiskId, GroupId, MsuId, StreamId, TraceCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sustained per-disk bandwidth reported to the Coordinator for
/// admission control — the paper's measured 2.4 MB/s per disk under
/// the combined workload.
pub const REPORTED_DISK_BANDWIDTH: u64 = 2_400_000;

enum ServerEvent {
    Disk(DiskEvent),
    Net(NetEvent),
}

/// A running MSU.
pub struct MsuServer {
    shared: Arc<ServerShared>,
    stop: Arc<AtomicBool>,
    msu_id: MsuId,
    disk_ids: Arc<Mutex<Vec<DiskId>>>,
    handles: Vec<JoinHandle<()>>,
    /// Runtime fault handles, parallel to the config's disk order
    /// (`Some` only where the config armed a fault plan).
    fault_controls: Vec<Option<Arc<FaultControl>>>,
    /// Chaos switch: the Coordinator control loop stops reading.
    wedged: Arc<AtomicBool>,
    /// Chaos switch: outgoing media packets are silently discarded.
    blackhole: Arc<AtomicBool>,
}

impl std::fmt::Debug for MsuServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsuServer")
            .field("msu_id", &self.msu_id)
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl MsuServer {
    /// Starts an MSU per the configuration: opens disks, spawns the
    /// device threads, registers with the Coordinator, and begins
    /// serving. Blocks until registration completes.
    pub fn start(cfg: MsuConfig) -> Result<MsuServer> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let stop = Arc::new(AtomicBool::new(false));

        // Open or create the disks, wrapping each in the fault injector
        // when its spec arms one.
        let mut filesystems = Vec::new();
        let mut reports = Vec::new();
        let mut fault_controls: Vec<Option<Arc<FaultControl>>> = Vec::new();
        for (i, spec) in cfg.disks.iter().enumerate() {
            let path = cfg.data_dir.join(format!("disk{i}.img"));
            let exists = path.exists();
            let raw = if exists {
                FileDisk::open(&path, BLOCK_SIZE)?
            } else {
                FileDisk::create(&path, BLOCK_SIZE, spec.blocks)?
            };
            let device: Box<dyn BlockDevice> = match &spec.fault {
                Some(plan) => {
                    let faulty = FaultyDisk::new(raw, plan.clone());
                    fault_controls.push(Some(faulty.control()));
                    Box::new(faulty)
                }
                None => {
                    fault_controls.push(None);
                    Box::new(raw)
                }
            };
            let fs = if exists {
                MsuFs::open(device)?
            } else {
                MsuFs::format(device)?
            };
            reports.push(DiskReport {
                capacity_bytes: fs.capacity_bytes(),
                free_bytes: fs.free_bytes(),
                bandwidth: ByteRate::from_bytes_per_sec(REPORTED_DISK_BANDWIDTH),
            });
            filesystems.push(fs);
        }

        // Channels and threads.
        let metrics = MsuMetrics::new();
        let wedged = Arc::new(AtomicBool::new(false));
        let blackhole = Arc::new(AtomicBool::new(false));
        let (events_tx, events_rx) = unbounded::<ServerEvent>();
        let mut disk_txs = Vec::new();
        let mut handles = Vec::new();
        for fs in filesystems {
            let (tx, rx) = unbounded::<DiskCmd>();
            let (dtx, drx) = unbounded::<DiskEvent>();
            let fwd = events_tx.clone();
            handles.push(std::thread::spawn(move || {
                for ev in drx {
                    if fwd.send(ServerEvent::Disk(ev)).is_err() {
                        return;
                    }
                }
            }));
            let dm = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || disk::run(fs, rx, dtx, dm)));
            disk_txs.push(tx);
        }
        let (net_tx, net_rx) = unbounded::<NetCmd>();
        let send_socket = UdpSocket::bind((cfg.bind_ip, 0))?;
        {
            let (ntx, nrx) = unbounded::<NetEvent>();
            let fwd = events_tx.clone();
            handles.push(std::thread::spawn(move || {
                for ev in nrx {
                    if fwd.send(ServerEvent::Net(ev)).is_err() {
                        return;
                    }
                }
            }));
            let tick = cfg.net_tick;
            let nm = Arc::clone(&metrics);
            let bh = Arc::clone(&blackhole);
            handles.push(std::thread::spawn(move || {
                net::run(send_socket, tick, net_rx, ntx, nm, bh)
            }));
        }

        let flight = Arc::new(
            FlightRecorder::from_env()
                .with_dropped_counter(metrics.registry.counter("obs.flight_dropped")),
        );
        let shared = Arc::new(ServerShared {
            registry: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            disk_txs,
            net_tx,
            coord_conn: Mutex::new(None),
            metrics,
            flight,
            stop: Arc::clone(&stop),
        });

        // Register with the Coordinator.
        let (conn, msu_id, ids) = register(&cfg, &reports, cfg.previous_id)?;
        tracing::info!(
            "register: {msu_id} up with {} disks at {}",
            ids.len(),
            cfg.coordinator
        );
        // The recorder joins the global dump set only once it has a
        // Coordinator-assigned name to be dumped under.
        calliope_obs::flight::register(&msu_id.to_string(), Arc::clone(&shared.flight));
        *shared.coord_conn.lock() = Some(conn.try_clone()?);
        let disk_ids = Arc::new(Mutex::new(ids));

        // Event loop.
        {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                run_event_loop(shared, events_rx, stop)
            }));
        }

        // Coordinator reader (with reconnection).
        {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            let disk_ids = Arc::clone(&disk_ids);
            let events_tx = events_tx.clone();
            let wedged = Arc::clone(&wedged);
            handles.push(std::thread::spawn(move || {
                coordinator_loop(shared, cfg, conn, msu_id, disk_ids, events_tx, stop, wedged)
            }));
        }

        Ok(MsuServer {
            shared,
            stop,
            msu_id,
            disk_ids,
            handles,
            fault_controls,
            wedged,
            blackhole,
        })
    }

    /// This MSU's Coordinator-assigned identity.
    pub fn id(&self) -> MsuId {
        self.msu_id
    }

    /// Global ids of the local disks (parallel to the config order).
    pub fn disk_ids(&self) -> Vec<DiskId> {
        self.disk_ids.lock().clone()
    }

    /// Number of live streams.
    pub fn stream_count(&self) -> usize {
        self.shared.registry.lock().len()
    }

    /// This MSU's metrics (counters like `msu.io_errors`).
    pub fn metrics(&self) -> &MsuMetrics {
        &self.shared.metrics
    }

    /// This MSU's flight recorder (tests inspect recorded events).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.shared.flight
    }

    /// The runtime fault handle for local disk `disk` (config order).
    /// `None` when that disk's spec armed no fault plan.
    pub fn fault_control(&self, disk: usize) -> Option<Arc<FaultControl>> {
        self.fault_controls.get(disk).and_then(Option::clone)
    }

    /// Chaos: wedges the Coordinator control loop. The TCP connection
    /// stays open but no request — including `Ping` — is read or
    /// answered again, so only the heartbeat monitor can detect the
    /// failure (a TCP break alone cannot).
    pub fn wedge_control(&self) {
        self.wedged.store(true, Ordering::Release);
    }

    /// Chaos: severs the Coordinator connection. Streams keep playing
    /// and the MSU re-registers with its previous identity (§2.2); the
    /// Coordinator sees the TCP break and marks this MSU down at once.
    pub fn drop_coord_conn(&self) {
        if let Some(conn) = self.shared.coord_conn.lock().as_ref() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Chaos: silently discards every outgoing media packet from here
    /// on. Pacing, accounting, and control traffic continue as if the
    /// network were healthy — it models a dead switch port, which only
    /// the client can notice.
    pub fn blackhole_udp(&self) {
        self.blackhole.store(true, Ordering::Release);
    }

    /// Crashes the MSU: every thread is torn down abruptly, WITHOUT the
    /// orderly `GroupEnded` / `StreamDone` farewells that
    /// [`shutdown`](Self::shutdown) sends. Clients see their control
    /// connections break and the Coordinator sees the TCP connection
    /// die — the closest safe equivalent of `kill -9`.
    pub fn crash(mut self) {
        calliope_obs::flight::unregister(&self.msu_id.to_string());
        self.stop.store(true, Ordering::Release);
        if let Some(conn) = self.shared.coord_conn.lock().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let groups: Vec<Arc<GroupInfo>> =
            self.shared.groups.lock().drain().map(|(_, g)| g).collect();
        for g in groups {
            if let Some(conn) = g.conn.lock().as_ref() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        for tx in &self.shared.disk_txs {
            let _ = tx.send(DiskCmd::Shutdown);
        }
        let _ = self.shared.net_tx.send(NetCmd::Shutdown);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Stops every thread and tears down all streams.
    pub fn shutdown(mut self) {
        calliope_obs::flight::unregister(&self.msu_id.to_string());
        self.stop.store(true, Ordering::Release);
        let groups: Vec<GroupId> = self.shared.groups.lock().keys().copied().collect();
        for g in groups {
            self.shared.finish_group(g, DoneReason::MsuShutdown);
        }
        for tx in &self.shared.disk_txs {
            let _ = tx.send(DiskCmd::Shutdown);
        }
        let _ = self.shared.net_tx.send(NetCmd::Shutdown);
        if let Some(conn) = self.shared.coord_conn.lock().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Dials the Coordinator and performs the registration handshake.
fn register(
    cfg: &MsuConfig,
    reports: &[DiskReport],
    previous: Option<MsuId>,
) -> Result<(TcpStream, MsuId, Vec<DiskId>)> {
    let mut conn = TcpStream::connect(cfg.coordinator)?;
    conn.set_nodelay(true).ok();
    let ctrl_addr = conn.local_addr()?;
    write_frame(
        &mut conn,
        &MsuEnvelope {
            req_id: 0,
            body: MsuToCoord::Register {
                ctrl_addr,
                disks: reports.to_vec(),
                previous,
            },
        },
    )?;
    let ack: Option<CoordEnvelope> = read_frame(&mut conn)?;
    match ack {
        Some(CoordEnvelope {
            body: CoordToMsu::RegisterAck { msu, disk_ids },
            ..
        }) => Ok((conn, msu, disk_ids)),
        other => Err(Error::internal(format!(
            "expected RegisterAck, got {other:?}"
        ))),
    }
}

fn run_event_loop(shared: Arc<ServerShared>, rx: Receiver<ServerEvent>, stop: Arc<AtomicBool>) {
    loop {
        let ev = match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(ev) => ev,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        match ev {
            ServerEvent::Disk(DiskEvent::GroupReleased(gid)) => {
                let group = shared.groups.lock().get(&gid).cloned();
                let Some(group) = group else { continue };
                let streams: Vec<StreamId> = group.shared.members.lock().clone();
                // The group rides under its first member's trace (all
                // members were admitted together by one request).
                let trace = {
                    let reg = shared.registry.lock();
                    streams
                        .first()
                        .and_then(|s| reg.get(s))
                        .map(|i| i.shared.trace)
                        .unwrap_or_default()
                };
                shared.flight.record(
                    trace.id,
                    FlightCode::GroupReady,
                    gid.raw(),
                    streams.len() as u64,
                );
                // The group-control thread may still be dialing; wait
                // briefly for the connection to land.
                for _ in 0..200 {
                    if group.conn.lock().is_some() || stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                shared.send_to_client(
                    &group,
                    &MsuToClient::GroupReady {
                        group: gid,
                        streams,
                        trace,
                    },
                );
            }
            ServerEvent::Disk(DiskEvent::RecordFinished {
                stream,
                bytes,
                duration_us,
            }) => {
                let info = shared.registry.lock().get(&stream).cloned();
                if let Some(info) = info {
                    let reason = info
                        .quit_reason
                        .lock()
                        .clone()
                        .unwrap_or(DoneReason::Completed);
                    let gid = info.shared.group;
                    shared.finish_stream(&info, reason.clone(), bytes, duration_us);
                    maybe_end_group(&shared, gid, reason);
                }
            }
            ServerEvent::Disk(DiskEvent::StreamFailed { stream, msg }) => {
                let info = shared.registry.lock().get(&stream).cloned();
                if let Some(info) = info {
                    shared.metrics.io_errors.inc();
                    shared.flight.record(
                        info.shared.trace.id,
                        FlightCode::IoError,
                        stream.raw(),
                        info.shared.disk as u64,
                    );
                    let gid = info.shared.group;
                    // IoError (not a generic Error) tells the
                    // Coordinator this stream is a failover candidate.
                    let reason = DoneReason::IoError(msg);
                    shared.finish_stream(&info, reason.clone(), 0, 0);
                    maybe_end_group(&shared, gid, reason);
                    // A disk failure is exactly what the flight recorder
                    // exists for: dump unconditionally, no env vars.
                    shared.flight.dump("msu", "stream io error");
                }
            }
            ServerEvent::Net(NetEvent::PlayFinished { stream }) => {
                let info = shared.registry.lock().get(&stream).cloned();
                if let Some(info) = info {
                    // relaxed: progress polling; staleness only
                    // delays completion detection by one tick.
                    let bytes = info.shared.stats.bytes.load(Ordering::Relaxed);
                    let duration = info.shared.ctl.lock().file.duration_us;
                    let gid = info.shared.group;
                    shared.finish_stream(&info, DoneReason::Completed, bytes, duration);
                    maybe_end_group(&shared, gid, DoneReason::Completed);
                }
            }
        }
    }
}

/// Sends `GroupEnded` and drops the group once its last member is gone.
fn maybe_end_group(shared: &ServerShared, gid: GroupId, reason: DoneReason) {
    let empty = !shared
        .registry
        .lock()
        .values()
        .any(|i| i.shared.group == gid);
    if empty {
        if let Some(group) = shared.groups.lock().remove(&gid) {
            shared.send_to_client(&group, &MsuToClient::GroupEnded { group: gid, reason });
        }
    }
}

/// Reads Coordinator requests, reconnecting (and re-registering with
/// the previous identity) after connection loss.
#[allow(clippy::too_many_arguments)]
fn coordinator_loop(
    shared: Arc<ServerShared>,
    cfg: MsuConfig,
    mut conn: TcpStream,
    msu_id: MsuId,
    disk_ids: Arc<Mutex<Vec<DiskId>>>,
    events_tx: Sender<ServerEvent>,
    stop: Arc<AtomicBool>,
    wedged: Arc<AtomicBool>,
) {
    conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Wedged (chaos): keep the connection open but stop serving.
        if wedged.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let env: Option<CoordEnvelope> = match read_frame(&mut conn) {
            Ok(env) => env,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => None,
        };
        let Some(env) = env else {
            // Connection lost. Streams keep playing; re-register when the
            // Coordinator returns (paper §2.2).
            *shared.coord_conn.lock() = None;
            loop {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(500));
                // Free-space figures may have changed; re-stat the disks.
                let reports: Vec<DiskReport> = (0..shared.disk_txs.len())
                    .map(|d| {
                        let free = shared
                            .disk_rpc(d, |reply| DiskCmd::FreeBytes { reply })
                            .unwrap_or(0);
                        DiskReport {
                            capacity_bytes: 0,
                            free_bytes: free,
                            bandwidth: ByteRate::from_bytes_per_sec(REPORTED_DISK_BANDWIDTH),
                        }
                    })
                    .collect();
                match register(&cfg, &reports, Some(msu_id)) {
                    Ok((new_conn, id, ids)) => {
                        debug_assert_eq!(id, msu_id, "coordinator must restore our identity");
                        if let Ok(clone) = new_conn.try_clone() {
                            *shared.coord_conn.lock() = Some(clone);
                        }
                        *disk_ids.lock() = ids;
                        conn = new_conn;
                        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
                        break;
                    }
                    Err(_) => continue,
                }
            }
            continue;
        };

        let reply = handle_coord_request(&shared, &cfg, &disk_ids, &events_tx, msu_id, env.body);
        match reply {
            Some(body) => shared.send_to_coord(&MsuEnvelope {
                req_id: env.req_id,
                body,
            }),
            None => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn local_disk(disk_ids: &Mutex<Vec<DiskId>>, id: DiskId) -> Result<usize> {
    disk_ids
        .lock()
        .iter()
        .position(|d| *d == id)
        .ok_or_else(|| Error::Disk {
            disk: id,
            msg: "not a local disk".into(),
        })
}

fn handle_coord_request(
    shared: &Arc<ServerShared>,
    cfg: &MsuConfig,
    disk_ids: &Arc<Mutex<Vec<DiskId>>>,
    events_tx: &Sender<ServerEvent>,
    msu_id: MsuId,
    body: CoordToMsu,
) -> Option<MsuToCoord> {
    match body {
        CoordToMsu::RegisterAck { .. } => None, // handshake artifact; ignore
        // The Pong piggybacks a full stats snapshot, feeding the
        // Coordinator's cluster view at heartbeat cost — no extra RPC.
        CoordToMsu::Ping => Some(MsuToCoord::Pong {
            snapshot: Some(shared.snapshot_stats(&msu_id.to_string())),
        }),
        CoordToMsu::GetStats => Some(MsuToCoord::Stats {
            snapshot: shared.snapshot_stats(&msu_id.to_string()),
        }),
        CoordToMsu::CopyFile {
            src_disk,
            dst_disk,
            file,
        } => Some(MsuToCoord::FileCopied {
            error: copy_file(shared, disk_ids, src_disk, dst_disk, &file)
                .err()
                .map(|e| e.to_string()),
        }),
        CoordToMsu::DeleteFile { disk, file } => {
            let error = (|| -> Result<()> {
                let local = local_disk(disk_ids, disk)?;
                let deleted: Result<()> =
                    shared.disk_rpc(local, |reply| DiskCmd::Delete { name: file, reply })?;
                deleted
            })()
            .err()
            .map(|e| e.to_string());
            Some(MsuToCoord::FileDeleted { error })
        }
        CoordToMsu::Shutdown => {
            shared.stop.store(true, Ordering::Release);
            None
        }
        CoordToMsu::Cancel { stream } => {
            let info = shared.registry.lock().get(&stream).cloned();
            if let Some(info) = info {
                shared
                    .flight
                    .record(info.shared.trace.id, FlightCode::Cancel, stream.raw(), 0);
                *info.quit_reason.lock() = Some(DoneReason::Cancelled);
                let gid = info.shared.group;
                shared.finish_stream(&info, DoneReason::Cancelled, 0, 0);
                maybe_end_group(shared, gid, DoneReason::Cancelled);
            }
            None
        }
        CoordToMsu::ScheduleRead {
            stream,
            group,
            group_size,
            disk,
            file,
            protocol: _,
            pacing,
            client_data,
            client_ctrl,
            trick,
            trace,
        } => {
            let error = schedule_read(
                shared,
                disk_ids,
                stream,
                group,
                group_size,
                disk,
                file,
                pacing,
                client_data,
                client_ctrl,
                trick,
                trace,
            )
            .err()
            .map(|e| e.to_string());
            Some(MsuToCoord::ReadScheduled { error })
        }
        CoordToMsu::ScheduleWrite {
            stream,
            group,
            group_size,
            disk,
            file,
            protocol,
            est_bytes,
            stores_schedule,
            cbr_rate,
            client_ctrl,
            trace,
        } => match schedule_write(
            shared,
            cfg,
            disk_ids,
            events_tx,
            stream,
            group,
            group_size,
            disk,
            file,
            protocol,
            est_bytes,
            stores_schedule,
            cbr_rate,
            client_ctrl,
            trace,
        ) {
            Ok(sink) => Some(MsuToCoord::WriteScheduled {
                udp_sink: Some(sink),
                error: None,
            }),
            Err(e) => Some(MsuToCoord::WriteScheduled {
                udp_sink: None,
                error: Some(e.to_string()),
            }),
        },
    }
}

/// Finds or creates the group entry, spawning its client-control thread
/// on first sight.
fn group_entry(
    shared: &Arc<ServerShared>,
    group: GroupId,
    group_size: u32,
    client_ctrl: SocketAddr,
) -> Arc<GroupInfo> {
    let mut groups = shared.groups.lock();
    if let Some(g) = groups.get(&group) {
        return Arc::clone(g);
    }
    let info = Arc::new(GroupInfo {
        shared: GroupShared::new(group, group_size),
        client_ctrl,
        conn: Mutex::new(None),
    });
    groups.insert(group, Arc::clone(&info));
    let shared2 = Arc::clone(shared);
    let info2 = Arc::clone(&info);
    std::thread::spawn(move || run_group_ctrl(shared2, info2, group));
    info
}

/// Copies a file between two local disks through the disk threads'
/// page RPCs — the replication mechanism of paper §2.3.3. Runs on the
/// Coordinator-reader thread; a 16 MB test disk copies in well under a
/// second, and replication is an administrative operation.
fn copy_file(
    shared: &Arc<ServerShared>,
    disk_ids: &Arc<Mutex<Vec<DiskId>>>,
    src_disk: DiskId,
    dst_disk: DiskId,
    file: &str,
) -> Result<()> {
    if src_disk == dst_disk {
        return Err(Error::Disk {
            disk: dst_disk,
            msg: "source and destination are the same disk".into(),
        });
    }
    let src = local_disk(disk_ids, src_disk)?;
    let dst = local_disk(disk_ids, dst_disk)?;
    let meta: ActiveFile = shared.disk_rpc(src, |reply| DiskCmd::Stat {
        name: file.to_owned(),
        reply,
    })??;
    let created: Result<()> = shared.disk_rpc(dst, |reply| DiskCmd::Create {
        name: file.to_owned(),
        kind: meta.kind,
        reserve_bytes: meta.pages * BLOCK_SIZE as u64,
        reply,
    })?;
    created?;
    let mut remaining = meta.len_bytes;
    for page in 0..meta.pages {
        let data: Result<Vec<u8>> = shared.disk_rpc(src, |reply| DiskCmd::ReadPage {
            name: file.to_owned(),
            page,
            reply,
        })?;
        let data = data?;
        // `len_bytes` accounting: raw files split it across pages; for
        // IB-tree files the per-page attribution is irrelevant (pages
        // are parsed whole), so the running remainder works for both.
        let payload = remaining.min(match meta.kind {
            FileKind::Raw => BLOCK_SIZE as u64,
            FileKind::IbTree => remaining,
        });
        remaining -= payload;
        let appended: Result<u64> = shared.disk_rpc(dst, |reply| DiskCmd::AppendPage {
            name: file.to_owned(),
            data,
            payload_bytes: payload,
            reply,
        })?;
        appended?;
    }
    let finalized: Result<()> = shared.disk_rpc(dst, |reply| DiskCmd::Finalize {
        name: file.to_owned(),
        duration_us: meta.duration_us,
        // Root entries are file-relative page indices: valid verbatim.
        root: meta.root.clone(),
        reply,
    })?;
    finalized
}

#[allow(clippy::too_many_arguments)]
fn schedule_read(
    shared: &Arc<ServerShared>,
    disk_ids: &Arc<Mutex<Vec<DiskId>>>,
    stream: StreamId,
    group: GroupId,
    group_size: u32,
    disk: DiskId,
    file: String,
    pacing: PacingSpec,
    client_data: SocketAddr,
    client_ctrl: SocketAddr,
    trick: Option<TrickFiles>,
    trace: TraceCtx,
) -> Result<()> {
    let local = local_disk(disk_ids, disk)?;
    let active: ActiveFile = shared.disk_rpc(local, |reply| DiskCmd::Stat {
        name: file.clone(),
        reply,
    })??;
    // The pacing spec must match the file's shape.
    let schedule = match (&pacing, active.kind) {
        (PacingSpec::Constant { rate, packet_bytes }, FileKind::Raw) => {
            Some(CbrSchedule::new(*rate, *packet_bytes))
        }
        (PacingSpec::Stored, FileKind::IbTree) => None,
        _ => {
            return Err(Error::Protocol {
                msg: format!(
                    "pacing {pacing:?} does not match file kind {:?}",
                    active.kind
                ),
            })
        }
    };

    let ginfo = group_entry(shared, group, group_size, client_ctrl);
    ginfo.shared.members.lock().push(stream);

    let stream_shared = Arc::new(StreamShared {
        id: stream,
        group,
        disk: local,
        trace,
        ctl: Mutex::new(StreamCtl {
            phase: StreamPhase::Priming,
            gen: 0,
            mode: TrickMode::Normal,
            eof: active.pages == 0,
            next_page: 0,
            pending_skip: 0,
            skip_until_us: 0,
            start_seq: 0,
            pacer: crate::pacer::Pacer::new(),
            file: active,
        }),
        stats: Default::default(),
    });

    // Four slots: two in flight for double buffering plus slack for the
    // disk thread's elevator read-ahead (MAX_READ_AHEAD pages per cycle).
    let (producer, consumer) = spsc::ring(4);
    shared.disk_txs[local]
        .send(DiskCmd::AddRead {
            shared: Arc::clone(&stream_shared),
            group: Arc::clone(&ginfo.shared),
            producer,
            schedule,
            trick: TrickNames {
                fast_forward: trick.as_ref().map(|t| t.fast_forward.clone()),
                fast_backward: trick.as_ref().map(|t| t.fast_backward.clone()),
            },
        })
        .map_err(|_| Error::internal("disk thread gone"))?;
    shared
        .net_tx
        .send(NetCmd::AddPlay {
            shared: Arc::clone(&stream_shared),
            group: Arc::clone(&ginfo.shared),
            consumer,
            dest: client_data,
            pacing,
            geometry: Geometry::paper(),
        })
        .map_err(|_| Error::internal("net thread gone"))?;

    let live = {
        let mut reg = shared.registry.lock();
        reg.insert(
            stream,
            Arc::new(StreamInfo {
                shared: stream_shared,
                group: ginfo.shared.clone(),
                disk: local,
                is_record: false,
                record_stop: None,
                quit_reason: Mutex::new(None),
                done_sent: AtomicBool::new(false),
            }),
        );
        reg.len()
    };
    shared.metrics.streams_active.set(live as u64);
    shared
        .flight
        .record(trace.id, FlightCode::Schedule, stream.raw(), local as u64);
    tracing::info!(
        "play: {stream} ({group}) reading {file:?} from disk {local} to {client_data} [{trace}]"
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn schedule_write(
    shared: &Arc<ServerShared>,
    cfg: &MsuConfig,
    disk_ids: &Arc<Mutex<Vec<DiskId>>>,
    events_tx: &Sender<ServerEvent>,
    stream: StreamId,
    group: GroupId,
    group_size: u32,
    disk: DiskId,
    file: String,
    protocol: calliope_types::content::ProtocolId,
    est_bytes: u64,
    stores_schedule: bool,
    cbr_rate: Option<calliope_types::time::BitRate>,
    client_ctrl: SocketAddr,
    trace: TraceCtx,
) -> Result<SocketAddr> {
    let local = local_disk(disk_ids, disk)?;
    let kind = if stores_schedule {
        FileKind::IbTree
    } else {
        FileKind::Raw
    };
    let created: Result<()> = shared.disk_rpc(local, |reply| DiskCmd::Create {
        name: file.clone(),
        kind,
        reserve_bytes: est_bytes,
        reply,
    })?;
    created?;

    let sink = UdpSocket::bind((cfg.bind_ip, 0))?;
    let sink_addr = sink.local_addr()?;

    let ginfo = group_entry(shared, group, group_size, client_ctrl);
    ginfo.shared.members.lock().push(stream);

    let stream_shared = Arc::new(StreamShared {
        id: stream,
        group,
        disk: local,
        trace,
        ctl: Mutex::new(StreamCtl {
            phase: StreamPhase::Running,
            gen: 0,
            mode: TrickMode::Normal,
            eof: false,
            next_page: 0,
            pending_skip: 0,
            skip_until_us: 0,
            start_seq: 0,
            pacer: crate::pacer::Pacer::new(),
            file: ActiveFile {
                name: file,
                kind,
                pages: 0,
                len_bytes: 0,
                root: Vec::new(),
                duration_us: 0,
            },
        }),
        stats: Default::default(),
    });

    let (producer, consumer) = spsc::ring(256);
    shared.disk_txs[local]
        .send(DiskCmd::AddWrite {
            shared: Arc::clone(&stream_shared),
            consumer,
            stores_schedule,
            cbr_rate,
        })
        .map_err(|_| Error::internal("disk thread gone"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let module = proto_registry(protocol, cbr_rate);
    net::spawn_record_receiver(
        sink,
        Arc::clone(&stream_shared),
        module,
        producer,
        Arc::clone(&stop),
        Arc::clone(&shared.metrics),
    );

    let live = {
        let mut reg = shared.registry.lock();
        reg.insert(
            stream,
            Arc::new(StreamInfo {
                shared: stream_shared,
                group: ginfo.shared.clone(),
                disk: local,
                is_record: true,
                record_stop: Some(stop),
                quit_reason: Mutex::new(None),
                done_sent: AtomicBool::new(false),
            }),
        );
        reg.len()
    };
    shared.metrics.streams_active.set(live as u64);
    shared
        .flight
        .record(trace.id, FlightCode::Schedule, stream.raw(), local as u64);
    tracing::info!("record: {stream} ({group}) to disk {local}, sink {sink_addr} [{trace}]");

    // A recording is "primed" as soon as its sink exists.
    if ginfo.shared.prime(stream) {
        let _ = events_tx.send(ServerEvent::Disk(DiskEvent::GroupReleased(group)));
    }
    Ok(sink_addr)
}
