//! E9 — §2.3.3: the striping trade-off the paper weighed and declined.
//!
//! "If an MSU has N items of content striped across N identical disks,
//! all of the system's customers can access any of the items. …
//! One disadvantage of striping is that the client must delay every
//! time it issues a VCR command while a disk slot becomes available. …
//! this delay is N times as long as it is in the non-striped case."

use calliope_bench::banner;
use calliope_sim::machine::DiskParams;
use calliope_storage::block::MemDisk;
use calliope_storage::catalog::FileKind;
use calliope_storage::striped::StripedStore;
use calliope_storage::MsuFs;

fn main() {
    banner("E9", "Striped vs. per-disk file layout", "§2.3.3");
    let disk = DiskParams::default();
    let block = 256 * 1024u64;
    let stream_bw = 187_500.0; // 1.5 Mbit/s in bytes/s
    let io_ms = disk.expected_service_ms(block);
    // Slots per duty cycle: transfers that fit while one stream drains
    // one block (the paper's cycle definition).
    let drain_ms = block as f64 / stream_bw * 1000.0;
    let slots = (drain_ms / io_ms).floor() as u64;

    println!("per-disk duty cycle: {io_ms:.0} ms per 256 KB transfer, {drain_ms:.0} ms to");
    println!("drain one block at 1.5 Mbit/s ⇒ {slots} slots per disk cycle");
    println!();
    println!(
        "{:>7} | {:>16} {:>22} | {:>20}",
        "disks D", "cycle slots N·D", "max streams per title", "worst VCR wait (ms)"
    );
    println!("{}", "-".repeat(76));
    for d in [1u64, 2, 4, 8] {
        // Non-striped: a title lives on one disk → its ceiling is one
        // disk's slots. Striped: every title can use all D disks, but
        // the duty cycle covers all disks: N·D slots, and a VCR command
        // waits up to the whole cycle.
        let per_title = slots * d;
        let wait_ms = (slots * d) as f64 * io_ms;
        println!(
            "{:>7} | {:>16} {:>22} | {:>20.0}",
            d,
            slots * d,
            per_title,
            wait_ms
        );
    }
    println!();
    println!("non-striped comparison at D disks: any ONE title serves at most");
    println!(
        "{slots} streams (1/D of customers), VCR waits ≤ {:.0} ms; replicas of",
        slots as f64 * io_ms
    );
    println!("popular titles buy bandwidth with space and forecasting (§2.3.3).");
    println!();
    println!("paper's verdict: they shipped non-striped, anticipating VCR-delay");
    println!("complaints — \"in retrospect, we were probably wrong.\"");
    println!();

    // Functional demonstration on the real storage layer: a striped
    // store spreads a file's pages evenly.
    let disks: Vec<MsuFs> = (0..4)
        .map(|_| MsuFs::format_with(Box::new(MemDisk::new(4096, 64)), 2).expect("format"))
        .collect();
    let mut store = StripedStore::new(disks).expect("striped store");
    store
        .create("movie", FileKind::Raw, 16 * 4096)
        .expect("create");
    for i in 0..16u8 {
        store
            .append_page("movie", &vec![i; 4096], 4096)
            .expect("append");
    }
    store.finalize("movie", 0, Vec::new()).expect("finalize");
    println!("functional check: 16 pages striped over 4 in-memory disks:");
    let spread: Vec<usize> = (0..16).map(|i| store.disk_of(i)).collect();
    println!("  page→disk map: {spread:?}");
    let mut buf = vec![0u8; 4096];
    store.read_page("movie", 9, &mut buf).expect("read");
    assert_eq!(buf[0], 9, "round-robin readback intact");
    println!("  readback across the stripe verified");
}
