//! A shimmed `UnsafeCell` with a closure-based access API.
//!
//! Callers use [`UnsafeCell::with`]/[`UnsafeCell::with_mut`] instead of
//! `get()`, which lets the checked build race-check every access with
//! the model's vector clocks *before* the raw pointer is touched — a
//! racy protocol fails the model run cleanly instead of executing
//! undefined behavior. In a normal build both methods compile down to
//! a direct `get()` call.

#[cfg(calliope_check)]
use crate::model::{cur_ctx, Registration};

/// Drop-in for `std::cell::UnsafeCell` (access via closures).
#[cfg_attr(not(calliope_check), repr(transparent))]
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    #[cfg(calliope_check)]
    reg: Registration,
}

impl<T> UnsafeCell<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell {
            inner: std::cell::UnsafeCell::new(value),
            #[cfg(calliope_check)]
            reg: Registration::new(),
        }
    }

    /// Runs `f` with a shared raw pointer to the contents.
    ///
    /// The usual `UnsafeCell` contract applies: the caller's protocol
    /// must guarantee no concurrent mutable access. Under the model
    /// cfg that claim is checked against the run's happens-before
    /// relation first.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(calliope_check)]
        if !std::thread::panicking() {
            if let Some(ctx) = cur_ctx() {
                ctx.run.cell_read(ctx.tid, &self.reg);
            }
        }
        f(self.inner.get())
    }

    /// Runs `f` with an exclusive raw pointer to the contents.
    ///
    /// The caller's protocol must guarantee exclusivity; under the
    /// model cfg that claim is checked first.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(calliope_check)]
        if !std::thread::panicking() {
            if let Some(ctx) = cur_ctx() {
                ctx.run.cell_write(ctx.tid, &self.reg);
            }
        }
        f(self.inner.get())
    }

    /// Exclusive access through `&mut self` (no protocol needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T> std::fmt::Debug for UnsafeCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("UnsafeCell(..)")
    }
}
