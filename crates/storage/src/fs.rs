//! The MSU file system proper.
//!
//! [`MsuFs`] glues a raw [`BlockDevice`] to the bitmap allocator and the
//! in-memory catalog. All metadata lives in a reserved region at the
//! front of the disk and is rewritten (write-through) whenever it
//! changes structurally — file creation, finalization, deletion. Page
//! appends during a recording consume blocks that were already reserved
//! (and already persisted as used) at creation time, so a crash
//! mid-recording loses at most the recording itself, never the
//! integrity of other files.
//!
//! There is deliberately **no block cache** (paper §2.3.3): every read
//! goes to the device. Read-ahead and write-behind are the MSU disk
//! process's job, because only it knows the duty-cycle schedule.

use crate::alloc::BlockAllocator;
use crate::block::BlockDevice;
use crate::catalog::{Catalog, FileKind, FileMeta, RootEntry};
use crate::layout::Superblock;
use calliope_types::error::{Error, Result};

/// Default number of metadata blocks reserved at format time.
///
/// With 256 KB blocks, 8 blocks = 2 MB — room for the bitmap of a very
/// large disk plus a catalog of hundreds of files.
pub const DEFAULT_META_BLOCKS: u64 = 8;

/// The MSU file system.
pub struct MsuFs {
    dev: Box<dyn BlockDevice>,
    sb: Superblock,
    alloc: BlockAllocator,
    catalog: Catalog,
}

impl std::fmt::Debug for MsuFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsuFs")
            .field("sb", &self.sb)
            .finish_non_exhaustive()
    }
}

impl MsuFs {
    /// Formats a device with the default metadata reservation.
    pub fn format(dev: Box<dyn BlockDevice>) -> Result<MsuFs> {
        Self::format_with(dev, DEFAULT_META_BLOCKS)
    }

    /// Formats a device, reserving `meta_blocks` blocks for metadata.
    pub fn format_with(mut dev: Box<dyn BlockDevice>, meta_blocks: u64) -> Result<MsuFs> {
        let num_blocks = dev.num_blocks();
        if num_blocks < 1 + meta_blocks + 1 {
            return Err(Error::storage(format!(
                "device of {num_blocks} blocks too small for {meta_blocks} metadata blocks"
            )));
        }
        let sb = Superblock {
            num_blocks,
            meta_blocks,
            block_size: dev.block_size() as u32,
        };
        let mut block0 = vec![0u8; dev.block_size()];
        sb.encode_into(&mut block0);
        dev.write_block(0, &block0)?;
        let mut fs = MsuFs {
            alloc: BlockAllocator::new(sb.data_blocks()),
            catalog: Catalog::new(),
            dev,
            sb,
        };
        fs.persist_meta()?;
        Ok(fs)
    }

    /// Opens a previously formatted device, loading all metadata into
    /// memory.
    pub fn open(mut dev: Box<dyn BlockDevice>) -> Result<MsuFs> {
        let mut block0 = vec![0u8; dev.block_size()];
        dev.read_block(0, &mut block0)?;
        let sb = Superblock::decode_from(&block0)?;
        if sb.block_size as usize != dev.block_size() {
            return Err(Error::storage(format!(
                "device block size {} does not match formatted size {}",
                dev.block_size(),
                sb.block_size
            )));
        }
        if sb.num_blocks != dev.num_blocks() {
            return Err(Error::storage(format!(
                "device has {} blocks but superblock says {}",
                dev.num_blocks(),
                sb.num_blocks
            )));
        }
        // Load the metadata region.
        let mut meta = Vec::with_capacity((sb.meta_blocks as usize) * dev.block_size());
        let mut buf = vec![0u8; dev.block_size()];
        for i in 0..sb.meta_blocks {
            dev.read_block(1 + i, &mut buf)?;
            meta.extend_from_slice(&buf);
        }
        if meta.len() < 8 {
            return Err(Error::storage("metadata region truncated"));
        }
        let bitmap_len = u32::from_le_bytes(meta[0..4].try_into().expect("4 bytes")) as usize;
        let catalog_at = 8 + bitmap_len;
        let catalog_len = u32::from_le_bytes(meta[4..8].try_into().expect("4 bytes")) as usize;
        if meta.len() < catalog_at + catalog_len {
            return Err(Error::storage("metadata region inconsistent lengths"));
        }
        let alloc = BlockAllocator::decode(&meta[8..8 + bitmap_len])?;
        let catalog = Catalog::decode(&meta[catalog_at..catalog_at + catalog_len])?;
        if alloc.capacity() != sb.data_blocks() {
            return Err(Error::storage("bitmap capacity does not match geometry"));
        }
        Ok(MsuFs {
            dev,
            sb,
            alloc,
            catalog,
        })
    }

    fn persist_meta(&mut self) -> Result<()> {
        let bitmap = self.alloc.encode();
        let catalog = self.catalog.encode();
        let mut meta = Vec::with_capacity(8 + bitmap.len() + catalog.len());
        meta.extend_from_slice(&(bitmap.len() as u32).to_le_bytes());
        meta.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
        meta.extend_from_slice(&bitmap);
        meta.extend_from_slice(&catalog);
        let region = self.sb.meta_blocks as usize * self.dev.block_size();
        if meta.len() > region {
            return Err(Error::storage(format!(
                "metadata ({} bytes) overflows the {region}-byte metadata region",
                meta.len()
            )));
        }
        meta.resize(region, 0);
        for i in 0..self.sb.meta_blocks {
            let at = i as usize * self.dev.block_size();
            self.dev
                .write_block(1 + i, &meta[at..at + self.dev.block_size()])?;
        }
        self.dev.sync()
    }

    /// The device's block (data page) size.
    pub fn block_size(&self) -> usize {
        self.dev.block_size()
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.alloc.capacity() * self.dev.block_size() as u64
    }

    /// Free data capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free() * self.dev.block_size() as u64
    }

    /// Number of files in the catalog.
    pub fn file_count(&self) -> usize {
        self.catalog.len()
    }

    /// Looks up a file's metadata.
    pub fn file(&self, name: &str) -> Result<&FileMeta> {
        self.catalog.get(name).ok_or_else(|| Error::NoSuchContent {
            name: name.to_owned(),
        })
    }

    /// Iterates over all files.
    pub fn files(&self) -> impl Iterator<Item = &FileMeta> {
        self.catalog.iter()
    }

    /// Creates a file, reserving `reserve_bytes` of disk space up front
    /// (rounded up to whole blocks). The reservation comes from the
    /// client's recording-length estimate; whatever goes unused is
    /// returned at [`MsuFs::finalize`] (paper §2.2).
    pub fn create(&mut self, name: &str, kind: FileKind, reserve_bytes: u64) -> Result<()> {
        if self.catalog.get(name).is_some() {
            return Err(Error::AlreadyExists {
                kind: "file",
                name: name.to_owned(),
            });
        }
        let blocks = reserve_bytes.div_ceil(self.dev.block_size() as u64);
        let reserved = self.alloc.alloc_many(blocks)?;
        self.catalog
            .insert(FileMeta::new(name.to_owned(), kind, reserved))?;
        self.persist_meta()
    }

    /// Appends one full page (block) to a file, returning its
    /// file-relative page index. `payload_bytes` is the number of valid
    /// payload bytes the page carries (≤ block size for raw files; the
    /// IB-tree writer reports it per page).
    pub fn append_page(&mut self, name: &str, page: &[u8], payload_bytes: u64) -> Result<u64> {
        if page.len() != self.dev.block_size() {
            return Err(Error::storage(format!(
                "page is {} bytes; block size is {}",
                page.len(),
                self.dev.block_size()
            )));
        }
        let first_data = self.sb.first_data_block();
        // Take a reserved block if any remain; otherwise grow (rare —
        // the client under-estimated) which costs a metadata write.
        let has_reserved = {
            let meta = self.catalog.get(name).ok_or_else(|| Error::NoSuchContent {
                name: name.to_owned(),
            })?;
            if meta.finalized {
                return Err(Error::storage(format!("file {name:?} is finalized")));
            }
            !meta.reserved.is_empty()
        };
        let (rel, grew) = if has_reserved {
            let meta = self.catalog.get_mut(name).expect("existence checked above");
            (meta.reserved.remove(0), false)
        } else {
            (self.alloc.alloc()?, true)
        };
        let meta = self.catalog.get_mut(name).expect("existence checked above");
        meta.blocks.push(rel);
        meta.len_bytes += payload_bytes;
        let idx = meta.blocks.len() as u64 - 1;
        self.dev.write_block(first_data + rel, page)?;
        if grew {
            self.persist_meta()?;
        }
        Ok(idx)
    }

    /// Reads file page `page_idx` into `buf` (block-size bytes).
    pub fn read_page(&mut self, name: &str, page_idx: u64, buf: &mut [u8]) -> Result<()> {
        let meta = self.catalog.get(name).ok_or_else(|| Error::NoSuchContent {
            name: name.to_owned(),
        })?;
        let rel = *meta.blocks.get(page_idx as usize).ok_or_else(|| {
            Error::storage(format!(
                "page {page_idx} out of range for {name:?} ({} pages)",
                meta.blocks.len()
            ))
        })?;
        let abs = self.sb.first_data_block() + rel;
        self.dev.read_block(abs, buf)
    }

    /// Returns the *absolute* device block address holding file page
    /// `page_idx` — the coordinate the disk process's elevator sorts by.
    pub fn page_block(&self, name: &str, page_idx: u64) -> Result<u64> {
        let meta = self.catalog.get(name).ok_or_else(|| Error::NoSuchContent {
            name: name.to_owned(),
        })?;
        let rel = *meta.blocks.get(page_idx as usize).ok_or_else(|| {
            Error::storage(format!(
                "page {page_idx} out of range for {name:?} ({} pages)",
                meta.blocks.len()
            ))
        })?;
        Ok(self.sb.first_data_block() + rel)
    }

    /// Reads the physically contiguous absolute blocks `start ..
    /// start + bufs.len()` in one batched device transfer. Addresses
    /// come from [`MsuFs::page_block`]; the caller (the disk process)
    /// is responsible for only batching addresses inside the data
    /// region — the device bounds-checks the rest.
    pub fn read_blocks_abs(&mut self, start: u64, bufs: &mut [&mut [u8]]) -> Result<()> {
        if start < self.sb.first_data_block() {
            return Err(Error::storage(format!(
                "batched read at block {start} overlaps the metadata region"
            )));
        }
        self.dev.read_blocks_into(start, bufs)
    }

    /// Finalizes a recording: records duration and IB-tree root, returns
    /// unused reserved blocks to the allocator, and persists.
    pub fn finalize(&mut self, name: &str, duration_us: u64, root: Vec<RootEntry>) -> Result<()> {
        let meta = self
            .catalog
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchContent {
                name: name.to_owned(),
            })?;
        if meta.finalized {
            return Err(Error::storage(format!("file {name:?} already finalized")));
        }
        meta.duration_us = duration_us;
        meta.root = root;
        meta.finalized = true;
        let unused = std::mem::take(&mut meta.reserved);
        for b in unused {
            self.alloc.free_block(b)?;
        }
        self.persist_meta()
    }

    /// Deletes a file, freeing all of its blocks.
    pub fn delete(&mut self, name: &str) -> Result<()> {
        let meta = self.catalog.remove(name)?;
        for b in meta.blocks.into_iter().chain(meta.reserved) {
            self.alloc.free_block(b)?;
        }
        self.persist_meta()
    }

    /// Consumes the file system, returning the device (tests use this to
    /// reopen and check persistence).
    pub fn into_device(self) -> Box<dyn BlockDevice> {
        self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;
    use crate::ibtree::{IbTreeReader, IbTreeWriter};
    use crate::page::Geometry;
    use calliope_proto::record::PacketRecord;
    use calliope_types::time::MediaTime;

    const BS: usize = 1024;

    fn fresh_fs(blocks: u64) -> MsuFs {
        MsuFs::format_with(Box::new(MemDisk::new(BS, blocks)), 2).unwrap()
    }

    #[test]
    fn format_and_reopen_empty() {
        let fs = fresh_fs(32);
        assert_eq!(fs.file_count(), 0);
        assert_eq!(fs.capacity_bytes(), (32 - 3) * BS as u64);
        let dev = fs.into_device();
        let fs = MsuFs::open(dev).unwrap();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn format_rejects_tiny_devices() {
        assert!(MsuFs::format_with(Box::new(MemDisk::new(BS, 2)), 2).is_err());
    }

    #[test]
    fn open_rejects_unformatted_device() {
        assert!(MsuFs::open(Box::new(MemDisk::new(BS, 16))).is_err());
    }

    #[test]
    fn raw_file_write_read_cycle() {
        let mut fs = fresh_fs(32);
        fs.create("movie", FileKind::Raw, 3 * BS as u64).unwrap();
        let free_after_create = fs.free_bytes();
        assert_eq!(free_after_create, (32 - 3 - 3) * BS as u64);

        let page_a = vec![0xAA; BS];
        let page_b = vec![0xBB; BS];
        assert_eq!(fs.append_page("movie", &page_a, BS as u64).unwrap(), 0);
        assert_eq!(fs.append_page("movie", &page_b, 100).unwrap(), 1);
        // Appends consume the reservation, not new space.
        assert_eq!(fs.free_bytes(), free_after_create);

        fs.finalize("movie", 5_000_000, Vec::new()).unwrap();
        // One unused reserved block returned.
        assert_eq!(fs.free_bytes(), free_after_create + BS as u64);

        let meta = fs.file("movie").unwrap();
        assert_eq!(meta.len_bytes, BS as u64 + 100);
        assert_eq!(meta.duration_us, 5_000_000);
        assert!(meta.finalized);

        let mut buf = vec![0u8; BS];
        fs.read_page("movie", 0, &mut buf).unwrap();
        assert_eq!(buf, page_a);
        fs.read_page("movie", 1, &mut buf).unwrap();
        assert_eq!(buf, page_b);
        assert!(fs.read_page("movie", 2, &mut buf).is_err());
    }

    #[test]
    fn metadata_survives_reopen() {
        let mut fs = fresh_fs(32);
        fs.create("a", FileKind::Raw, BS as u64).unwrap();
        fs.append_page("a", &vec![7u8; BS], BS as u64).unwrap();
        fs.finalize("a", 1_000, Vec::new()).unwrap();
        let free = fs.free_bytes();
        let fs2 = MsuFs::open(fs.into_device()).unwrap();
        assert_eq!(fs2.file_count(), 1);
        assert_eq!(fs2.free_bytes(), free);
        let meta = fs2.file("a").unwrap();
        assert_eq!(meta.len_bytes, BS as u64);
        assert!(meta.finalized);
    }

    #[test]
    fn unfinalized_recording_survives_crash_with_reservation_intact() {
        let mut fs = fresh_fs(32);
        fs.create("rec", FileKind::Raw, 4 * BS as u64).unwrap();
        fs.append_page("rec", &vec![1u8; BS], BS as u64).unwrap();
        // "Crash": reopen without finalize. The creation-time persist
        // covers the reservation, so no block is leaked or double-used.
        let fs2 = MsuFs::open(fs.into_device()).unwrap();
        let meta = fs2.file("rec").unwrap();
        assert!(!meta.finalized);
        // The appended page was not persisted (by design — data loss is
        // confined to the in-progress recording), but all 4 reserved
        // blocks are still accounted as used.
        assert_eq!(meta.blocks_charged(), 4);
        assert_eq!(fs2.free_bytes(), (32 - 3 - 4) * BS as u64);
    }

    #[test]
    fn delete_returns_space() {
        let mut fs = fresh_fs(32);
        let before = fs.free_bytes();
        fs.create("x", FileKind::Raw, 5 * BS as u64).unwrap();
        fs.append_page("x", &vec![0u8; BS], BS as u64).unwrap();
        fs.finalize("x", 0, Vec::new()).unwrap();
        fs.delete("x").unwrap();
        assert_eq!(fs.free_bytes(), before);
        assert!(fs.file("x").is_err());
        assert!(fs.delete("x").is_err());
    }

    #[test]
    fn create_duplicate_is_rejected() {
        let mut fs = fresh_fs(32);
        fs.create("dup", FileKind::Raw, 0).unwrap();
        assert!(fs.create("dup", FileKind::Raw, 0).is_err());
    }

    #[test]
    fn reservation_exhaustion_grows_file() {
        let mut fs = fresh_fs(32);
        fs.create("grow", FileKind::Raw, BS as u64).unwrap(); // 1 block reserved
        fs.append_page("grow", &vec![0u8; BS], BS as u64).unwrap();
        // Second append exceeds the estimate; the file grows.
        fs.append_page("grow", &vec![1u8; BS], BS as u64).unwrap();
        assert_eq!(fs.file("grow").unwrap().pages(), 2);
    }

    #[test]
    fn disk_full_is_a_clean_error() {
        let mut fs = fresh_fs(8); // 5 data blocks
        assert!(fs.create("big", FileKind::Raw, 100 * BS as u64).is_err());
        fs.create("ok", FileKind::Raw, 5 * BS as u64).unwrap();
        assert!(fs.create("more", FileKind::Raw, BS as u64).is_err());
    }

    #[test]
    fn append_after_finalize_is_rejected() {
        let mut fs = fresh_fs(32);
        fs.create("f", FileKind::Raw, BS as u64).unwrap();
        fs.finalize("f", 0, Vec::new()).unwrap();
        assert!(fs.append_page("f", &vec![0u8; BS], 1).is_err());
        assert!(fs.finalize("f", 0, Vec::new()).is_err(), "double finalize");
    }

    #[test]
    fn ibtree_file_end_to_end_through_fs() {
        let geo = Geometry::tiny(); // page_size 1024 == BS
        let mut fs = fresh_fs(64);
        fs.create("vbr", FileKind::IbTree, 20 * BS as u64).unwrap();

        let recs: Vec<_> = (0..50)
            .map(|i| PacketRecord::media(MediaTime(i * 20_000), vec![(i % 250) as u8; 150]))
            .collect();
        let mut w = IbTreeWriter::new(geo).unwrap();
        for r in &recs {
            if let Some(p) = w.push(r).unwrap() {
                let idx = fs.append_page("vbr", &p.data, p.payload_bytes).unwrap();
                assert_eq!(idx, p.index, "fs page order matches writer order");
            }
        }
        let (finals, root, stats) = w.finish().unwrap();
        for p in finals {
            let idx = fs.append_page("vbr", &p.data, p.payload_bytes).unwrap();
            assert_eq!(idx, p.index);
        }
        fs.finalize("vbr", stats.duration.as_micros(), root.clone())
            .unwrap();

        // Reopen and read back through the IB-tree reader.
        let mut fs = MsuFs::open(fs.into_device()).unwrap();
        let meta = fs.file("vbr").unwrap().clone();
        assert_eq!(meta.pages(), stats.pages);
        assert_eq!(meta.root, root);
        assert_eq!(meta.len_bytes, stats.payload_bytes);

        let reader = IbTreeReader::new(geo, meta.root.clone(), meta.pages()).unwrap();
        let mut all = Vec::new();
        for i in 0..meta.pages() {
            let page = reader
                .page(i, |idx, buf| fs.read_page("vbr", idx, buf))
                .unwrap();
            all.extend(page.records);
        }
        assert_eq!(all, recs);

        // Seek through the fs too.
        let pos = reader
            .seek(MediaTime(20_000 * 25), |idx, buf| {
                fs.read_page("vbr", idx, buf)
            })
            .unwrap();
        let page = reader
            .page(pos.page, |idx, buf| fs.read_page("vbr", idx, buf))
            .unwrap();
        assert_eq!(page.records[pos.record].offset, MediaTime(20_000 * 25));
    }

    #[test]
    fn page_block_and_batched_abs_reads() {
        let mut fs = fresh_fs(32);
        fs.create("seq", FileKind::Raw, 4 * BS as u64).unwrap();
        for i in 0..4u8 {
            fs.append_page("seq", &vec![i; BS], BS as u64).unwrap();
        }
        // Fresh reservations are handed out in order, so the file's
        // pages are physically contiguous and batchable.
        let blocks: Vec<u64> = (0..4).map(|i| fs.page_block("seq", i).unwrap()).collect();
        assert!(blocks.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(fs.page_block("seq", 4).is_err());
        assert!(fs.page_block("nope", 0).is_err());

        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; BS]).collect();
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        fs.read_blocks_abs(blocks[0], &mut refs).unwrap();
        for (i, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![i as u8; BS]);
        }
        // The metadata region is off-limits to batched data reads.
        let mut one = vec![0u8; BS];
        let mut refs: Vec<&mut [u8]> = vec![one.as_mut_slice()];
        assert!(fs.read_blocks_abs(0, &mut refs).is_err());
    }

    #[test]
    fn many_files_fill_catalog_and_persist() {
        let mut fs = fresh_fs(128);
        for i in 0..20 {
            fs.create(&format!("file-{i}"), FileKind::Raw, BS as u64)
                .unwrap();
            fs.append_page(&format!("file-{i}"), &vec![i as u8; BS], BS as u64)
                .unwrap();
            fs.finalize(&format!("file-{i}"), i as u64, Vec::new())
                .unwrap();
        }
        let mut fs = MsuFs::open(fs.into_device()).unwrap();
        assert_eq!(fs.file_count(), 20);
        let mut buf = vec![0u8; BS];
        fs.read_page("file-7", 0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; BS]);
    }
}
