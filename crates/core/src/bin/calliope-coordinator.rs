//! The Coordinator daemon.
//!
//! ```sh
//! calliope-coordinator [--bind IP] [--client-port N] [--msu-port N]
//! ```
//!
//! Runs the global resource manager: clients connect to the client
//! port, MSUs register on the MSU port. Prints both addresses on
//! startup and serves until killed.

use calliope_coord::{CoordConfig, CoordServer};
use std::net::IpAddr;

fn usage() -> ! {
    eprintln!("usage: calliope-coordinator [--bind IP] [--client-port N] [--msu-port N]");
    std::process::exit(2);
}

fn main() {
    calliope_obs::init_logging();
    let mut cfg = CoordConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.bind_ip = v.parse::<IpAddr>().unwrap_or_else(|_| usage());
            }
            "--client-port" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.client_port = v.parse().unwrap_or_else(|_| usage());
            }
            "--msu-port" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.msu_port = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = match CoordServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("calliope-coordinator: {e}");
            std::process::exit(1);
        }
    };
    println!("calliope coordinator running");
    println!("  client port : {}", server.client_addr);
    println!("  msu port    : {}", server.msu_addr);
    println!("(^C to stop)");
    let main_span = tracing::info_span!("coordinator");
    let _guard = main_span.enter();
    tracing::info!(
        "listening: clients on {}, MSUs on {}",
        server.client_addr,
        server.msu_addr
    );

    // Periodic status line, forever.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        println!(
            "status: {} MSUs, {} active streams, {} requests served, cpu {:.2}%",
            server.msu_count(),
            server.active_streams(),
            server.stats().requests(),
            server.stats().cpu_utilization() * 100.0
        );
    }
}
