//! The full MSU data-path simulation — Graphs 1 and 2.
//!
//! Models the MSU software architecture of paper §2.2.1/§2.3 on top of
//! the hardware [`Machine`]:
//!
//! * one **disk process** per disk runs the duty cycle: it services its
//!   streams round-robin, keeping one 256 KB transfer outstanding, and
//!   only refills a stream whose double buffer has room;
//! * the **network process** wakes on the 10 ms FreeBSD timer (the
//!   paper's granularity) and transmits every packet that is due and
//!   buffered, in deadline order per stream;
//! * per-packet lateness = wire-completion time − deadline, collected
//!   into the [`LatenessCdf`] the graphs plot.
//!
//! Knobs exist for the ablations of DESIGN.md E10: timer granularity
//! and single- vs double-buffering.

use crate::engine::{EventQueue, SimTime};
use crate::lateness::LatenessCdf;
use crate::machine::{Completion, Ev, IoJob, Machine, MachineParams, SendJob};

/// One file-system block (the disk transfer unit).
pub const BLOCK_BYTES: u64 = 256 * 1024;

/// What a stream sends.
#[derive(Clone, Debug)]
pub enum StreamKind {
    /// Constant bit-rate: fixed-size packets at a fixed rate (Graph 1:
    /// 1.5 Mbit/s, 4 KB packets).
    Cbr {
        /// Stream rate, bits/second.
        rate_bps: u64,
        /// Packet payload size.
        packet_bytes: u32,
    },
    /// A stored-schedule trace: `(due_us, bytes)` per packet, offsets
    /// from stream start (Graph 2: NV captures).
    Trace {
        /// The packet schedule.
        packets: std::sync::Arc<Vec<(u64, u32)>>,
    },
}

impl StreamKind {
    /// The `i`-th packet of the stream, if any: `(due_us, bytes)`.
    fn packet(&self, i: u64) -> Option<(u64, u32)> {
        match self {
            StreamKind::Cbr {
                rate_bps,
                packet_bytes,
            } => {
                let due = (i as u128 * *packet_bytes as u128 * 8 * 1_000_000
                    / (*rate_bps).max(1) as u128) as u64;
                Some((due, *packet_bytes))
            }
            StreamKind::Trace { packets } => packets.get(i as usize).copied(),
        }
    }
}

/// One stream in the workload.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// What it sends.
    pub kind: StreamKind,
    /// Which disk its file lives on.
    pub disk: usize,
    /// Start offset from simulation start, µs (Graph 1 staggers streams
    /// across duty-cycle slots; Graph 2 starts them simultaneously, the
    /// paper's pathological case).
    pub start_us: u64,
}

/// A complete workload description.
#[derive(Clone, Debug)]
pub struct MsuWorkload {
    /// The streams.
    pub streams: Vec<StreamSpec>,
    /// Disk→HBA topology (Graphs 1–2 used two disks on one HBA).
    pub disk_hba: Vec<usize>,
    /// Simulated run length, seconds (the paper ran six minutes).
    pub duration_secs: u64,
    /// Network-process timer granularity, ms (FreeBSD: 10).
    pub timer_ms: u64,
    /// Per-stream buffer, in 256 KB blocks (2 = the paper's double
    /// buffering; 1 = the E10 ablation).
    pub buffer_blocks: u32,
    /// RNG seed.
    pub seed: u64,
}

impl MsuWorkload {
    /// The paper's Graph 1 configuration: `n` CBR streams of 1.5 Mbit/s
    /// with 4 KB packets, two disks on one HBA, six minutes, staggered
    /// starts.
    pub fn cbr(n: usize, duration_secs: u64, seed: u64) -> MsuWorkload {
        MsuWorkload {
            streams: (0..n)
                .map(|i| StreamSpec {
                    kind: StreamKind::Cbr {
                        rate_bps: 1_500_000,
                        packet_bytes: 4096,
                    },
                    disk: i % 2,
                    start_us: i as u64 * 60_000, // one duty-cycle slot apart
                })
                .collect(),
            disk_hba: vec![0, 0],
            duration_secs,
            timer_ms: 10,
            buffer_blocks: 2,
            seed,
        }
    }

    /// The paper's Graph 2 configuration: `n` VBR streams playing the
    /// given trace files round-robin, all started simultaneously ("this
    /// unrealistic scenario is a limitation of our automated test
    /// setup").
    pub fn vbr(n: usize, files: &[Vec<(u64, u32)>], duration_secs: u64, seed: u64) -> MsuWorkload {
        assert!(!files.is_empty(), "need at least one trace file");
        // Loop each trace to cover the duration.
        let looped: Vec<std::sync::Arc<Vec<(u64, u32)>>> = files
            .iter()
            .map(|f| {
                let mut out = Vec::new();
                if f.is_empty() {
                    return std::sync::Arc::new(out);
                }
                let span = f.last().expect("non-empty").0 + 40_000;
                let need_us = duration_secs * 1_000_000;
                let mut base = 0u64;
                'outer: loop {
                    for &(t, b) in f {
                        if base + t > need_us {
                            break 'outer;
                        }
                        out.push((base + t, b));
                    }
                    base += span;
                }
                std::sync::Arc::new(out)
            })
            .collect();
        MsuWorkload {
            streams: (0..n)
                .map(|i| StreamSpec {
                    kind: StreamKind::Trace {
                        packets: std::sync::Arc::clone(&looped[i % looped.len()]),
                    },
                    disk: i % 2,
                    start_us: 0,
                })
                .collect(),
            disk_hba: vec![0, 0],
            duration_secs,
            timer_ms: 10,
            buffer_blocks: 2,
            seed,
        }
    }
}

/// Results of one MSU run.
#[derive(Clone, Debug)]
pub struct MsuResult {
    /// The lateness distribution of every delivered packet.
    pub cdf: LatenessCdf,
    /// Packets delivered.
    pub packets: u64,
    /// Wire throughput, MB/s.
    pub wire_mb_s: f64,
    /// Aggregate disk throughput, MB/s.
    pub disk_mb_s: f64,
    /// CPU busy fraction.
    pub cpu_util: f64,
    /// Memory-system busy fraction.
    pub mem_util: f64,
    /// Packets that were due but waiting on disk data at least once.
    pub starved: u64,
}

struct StreamState {
    spec: StreamSpec,
    /// Next packet index to send.
    next_pkt: u64,
    /// Bytes buffered in memory, available to send.
    buffered: u64,
    /// Bytes in flight from disk.
    inflight: u64,
    /// Bytes read from disk so far (controls sequential position).
    blocks_read: u64,
    /// File start position on its disk.
    file_pos: u64,
    /// Total bytes the stream will ever need (u64::MAX for CBR).
    total_bytes: u64,
    /// Whether the head packet was found starved at some tick.
    starved_now: bool,
    /// Delivery base time: set when the first block is buffered (the
    /// real MSU starts a stream's schedule once its buffer is primed).
    base: Option<SimTime>,
}

/// Runs the workload and returns the lateness distribution.
pub fn run(w: &MsuWorkload) -> MsuResult {
    // The MSU's network I/O process does far more per packet than ttcp's
    // tight loop: delivery-schedule lookups, per-stream buffer
    // management, and a timer read (an I/O-port access) per packet. The
    // paper's VBR discussion ("four times as much processing overhead"
    // for 1 KB packets) implies a cost dominated by the per-packet term.
    let params = MachineParams {
        cpu_per_packet_us: 600.0,
        ..Default::default()
    };
    run_with_params(w, params)
}

/// Runs with explicit machine parameters (for ablations).
pub fn run_with_params(w: &MsuWorkload, params: MachineParams) -> MsuResult {
    assert!(w.buffer_blocks >= 1, "need at least one buffer");
    let mut m = Machine::new(params, w.disk_hba.clone(), w.seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let n_disks = w.disk_hba.len().max(1);

    let mut streams: Vec<StreamState> = w
        .streams
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let total_bytes = match &spec.kind {
                StreamKind::Cbr { .. } => u64::MAX,
                StreamKind::Trace { packets } => packets.iter().map(|&(_, b)| b as u64).sum(),
            };
            StreamState {
                spec: spec.clone(),
                next_pkt: 0,
                buffered: 0,
                inflight: 0,
                blocks_read: 0,
                // Spread files across the disk so round-robin service
                // produces the paper's "random seeks between transfers".
                file_pos: (i as u64 * 769) % params.disk.positions,
                total_bytes,
                starved_now: false,
                base: None,
            }
        })
        .collect();

    // Round-robin duty-cycle pointer per disk.
    let mut rr: Vec<usize> = vec![0; n_disks];
    let mut starved_total = 0u64;
    let buffer_cap = w.buffer_blocks as u64 * BLOCK_BYTES;

    // Issues the next duty-cycle transfer on `disk` if it is idle and
    // some stream has buffer room.
    let issue = |m: &mut Machine,
                 q: &mut EventQueue<Ev>,
                 streams: &mut [StreamState],
                 rr: &mut [usize],
                 disk: usize,
                 now: SimTime| {
        if m.disk_backlog(disk) > 0 {
            return;
        }
        let candidates: Vec<usize> = (0..streams.len())
            .filter(|&s| {
                streams[s].spec.disk == disk && now >= SimTime::from_us(streams[s].spec.start_us)
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        for probe in 0..candidates.len() {
            let s = candidates[(rr[disk] + probe) % candidates.len()];
            let st = &mut streams[s];
            let consumed_src = st.blocks_read * BLOCK_BYTES;
            let have_or_coming = st.buffered + st.inflight;
            let room = have_or_coming + BLOCK_BYTES <= buffer_cap;
            let more_content = consumed_src < st.total_bytes;
            if room && more_content {
                rr[disk] = (rr[disk] + probe + 1) % candidates.len();
                let pos = (st.file_pos + st.blocks_read) % m.params.disk.positions;
                st.inflight += BLOCK_BYTES;
                st.blocks_read += 1;
                m.submit_io(
                    q,
                    IoJob {
                        disk,
                        stream: s,
                        bytes: BLOCK_BYTES as u32,
                        pos,
                    },
                );
                return;
            }
        }
    };

    // The network process pump: send every due, buffered packet.
    let pump = |m: &mut Machine,
                q: &mut EventQueue<Ev>,
                streams: &mut [StreamState],
                starved_total: &mut u64,
                now: SimTime| {
        for (s, st) in streams.iter_mut().enumerate() {
            let Some(base) = st.base else {
                continue; // buffer not primed yet; the schedule has not started
            };
            while let Some((due_us, bytes)) = st.spec.kind.packet(st.next_pkt) {
                let due = base.plus(SimTime::from_us(due_us));
                if due > now {
                    st.starved_now = false;
                    break;
                }
                if (bytes as u64) > st.buffered {
                    // Head-of-line packet is due but its data has not
                    // come off the disk yet.
                    if !st.starved_now {
                        st.starved_now = true;
                        *starved_total += 1;
                    }
                    break;
                }
                st.buffered -= bytes as u64;
                m.submit_send(
                    q,
                    SendJob {
                        stream: s,
                        seq: st.next_pkt,
                        due,
                        bytes,
                    },
                );
                st.next_pkt += 1;
                st.starved_now = false;
            }
        }
    };

    // Seed the timer and the duty cycles.
    const TICK: u64 = 0;
    q.schedule_at(SimTime::ZERO, Ev::External(TICK));

    let horizon = SimTime::from_secs(w.duration_secs);
    let mut cdf = LatenessCdf::new(400);
    let tick = SimTime::from_ms(w.timer_ms.max(1));

    while let Some((t, ev)) = q.pop() {
        if t > horizon {
            break;
        }
        match ev {
            Ev::External(_) => {
                // The 10 ms timer: run the network process, then let each
                // disk process top up its streams.
                pump(&mut m, &mut q, &mut streams, &mut starved_total, t);
                for d in 0..n_disks {
                    issue(&mut m, &mut q, &mut streams, &mut rr, d, t);
                }
                q.schedule_in(tick, Ev::External(TICK));
            }
            other => {
                for c in m.handle(&mut q, other) {
                    match c {
                        Completion::PacketDelivered(job) => {
                            let late = t.saturating_sub(job.due);
                            cdf.record(late.as_us());
                        }
                        Completion::IoComplete(job) => {
                            let st = &mut streams[job.stream];
                            st.inflight -= job.bytes as u64;
                            st.buffered += job.bytes as u64;
                            // First block primed: the delivery schedule
                            // starts at the next timer tick.
                            st.base.get_or_insert(t);
                            issue(&mut m, &mut q, &mut streams, &mut rr, job.disk, t);
                        }
                        Completion::CopyDone(_) => {}
                    }
                }
            }
        }
    }

    let secs = w.duration_secs as f64;
    let disk_bytes: u64 = (0..w.disk_hba.len()).map(|d| m.disk_bytes(d)).sum();
    MsuResult {
        packets: cdf.total(),
        wire_mb_s: m.stats().wire_bytes as f64 / 1e6 / secs,
        disk_mb_s: disk_bytes as f64 / 1e6 / secs,
        cpu_util: m.cpu_utilization(horizon),
        mem_util: m.mem_utilization(horizon),
        starved: starved_total,
        cdf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightly_loaded_msu_is_nearly_perfect() {
        let w = MsuWorkload::cbr(5, 30, 1);
        let r = run(&w);
        assert!(r.packets > 5_000, "{} packets", r.packets);
        assert!(
            r.cdf.pct_within_ms(20) > 99.0,
            "5 streams must be easy: {:.1}% within 20ms",
            r.cdf.pct_within_ms(20)
        );
        // ~5 × 187.5 KB/s ≈ 0.94 MB/s on the wire.
        assert!((0.8..1.1).contains(&r.wire_mb_s), "{}", r.wire_mb_s);
    }

    #[test]
    fn graph1_shape_22_good_24_collapses() {
        let r22 = run(&MsuWorkload::cbr(22, 60, 2));
        let r24 = run(&MsuWorkload::cbr(24, 60, 2));
        let w22 = r22.cdf.pct_within_ms(50);
        let w24 = r24.cdf.pct_within_ms(50);
        assert!(
            w22 > 97.0,
            "22 streams: {w22:.1}% within 50ms (paper: 99.6%)"
        );
        // Over a 60 s window the backlog is still growing; the six-minute
        // bench run degrades much further (the paper reports 38%).
        assert!(
            w24 < 90.0,
            "24 streams must collapse: {w24:.1}% within 50ms (paper: 38% at 6 min)"
        );
        assert!(w22 > w24 + 15.0, "quality degrades with load");
    }

    #[test]
    fn timer_granularity_bounds_light_load_lateness() {
        // With almost no load, lateness is dominated by the 10 ms timer:
        // nothing should be later than a tick plus transmission time.
        let w = MsuWorkload::cbr(2, 20, 3);
        let r = run(&w);
        assert!(r.cdf.max_ms() < 25.0, "max {:.1}ms", r.cdf.max_ms());
        // With a 1 ms timer it tightens.
        let mut w1 = MsuWorkload::cbr(2, 20, 3);
        w1.timer_ms = 1;
        let r1 = run(&w1);
        assert!(r1.cdf.mean_ms() < r.cdf.mean_ms());
    }

    #[test]
    fn single_buffering_is_worse_than_double() {
        let mut w1 = MsuWorkload::cbr(20, 45, 4);
        w1.buffer_blocks = 1;
        let w2 = MsuWorkload::cbr(20, 45, 4);
        let r1 = run(&w1);
        let r2 = run(&w2);
        assert!(
            r1.cdf.pct_within_ms(50) <= r2.cdf.pct_within_ms(50) + 0.01,
            "single {:.2}% vs double {:.2}%",
            r1.cdf.pct_within_ms(50),
            r2.cdf.pct_within_ms(50)
        );
        assert!(r1.starved >= r2.starved);
    }

    #[test]
    fn vbr_streams_run_and_loop_traces() {
        // A tiny synthetic trace: 10 packets of 1 KB every 50 ms.
        let trace: Vec<(u64, u32)> = (0..10).map(|i| (i * 50_000, 1024)).collect();
        let w = MsuWorkload::vbr(4, &[trace], 10, 5);
        let r = run(&w);
        // 10 s / 0.54 s span ≈ 18 loops × 10 pkts × 4 streams.
        assert!(r.packets > 400, "{}", r.packets);
        assert!(r.cdf.pct_within_ms(50) > 95.0);
    }

    #[test]
    fn synchronized_bursts_hurt_more_than_staggered() {
        // One bursty "file": 30 KB burst every second.
        let mut trace = Vec::new();
        for s in 0..1u64 {
            for p in 0..30 {
                trace.push((s * 1_000_000 + p, 1024u32));
            }
        }
        let mut sync = MsuWorkload::vbr(12, &[trace.clone()], 20, 6);
        let mut stag = sync.clone();
        for (i, s) in stag.streams.iter_mut().enumerate() {
            s.start_us = i as u64 * 83_000;
        }
        sync.streams.iter_mut().for_each(|s| s.start_us = 0);
        let r_sync = run(&sync);
        let r_stag = run(&stag);
        assert!(
            r_sync.cdf.mean_ms() >= r_stag.cdf.mean_ms(),
            "synchronized {:.2}ms vs staggered {:.2}ms mean lateness",
            r_sync.cdf.mean_ms(),
            r_stag.cdf.mean_ms()
        );
    }

    #[test]
    fn cbr_packet_schedule_is_even() {
        let k = StreamKind::Cbr {
            rate_bps: 1_500_000,
            packet_bytes: 4096,
        };
        let (t0, b0) = k.packet(0).unwrap();
        let (t1, _) = k.packet(1).unwrap();
        assert_eq!(t0, 0);
        assert_eq!(b0, 4096);
        assert!((21_000..23_000).contains(&t1), "{t1}");
        // ~16480 packets in six minutes, the paper's figure.
        let per_6min = 360_000_000 / t1;
        assert!((16_000..17_000).contains(&per_6min), "{per_6min}");
    }

    #[test]
    fn trace_stream_ends_cleanly() {
        let trace: Vec<(u64, u32)> = vec![(0, 512), (10_000, 512)];
        let k = StreamKind::Trace {
            packets: std::sync::Arc::new(trace),
        };
        assert!(k.packet(0).is_some());
        assert!(k.packet(2).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&MsuWorkload::cbr(10, 10, 7));
        let b = run(&MsuWorkload::cbr(10, 10, 7));
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.cdf.pct_within_ms(50), b.cdf.pct_within_ms(50));
    }
}
