//! Length-prefixed binary wire codec.
//!
//! Calliope components exchange control information over TCP (paper §2):
//! clients talk to the Coordinator, the Coordinator talks to MSUs, and
//! MSUs open control connections back to clients for VCR commands. All of
//! those connections carry *frames*: a little-endian `u32` length followed
//! by that many bytes of message payload, where the payload is a tagged
//! binary encoding defined by the [`Wire`] trait.
//!
//! The codec is hand-rolled rather than derived: the format is tiny and
//! fixed, every message is enumerated in [`messages`], and owning the
//! byte layout keeps the control plane free of heavyweight dependencies —
//! in the spirit of the original system, which ran on 66 MHz Pentiums.
//!
//! Integers are little-endian. Strings are a `u32` length followed by
//! UTF-8 bytes. `Vec<T>` is a `u32` count followed by the elements.
//! `Option<T>` is a presence byte followed by the value. Enums are a tag
//! byte (documented per type) followed by the variant fields.
//!
//! The UDP data-packet header lives in [`data`]; TCP control messages in
//! [`messages`].

pub mod data;
pub mod messages;
pub mod stats;

use core::fmt;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

/// Maximum accepted frame payload, guarding against corrupt or hostile
/// length prefixes. Control messages are small; 16 MiB is generous.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Errors produced while decoding wire data.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which enum.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the message was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The claimed length.
        len: u32,
    },
    /// A collection length was absurdly large for the remaining input.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed element count or byte length.
        len: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while decoding {what}"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            WireError::BadUtf8 => f.write_str("invalid utf-8 in string"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            WireError::FrameTooLarge { len } => write!(f, "frame length {len} exceeds limit"),
            WireError::BadLength { what, len } => {
                write!(f, "implausible length {len} for {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a byte slice being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }
}

/// A type that can be encoded to and decoded from the Calliope wire
/// format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes a value from a complete buffer, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8("u8")
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u16("u16")
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32("u32")
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64("u64")
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.u32("string length")? as usize;
        if len > r.remaining() {
            return Err(WireError::BadLength {
                what: "string",
                len: len as u64,
            });
        }
        let bytes = r.bytes(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.u32("vec length")? as usize;
        // Each element takes at least one byte, so a count beyond the
        // remaining input is certainly corrupt; checking up front avoids
        // huge speculative allocations.
        if len > r.remaining() {
            return Err(WireError::BadLength {
                what: "vec",
                len: len as u64,
            });
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl Wire for SocketAddr {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self.ip() {
            IpAddr::V4(ip) => {
                buf.push(4);
                buf.extend_from_slice(&ip.octets());
            }
            IpAddr::V6(ip) => {
                buf.push(6);
                buf.extend_from_slice(&ip.octets());
            }
        }
        self.port().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ip = match r.u8("socket addr family")? {
            4 => {
                let b = r.bytes(4, "ipv4 octets")?;
                IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            6 => {
                let b = r.bytes(16, "ipv6 octets")?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                IpAddr::V6(Ipv6Addr::from(o))
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "socket addr family",
                    tag,
                })
            }
        };
        let port = r.u16("socket addr port")?;
        Ok(SocketAddr::new(ip, port))
    }
}

/// Writes one frame (length prefix + payload) to a stream.
///
/// The payload is the wire encoding of `msg`. Flushing is left to the
/// caller so several frames can be batched.
pub fn write_frame<W: Write, T: Wire>(w: &mut W, msg: &T) -> io::Result<()> {
    let payload = msg.to_bytes();
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)
}

/// Reads one frame from a stream and decodes it.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// the connection between messages), an error otherwise.
pub fn read_frame<R: Read, T: Wire>(r: &mut R) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge { len },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    T::from_bytes(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

// Wire impls for the small types defined elsewhere in this crate.

use crate::content::{ContentEntry, ContentKind, ContentTypeSpec, ProtocolId, TypeBody};
use crate::ids::{ClientId, ContentId, DiskId, GroupId, MsuId, PortId, SessionId, StreamId};
use crate::time::{BitRate, ByteRate, MediaTime};
use crate::vcr::VcrCommand;

macro_rules! wire_newtype_u64 {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(Self(u64::decode(r)?))
            }
        })*
    };
}

wire_newtype_u64!(
    ClientId, SessionId, StreamId, MsuId, DiskId, ContentId, PortId, GroupId, MediaTime, BitRate,
    ByteRate
);

impl Wire for ProtocolId {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8("protocol id")?;
        ProtocolId::from_tag(tag).ok_or(WireError::BadTag {
            what: "protocol id",
            tag,
        })
    }
}

impl Wire for ContentKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ContentKind::Constant { rate } => {
                buf.push(0);
                rate.encode(buf);
            }
            ContentKind::Variable { bandwidth, storage } => {
                buf.push(1);
                bandwidth.encode(buf);
                storage.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("content kind")? {
            0 => Ok(ContentKind::Constant {
                rate: BitRate::decode(r)?,
            }),
            1 => Ok(ContentKind::Variable {
                bandwidth: BitRate::decode(r)?,
                storage: ByteRate::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "content kind",
                tag,
            }),
        }
    }
}

impl Wire for TypeBody {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TypeBody::Atomic { protocol, kind } => {
                buf.push(0);
                protocol.encode(buf);
                kind.encode(buf);
            }
            TypeBody::Composite { components } => {
                buf.push(1);
                components.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("type body")? {
            0 => Ok(TypeBody::Atomic {
                protocol: ProtocolId::decode(r)?,
                kind: ContentKind::decode(r)?,
            }),
            1 => Ok(TypeBody::Composite {
                components: Vec::<String>::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "type body",
                tag,
            }),
        }
    }
}

impl Wire for ContentTypeSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.body.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ContentTypeSpec {
            name: String::decode(r)?,
            body: TypeBody::decode(r)?,
        })
    }
}

impl Wire for ContentEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.type_name.encode(buf);
        self.bytes.encode(buf);
        self.duration_us.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ContentEntry {
            name: String::decode(r)?,
            type_name: String::decode(r)?,
            bytes: u64::decode(r)?,
            duration_us: u64::decode(r)?,
        })
    }
}

impl Wire for VcrCommand {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        if let VcrCommand::Seek(t) = self {
            t.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("vcr command")? {
            0 => Ok(VcrCommand::Play),
            1 => Ok(VcrCommand::Pause),
            2 => Ok(VcrCommand::Seek(MediaTime::decode(r)?)),
            3 => Ok(VcrCommand::FastForward),
            4 => Ok(VcrCommand::FastBackward),
            5 => Ok(VcrCommand::Quit),
            tag => Err(WireError::BadTag {
                what: "vcr command",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + core::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&0xABCDu16);
        round_trip(&0xDEADBEEFu32);
        round_trip(&u64::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&String::from("héllo wörld"));
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Option::<u64>::None);
        round_trip(&Some(42u64));
    }

    #[test]
    fn socket_addrs_round_trip() {
        round_trip(&"127.0.0.1:8080".parse::<SocketAddr>().unwrap());
        round_trip(&"[::1]:9".parse::<SocketAddr>().unwrap());
    }

    #[test]
    fn calliope_types_round_trip() {
        round_trip(&StreamId(99));
        round_trip(&MediaTime::from_millis(1500));
        round_trip(&VcrCommand::Seek(MediaTime::from_secs(30)));
        round_trip(&VcrCommand::Quit);
        for spec in crate::content::builtin_types() {
            round_trip(&spec);
        }
        round_trip(&ContentEntry {
            name: "lecture-1".into(),
            type_name: "seminar".into(),
            bytes: 1_350_000_000,
            duration_us: 7_200_000_000,
        });
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let full = VcrCommand::Seek(MediaTime::from_secs(1)).to_bytes();
        for cut in 0..full.len() {
            let err = VcrCommand::from_bytes(&full[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert_eq!(
            u32::from_bytes(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(WireError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            VcrCommand::from_bytes(&[99]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn huge_vec_length_is_rejected_without_allocating() {
        // Claims 4 billion elements but provides none.
        let bytes = u32::MAX.to_bytes();
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn frame_round_trip_over_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &String::from("frame one")).unwrap();
        write_frame(&mut buf, &String::from("frame two")).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a: Option<String> = read_frame(&mut cursor).unwrap();
        let b: Option<String> = read_frame(&mut cursor).unwrap();
        let c: Option<String> = read_frame(&mut cursor).unwrap();
        assert_eq!(a.as_deref(), Some("frame one"));
        assert_eq!(b.as_deref(), Some("frame two"));
        assert_eq!(c, None, "clean EOF yields None");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        let res: io::Result<Option<String>> = read_frame(&mut cursor);
        assert!(res.is_err());
    }

    #[test]
    fn partial_frame_is_an_io_error() {
        // Length says 10 bytes but only 3 follow: mid-frame EOF must be an
        // error, not a clean None.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let mut cursor = std::io::Cursor::new(buf);
        let res: io::Result<Option<String>> = read_frame(&mut cursor);
        assert!(res.is_err());
    }

    proptest! {
        #[test]
        fn prop_strings_round_trip(s in ".*") {
            round_trip(&s);
        }

        #[test]
        fn prop_vecs_round_trip(v in proptest::collection::vec(any::<u64>(), 0..100)) {
            round_trip(&v);
        }

        #[test]
        fn prop_media_times_round_trip(us in any::<u64>()) {
            round_trip(&MediaTime(us));
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary bytes may fail but must not panic.
            let _ = VcrCommand::from_bytes(&bytes);
            let _ = ContentTypeSpec::from_bytes(&bytes);
            let _ = Vec::<String>::from_bytes(&bytes);
            let _ = SocketAddr::from_bytes(&bytes);
        }

        #[test]
        fn prop_nested_options_round_trip(v in any::<Option<Option<u32>>>()) {
            round_trip(&v);
        }
    }
}
