//! Turning disk pages back into timed packets.
//!
//! Two file shapes exist (paper §2.2.1):
//!
//! * **Raw constant-rate files** are opaque byte streams; the network
//!   process chops them into fixed-size packets whose delivery times
//!   are *calculated* from the stream rate ([`CbrPacketizer`]). Pages
//!   need not be multiples of the packet size — a carry buffer stitches
//!   packets across page boundaries.
//! * **IB-tree files** store [`PacketRecord`]s with their delivery
//!   times; unpacking a page is just parsing it ([`unpack_ib_page`])
//!   and ignoring any embedded internal page, exactly as the paper's
//!   sequential reads do.

use calliope_proto::record::PacketRecord;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::page::{DataPage, Geometry};
use calliope_types::error::Result;
use calliope_types::time::MediaTime;

/// Where a completed packet's bytes live, relative to the slice passed
/// to [`CbrPacketizer::feed_ranges`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketBytes {
    /// Stitched across a page boundary: the carried tail of earlier
    /// pages plus this page's head, materialized into one buffer.
    Stitched(Vec<u8>),
    /// Entirely inside the input slice — no copy was made.
    Range(std::ops::Range<usize>),
}

/// Chops a raw byte stream into fixed-size packets with calculated
/// delivery offsets.
#[derive(Debug)]
pub struct CbrPacketizer {
    schedule: CbrSchedule,
    carry: Vec<u8>,
    next_seq: u64,
}

impl CbrPacketizer {
    /// Creates a packetizer starting at packet 0.
    pub fn new(schedule: CbrSchedule) -> CbrPacketizer {
        CbrPacketizer {
            schedule,
            carry: Vec::new(),
            next_seq: 0,
        }
    }

    /// The calculated schedule in use.
    pub fn schedule(&self) -> CbrSchedule {
        self.schedule
    }

    /// The sequence number of the next packet to be produced.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Resets after a seek: subsequent bytes belong to packet `seq`
    /// onward. Any carried partial packet is discarded.
    pub fn reset(&mut self, seq: u64) {
        self.carry.clear();
        self.next_seq = seq;
    }

    /// Feeds the valid bytes of one page, returning completed packets
    /// as `(delivery offset, payload)` pairs.
    ///
    /// Copies every payload out; the zero-copy hot path is
    /// [`CbrPacketizer::feed_ranges`].
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<(MediaTime, Vec<u8>)> {
        self.feed_ranges(bytes)
            .into_iter()
            .map(|(off, pb)| match pb {
                PacketBytes::Stitched(v) => (off, v),
                PacketBytes::Range(r) => (off, bytes[r].to_vec()),
            })
            .collect()
    }

    /// Feeds the valid bytes of one page without copying packet bodies:
    /// a packet lying entirely inside `bytes` comes back as a
    /// [`PacketBytes::Range`] into it (the caller wraps the range around
    /// its refcounted page); only a packet stitched across a page
    /// boundary materializes the carried head into an owned buffer.
    pub fn feed_ranges(&mut self, bytes: &[u8]) -> Vec<(MediaTime, PacketBytes)> {
        let pkt = self.schedule.packet_bytes as usize;
        let mut out = Vec::with_capacity((self.carry.len() + bytes.len()) / pkt);
        let mut at = 0;
        if !self.carry.is_empty() {
            if self.carry.len() + bytes.len() < pkt {
                self.carry.extend_from_slice(bytes);
                return out;
            }
            let take = pkt - self.carry.len();
            let mut head = std::mem::take(&mut self.carry);
            head.extend_from_slice(&bytes[..take]);
            out.push((
                self.schedule.offset_of(self.next_seq),
                PacketBytes::Stitched(head),
            ));
            self.next_seq += 1;
            at = take;
        }
        while bytes.len() - at >= pkt {
            out.push((
                self.schedule.offset_of(self.next_seq),
                PacketBytes::Range(at..at + pkt),
            ));
            self.next_seq += 1;
            at += pkt;
        }
        self.carry.extend_from_slice(&bytes[at..]);
        out
    }

    /// Flushes the final short packet at end of stream, if any.
    pub fn flush(&mut self) -> Option<(MediaTime, Vec<u8>)> {
        if self.carry.is_empty() {
            return None;
        }
        let payload = std::mem::take(&mut self.carry);
        let offset = self.schedule.offset_of(self.next_seq);
        self.next_seq += 1;
        Some((offset, payload))
    }
}

/// Parses one IB-tree data page into its packet records (the embedded
/// internal page, if present, rides along and is ignored).
pub fn unpack_ib_page(geo: &Geometry, page: &[u8]) -> Result<Vec<PacketRecord>> {
    Ok(DataPage::decode(geo, page)?.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_storage::page::DataPageBuilder;
    use calliope_types::time::BitRate;
    use proptest::prelude::*;

    fn sched() -> CbrSchedule {
        CbrSchedule::new(BitRate::from_kbps(1500), 4096)
    }

    #[test]
    fn exact_multiple_pages_packetize_cleanly() {
        let mut p = CbrPacketizer::new(sched());
        let page = vec![7u8; 4096 * 3];
        let pkts = p.feed(&page);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].0, MediaTime::ZERO);
        assert_eq!(pkts[1].0, sched().offset_of(1));
        assert!(pkts.iter().all(|(_, b)| b.len() == 4096));
        assert!(p.flush().is_none());
    }

    #[test]
    fn carry_stitches_across_pages() {
        let mut p = CbrPacketizer::new(sched());
        // 6000 bytes: one full packet + 1904 carried.
        assert_eq!(p.feed(&vec![1u8; 6000]).len(), 1);
        // 2192 more completes the second packet exactly.
        let pkts = p.feed(&vec![2u8; 2192]);
        assert_eq!(pkts.len(), 1);
        let (_, payload) = &pkts[0];
        assert_eq!(payload.len(), 4096);
        assert!(payload[..1904].iter().all(|&b| b == 1));
        assert!(payload[1904..].iter().all(|&b| b == 2));
    }

    #[test]
    fn flush_emits_trailing_short_packet() {
        let mut p = CbrPacketizer::new(sched());
        p.feed(&vec![0u8; 4096 + 100]);
        let (off, payload) = p.flush().unwrap();
        assert_eq!(payload.len(), 100);
        assert_eq!(off, sched().offset_of(1));
        assert!(p.flush().is_none(), "flush is one-shot");
    }

    #[test]
    fn reset_restarts_sequence_after_seek() {
        let mut p = CbrPacketizer::new(sched());
        p.feed(&vec![0u8; 5000]);
        p.reset(100);
        assert_eq!(p.next_seq(), 100);
        let pkts = p.feed(&vec![0u8; 4096]);
        assert_eq!(pkts[0].0, sched().offset_of(100));
    }

    #[test]
    fn feed_ranges_avoids_copies_for_aligned_packets() {
        let mut p = CbrPacketizer::new(sched());
        // First page: two whole packets in place, 1000 bytes carried.
        let page1 = vec![1u8; 4096 * 2 + 1000];
        let pkts = p.feed_ranges(&page1);
        assert_eq!(
            pkts.iter().map(|(_, pb)| pb.clone()).collect::<Vec<_>>(),
            vec![PacketBytes::Range(0..4096), PacketBytes::Range(4096..8192)]
        );
        // Second page: the straddling packet is stitched (the only copy),
        // the rest are ranges again.
        let page2 = vec![2u8; 4096 * 2 - 1000];
        let pkts = p.feed_ranges(&page2);
        assert_eq!(pkts.len(), 2);
        match &pkts[0].1 {
            PacketBytes::Stitched(head) => {
                assert_eq!(head.len(), 4096);
                assert!(head[..1000].iter().all(|&b| b == 1));
                assert!(head[1000..].iter().all(|&b| b == 2));
            }
            other => panic!("expected stitched head, got {other:?}"),
        }
        assert_eq!(pkts[1].1, PacketBytes::Range(3096..7192));
        assert!(p.flush().is_none(), "no tail left behind");
    }

    #[test]
    fn unpack_ignores_embedded_internal_page() {
        let geo = Geometry::tiny();
        let mut b = DataPageBuilder::new(geo, true);
        let rec = PacketRecord::media(MediaTime(5), vec![1, 2, 3]);
        b.push(&rec).unwrap();
        let internal = calliope_storage::page::InternalPage {
            entries: vec![(0, 0)],
        };
        let page = b.finish(Some(&internal)).unwrap();
        let records = unpack_ib_page(&geo, &page).unwrap();
        assert_eq!(records, vec![rec]);
    }

    #[test]
    fn unpack_rejects_garbage() {
        let geo = Geometry::tiny();
        assert!(unpack_ib_page(&geo, &vec![0u8; geo.page_size]).is_err());
        assert!(unpack_ib_page(&geo, &[1, 2, 3]).is_err());
    }

    proptest! {
        #[test]
        fn prop_no_bytes_lost_or_duplicated(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..10_000), 1..20)) {
            let mut p = CbrPacketizer::new(sched());
            let mut all_in = Vec::new();
            let mut all_out = Vec::new();
            for c in &chunks {
                all_in.extend_from_slice(c);
                for (_, payload) in p.feed(c) {
                    all_out.extend_from_slice(&payload);
                }
            }
            if let Some((_, tail)) = p.flush() {
                all_out.extend_from_slice(&tail);
            }
            prop_assert_eq!(all_out, all_in);
        }

        #[test]
        fn prop_offsets_are_monotone(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..5_000), 1..10)) {
            let mut p = CbrPacketizer::new(sched());
            let mut last = None;
            for c in &chunks {
                for (off, _) in p.feed(c) {
                    if let Some(prev) = last {
                        prop_assert!(off > prev);
                    }
                    last = Some(off);
                }
            }
        }
    }
}
