//! The interacting-resource model of one MSU PC.
//!
//! Calibrated against the paper's own published component measurements:
//!
//! * memory system: read 53 / write 25 / copy 18 MB/s (§3.2.3), with an
//!   overhead factor for instruction fetches and cache misses (the paper
//!   measured 6.3 MB/s on a path computed at 7.5 MB/s);
//! * network send path: per-packet CPU cost plus a memory occupancy of
//!   `copy + checksum-read + NIC-DMA-read` per byte, then the FDDI wire;
//! * disk path: seek + rotation + controller overhead (disk held), media
//!   transfer (disk *and* its SCSI host bus adapter held — the chain is
//!   the shared medium), EISA DMA into memory (memory held), then a
//!   completion interrupt on the CPU;
//! * the §3.1 hardware bug: with two HBAs active, `in`/`out`
//!   instructions stall — the paper measured the 4 µs timer-read
//!   sequence "occasionally" taking 1 ms with one HBA busy and "often"
//!   20 ms with two. Modeled as random CPU stalls on every CPU
//!   acquisition plus a per-I/O driver port-I/O penalty.
//!
//! The model is deliberately *not* a cycle-accurate Pentium; it is the
//! smallest resource network that reproduces the structure of Table 1
//! (who saturates first and how the combinations interfere) and the
//! knees of Graphs 1 and 2.

use crate::engine::{EventQueue, SimTime, Utilization};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Disk mechanism parameters (Seagate Barracuda-class, 1995).
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Media transfer rate in MB/s (1 MB/s = 1 byte/µs).
    pub media_mb_s: f64,
    /// Spindle speed.
    pub rpm: f64,
    /// Head settle time, ms (paid on every repositioning).
    pub settle_ms: f64,
    /// Full-stroke seek adder, ms: `seek = settle + stroke·√(d/D)`.
    pub stroke_ms: f64,
    /// Per-command controller/driver overhead, ms.
    pub overhead_ms: f64,
    /// Position space (block addresses) used for seek distances.
    pub positions: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        // Calibrated so a stream of random 256 KB reads sustains
        // ~3.6 MB/s, the paper's single-disk figure, at ~70% of the
        // media rate (paper §2.3.3).
        DiskParams {
            media_mb_s: 4.45,
            rpm: 7200.0,
            settle_ms: 4.0,
            stroke_ms: 8.0,
            overhead_ms: 6.0,
            positions: 8192,
        }
    }
}

impl DiskParams {
    /// Seek time for a head movement of `distance` positions.
    pub fn seek_ms(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        self.settle_ms + self.stroke_ms * (distance as f64 / self.positions as f64).sqrt()
    }

    /// Average rotational latency (half a revolution), ms.
    pub fn avg_rotation_ms(&self) -> f64 {
        60_000.0 / self.rpm / 2.0
    }

    /// Media transfer time for `bytes`, ms.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / self.media_mb_s / 1_000.0
    }

    /// Expected service time of a random 256 KB read, ms (for
    /// admission-control math; the simulation samples instead).
    pub fn expected_service_ms(&self, bytes: u64) -> f64 {
        // E[√(d/D)] for d uniform on [0,D] is 2/3.
        let avg_seek = self.settle_ms + self.stroke_ms * (2.0 / 3.0);
        avg_seek + self.avg_rotation_ms() + self.transfer_ms(bytes) + self.overhead_ms
    }
}

/// All machine parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Memory read bandwidth, MB/s (paper: 53).
    pub mem_read_mb_s: f64,
    /// Memory write bandwidth, MB/s (paper: 25).
    pub mem_write_mb_s: f64,
    /// Memory copy bandwidth, MB/s (paper: 18).
    pub mem_copy_mb_s: f64,
    /// Multiplier on memory times for instruction fetch / cache effects
    /// (paper: computed 7.5 vs measured 6.3 MB/s ⇒ ~1.19–1.25).
    pub mem_overhead: f64,
    /// Fixed CPU time per packet send (syscall, MSU code, driver), µs.
    pub cpu_per_packet_us: f64,
    /// FDDI drain rate, MB/s (100 Mbit/s line rate less framing).
    pub wire_mb_s: f64,
    /// Per-packet wire overhead (token rotation, framing), µs.
    pub wire_per_packet_us: f64,
    /// Disk mechanism.
    pub disk: DiskParams,
    /// EISA DMA rate — the memory occupancy of disk transfers, MB/s.
    pub dma_mb_s: f64,
    /// Completion-interrupt CPU time, µs.
    pub interrupt_us: f64,
    /// One-HBA stall: probability and size (µs) per CPU acquisition.
    pub stall_one_hba_p: f64,
    /// One-HBA stall size, µs.
    pub stall_one_hba_us: f64,
    /// Two-HBA stall: probability and size per CPU acquisition.
    pub stall_multi_hba_p: f64,
    /// Two-HBA stall size, µs (paper: "often took 20 milliseconds").
    pub stall_multi_hba_us: f64,
    /// Extra driver port-I/O time per disk I/O when ≥2 HBAs are active,
    /// µs (several in/out sequences, each up to 20 ms).
    pub stall_per_io_multi_us: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            mem_read_mb_s: 53.0,
            mem_write_mb_s: 25.0,
            mem_copy_mb_s: 18.0,
            mem_overhead: 1.22,
            cpu_per_packet_us: 100.0,
            wire_mb_s: 11.9,
            wire_per_packet_us: 15.0,
            disk: DiskParams::default(),
            dma_mb_s: 9.6,
            interrupt_us: 400.0,
            stall_one_hba_p: 0.05,
            stall_one_hba_us: 1_000.0,
            stall_multi_hba_p: 0.045,
            stall_multi_hba_us: 20_000.0,
            stall_per_io_multi_us: 17_000.0,
        }
    }
}

impl MachineParams {
    /// Memory time per byte of the synchronous part of one packet send
    /// (copy into an mbuf plus the UDP checksum read), µs. The NIC's
    /// outbound DMA read happens asynchronously and is charged to the
    /// memory system as pure contention.
    pub fn send_mem_us_per_byte(&self) -> f64 {
        (1.0 / self.mem_copy_mb_s + 1.0 / self.mem_read_mb_s) * self.mem_overhead
    }

    /// Memory occupancy per byte of the NIC's outbound DMA read, µs.
    pub fn nic_dma_mem_us_per_byte(&self) -> f64 {
        1.0 / self.mem_read_mb_s * self.mem_overhead
    }

    /// Memory time per byte of disk DMA, µs.
    pub fn dma_mem_us_per_byte(&self) -> f64 {
        1.0 / self.dma_mb_s
    }
}

/// A packet being pushed down the send path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendJob {
    /// Caller-meaningful stream index.
    pub stream: usize,
    /// Caller-meaningful sequence number.
    pub seq: u64,
    /// Delivery deadline.
    pub due: SimTime,
    /// Packet bytes.
    pub bytes: u32,
}

/// A disk I/O moving through mech → bus → DMA → interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoJob {
    /// Which disk.
    pub disk: usize,
    /// Caller-meaningful stream index (or sentinel).
    pub stream: usize,
    /// Transfer size.
    pub bytes: u32,
    /// Target position, for seek distances.
    pub pos: u64,
}

/// Events the machine schedules for itself; `External` is free for the
/// experiment driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ev {
    /// CPU finished its current item.
    CpuDone,
    /// Memory system finished its current item.
    MemDone,
    /// Wire finished its current packet.
    WireDone,
    /// HBA `i` finished its current bus transfer.
    HbaDone(usize),
    /// Disk `i` finished its mechanism phase.
    DiskDone(usize),
    /// A DMA slice becomes due on the memory system (`nic` selects the
    /// NIC-read vs disk-write rate).
    MemContention {
        /// Slice size.
        bytes: u32,
        /// True for NIC outbound DMA, false for disk DMA.
        nic: bool,
    },
    /// Experiment-defined event.
    External(u64),
}

/// Granularity at which DMA contention is charged to the memory system.
/// Real memory interleaves requests at cache-line granularity; 16 KB
/// slices keep the event count manageable while preventing a 256 KB DMA
/// from head-of-line-blocking a 4 KB packet copy for a whole block time.
pub const DMA_CHUNK: u32 = 16 * 1024;

/// Terminal completions the driver must react to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// A packet's user-space copy finished (the synchronous `sendto`
    /// returned) — a ttcp-style sender may now prepare the next packet.
    CopyDone(SendJob),
    /// A packet left the wire.
    PacketDelivered(SendJob),
    /// A disk I/O fully completed (interrupt handled).
    IoComplete(IoJob),
}

#[derive(Debug)]
enum CpuItem {
    Send(SendJob),
    Interrupt(IoJob),
}

#[derive(Debug)]
enum MemItem {
    Copy(SendJob),
    /// Disk DMA: pure memory-bus contention, concurrent with the SCSI
    /// bus phase; carries no continuation.
    Dma(u32),
    /// NIC outbound DMA: pure contention, concurrent with the wire.
    NicDma(u32),
}

struct Serial<T> {
    busy: Option<T>,
    queue: VecDeque<T>,
    util: Utilization,
}

impl<T> Serial<T> {
    fn new() -> Self {
        Serial {
            busy: None,
            queue: VecDeque::new(),
            util: Utilization::default(),
        }
    }
}

struct DiskState {
    /// In mech or bus phase (a disk is held through its bus transfer).
    busy: bool,
    /// The job in its mech phase, if any.
    inflight: Option<IoJob>,
    queue: VecDeque<IoJob>,
    head: u64,
    util: Utilization,
    bytes_done: u64,
}

/// Aggregate counters for throughput reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineStats {
    /// Bytes that completed the wire.
    pub wire_bytes: u64,
    /// Packets that completed the wire.
    pub wire_packets: u64,
    /// Disk I/Os fully completed.
    pub ios: u64,
    /// Total stall time injected, ns.
    pub stall_ns: u64,
}

/// The simulated PC.
pub struct Machine {
    /// Parameters (public so experiments can read calibration values).
    pub params: MachineParams,
    rng: StdRng,
    multi_hba: bool,
    cpu: Serial<CpuItem>,
    mem: Serial<MemItem>,
    wire: Serial<SendJob>,
    hbas: Vec<Serial<IoJob>>,
    disks: Vec<DiskState>,
    disk_hba: Vec<usize>,
    stats: MachineStats,
}

impl Machine {
    /// Builds a machine with `disk_hba[i]` = the HBA of disk `i`.
    /// The stall bug arms itself when the topology uses two or more
    /// HBAs.
    pub fn new(params: MachineParams, disk_hba: Vec<usize>, seed: u64) -> Machine {
        let hba_count = disk_hba.iter().copied().max().map_or(0, |m| m + 1);
        let mut hbas_used = vec![false; hba_count];
        for &h in &disk_hba {
            hbas_used[h] = true;
        }
        let multi_hba = hbas_used.iter().filter(|u| **u).count() >= 2;
        Machine {
            params,
            rng: StdRng::seed_from_u64(seed),
            multi_hba,
            cpu: Serial::new(),
            mem: Serial::new(),
            wire: Serial::new(),
            hbas: (0..hba_count).map(|_| Serial::new()).collect(),
            disks: disk_hba
                .iter()
                .map(|_| DiskState {
                    busy: false,
                    inflight: None,
                    queue: VecDeque::new(),
                    head: 0,
                    util: Utilization::default(),
                    bytes_done: 0,
                })
                .collect(),
            disk_hba,
            stats: MachineStats::default(),
        }
    }

    /// True if the two-HBA stall bug is active for this topology.
    pub fn multi_hba(&self) -> bool {
        self.multi_hba
    }

    /// Aggregate counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Bytes read by disk `i` so far.
    pub fn disk_bytes(&self, i: usize) -> u64 {
        self.disks[i].bytes_done
    }

    /// CPU busy fraction over `[0, total]`.
    pub fn cpu_utilization(&self, total: SimTime) -> f64 {
        self.cpu.util.fraction(total)
    }

    /// Memory-system busy fraction over `[0, total]`.
    pub fn mem_utilization(&self, total: SimTime) -> f64 {
        self.mem.util.fraction(total)
    }

    /// Disk `i` busy fraction over `[0, total]`.
    pub fn disk_utilization(&self, i: usize, total: SimTime) -> f64 {
        self.disks[i].util.fraction(total)
    }

    fn stall_us(&mut self) -> f64 {
        let (p, len) = if self.multi_hba {
            (
                self.params.stall_multi_hba_p,
                self.params.stall_multi_hba_us,
            )
        } else {
            (self.params.stall_one_hba_p, self.params.stall_one_hba_us)
        };
        if self.rng.gen_bool(p) {
            self.stats.stall_ns += (len * 1_000.0) as u64;
            len
        } else {
            0.0
        }
    }

    /// Queues a packet for sending.
    pub fn submit_send(&mut self, q: &mut EventQueue<Ev>, job: SendJob) {
        self.cpu.queue.push_back(CpuItem::Send(job));
        self.kick_cpu(q);
    }

    /// Queues a disk read.
    pub fn submit_io(&mut self, q: &mut EventQueue<Ev>, job: IoJob) {
        assert!(job.disk < self.disks.len(), "no such disk");
        self.disks[job.disk].queue.push_back(job);
        self.kick_disk(q, job.disk);
    }

    /// Pending + in-flight I/Os on disk `i` (drivers use this to keep
    /// one I/O outstanding per duty-cycle slot).
    pub fn disk_backlog(&self, i: usize) -> usize {
        self.disks[i].queue.len() + usize::from(self.disks[i].busy)
    }

    fn kick_cpu(&mut self, q: &mut EventQueue<Ev>) {
        if self.cpu.busy.is_some() {
            return;
        }
        let Some(item) = self.cpu.queue.pop_front() else {
            return;
        };
        let base = match &item {
            CpuItem::Send(_) => self.params.cpu_per_packet_us,
            CpuItem::Interrupt(_) => self.params.interrupt_us,
        };
        let dur = SimTime::from_us_f64(base + self.stall_us());
        self.cpu.util.add(dur);
        self.cpu.busy = Some(item);
        q.schedule_in(dur, Ev::CpuDone);
    }

    fn kick_mem(&mut self, q: &mut EventQueue<Ev>) {
        if self.mem.busy.is_some() {
            return;
        }
        let Some(item) = self.mem.queue.pop_front() else {
            return;
        };
        let us = match &item {
            MemItem::Copy(job) => job.bytes as f64 * self.params.send_mem_us_per_byte(),
            MemItem::Dma(bytes) => *bytes as f64 * self.params.dma_mem_us_per_byte(),
            MemItem::NicDma(bytes) => *bytes as f64 * self.params.nic_dma_mem_us_per_byte(),
        };
        let dur = SimTime::from_us_f64(us);
        self.mem.util.add(dur);
        self.mem.busy = Some(item);
        q.schedule_in(dur, Ev::MemDone);
    }

    fn kick_wire(&mut self, q: &mut EventQueue<Ev>) {
        if self.wire.busy.is_some() {
            return;
        }
        let Some(job) = self.wire.queue.pop_front() else {
            return;
        };
        let us = job.bytes as f64 / self.params.wire_mb_s + self.params.wire_per_packet_us;
        let dur = SimTime::from_us_f64(us);
        self.wire.util.add(dur);
        // The NIC reads the frame out of host memory while transmitting,
        // charged in slices spread across the transmission.
        let chunks = job.bytes.div_ceil(DMA_CHUNK);
        let step = us / chunks as f64;
        let mut left = job.bytes;
        for i in 0..chunks {
            let take = left.min(DMA_CHUNK);
            left -= take;
            q.schedule_in(
                SimTime::from_us_f64(step * i as f64),
                Ev::MemContention {
                    bytes: take,
                    nic: true,
                },
            );
        }
        self.wire.busy = Some(job);
        q.schedule_in(dur, Ev::WireDone);
    }

    fn kick_disk(&mut self, q: &mut EventQueue<Ev>, i: usize) {
        if self.disks[i].busy {
            return;
        }
        let Some(job) = self.disks[i].queue.pop_front() else {
            return;
        };
        let distance = self.disks[i].head.abs_diff(job.pos);
        let rotation = self
            .rng
            .gen_range(0.0..2.0 * self.params.disk.avg_rotation_ms());
        let mut mech_ms =
            self.params.disk.seek_ms(distance) + rotation + self.params.disk.overhead_ms;
        if self.multi_hba {
            // Driver port-I/O stalls while issuing the command (§3.1).
            mech_ms += self.params.stall_per_io_multi_us / 1_000.0;
        }
        self.disks[i].head = job.pos;
        self.disks[i].busy = true;
        // Utilization for the mech part is booked here; the disk stays
        // held through its bus phase, booked in kick_hba.
        let dur = SimTime::from_us_f64(mech_ms * 1_000.0);
        self.disks[i].util.add(dur);
        self.disks[i].inflight = Some(job);
        q.schedule_in(dur, Ev::DiskDone(i));
    }

    fn on_disk_done(&mut self, q: &mut EventQueue<Ev>, i: usize) {
        let job = self.disks[i]
            .inflight
            .take()
            .expect("mech phase had an in-flight job");
        let hba = self.disk_hba[i];
        self.hbas[hba].queue.push_back(job);
        self.kick_hba(q, hba);
    }

    fn kick_hba(&mut self, q: &mut EventQueue<Ev>, h: usize) {
        if self.hbas[h].busy.is_some() {
            return;
        }
        let Some(job) = self.hbas[h].queue.pop_front() else {
            return;
        };
        let us = job.bytes as f64 / self.params.disk.media_mb_s;
        let dur = SimTime::from_us_f64(us);
        self.hbas[h].util.add(dur);
        self.disks[job.disk].util.add(dur); // disk held through its bus phase
                                            // The EISA DMA into host memory proceeds concurrently with the
                                            // bus transfer; it is charged to the memory system as contention,
                                            // in slices spread across the transfer (a burst enqueued at once
                                            // would head-of-line-block packet copies for a whole block time).
        let chunks = job.bytes.div_ceil(DMA_CHUNK);
        let step = us / chunks as f64;
        let mut left = job.bytes;
        for i in 0..chunks {
            let take = left.min(DMA_CHUNK);
            left -= take;
            q.schedule_in(
                SimTime::from_us_f64(step * i as f64),
                Ev::MemContention {
                    bytes: take,
                    nic: false,
                },
            );
        }
        self.hbas[h].busy = Some(job);
        q.schedule_in(dur, Ev::HbaDone(h));
    }

    /// Handles a machine event, returning any terminal completions.
    ///
    /// `Ev::External` is the driver's business and must not be passed
    /// here.
    pub fn handle(&mut self, q: &mut EventQueue<Ev>, ev: Ev) -> Vec<Completion> {
        let mut out = Vec::new();
        match ev {
            Ev::CpuDone => {
                match self.cpu.busy.take().expect("cpu completion without a job") {
                    CpuItem::Send(job) => {
                        self.mem.queue.push_back(MemItem::Copy(job));
                        self.kick_mem(q);
                    }
                    CpuItem::Interrupt(job) => {
                        self.stats.ios += 1;
                        out.push(Completion::IoComplete(job));
                    }
                }
                self.kick_cpu(q);
            }
            Ev::MemDone => {
                match self.mem.busy.take().expect("mem completion without a job") {
                    MemItem::Copy(job) => {
                        out.push(Completion::CopyDone(job));
                        self.wire.queue.push_back(job);
                        self.kick_wire(q);
                    }
                    MemItem::Dma(_) | MemItem::NicDma(_) => {}
                }
                self.kick_mem(q);
            }
            Ev::WireDone => {
                let job = self
                    .wire
                    .busy
                    .take()
                    .expect("wire completion without a job");
                self.stats.wire_bytes += job.bytes as u64;
                self.stats.wire_packets += 1;
                out.push(Completion::PacketDelivered(job));
                self.kick_wire(q);
            }
            Ev::HbaDone(h) => {
                let job = self.hbas[h]
                    .busy
                    .take()
                    .expect("hba completion without a job");
                // Bus phase over: the disk is free for its next I/O and
                // the completion interrupt fires.
                self.disks[job.disk].busy = false;
                self.disks[job.disk].bytes_done += job.bytes as u64;
                self.kick_disk(q, job.disk);
                self.cpu.queue.push_back(CpuItem::Interrupt(job));
                self.kick_cpu(q);
                self.kick_hba(q, h);
            }
            Ev::DiskDone(i) => self.on_disk_done(q, i),
            Ev::MemContention { bytes, nic } => {
                self.mem.queue.push_back(if nic {
                    MemItem::NicDma(bytes)
                } else {
                    MemItem::Dma(bytes)
                });
                self.kick_mem(q);
            }
            Ev::External(_) => unreachable!("External events belong to the driver"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: u32 = 256 * 1024;

    /// Runs a closed-loop random-read workload on one disk and returns
    /// MB/s.
    fn disk_only_throughput(disk_hba: Vec<usize>, which: usize, secs: u64) -> f64 {
        let mut m = Machine::new(MachineParams::default(), disk_hba, 42);
        let mut q = EventQueue::new();
        let n = m.disks.len();
        let mut rng = StdRng::seed_from_u64(7);
        for d in 0..n {
            let pos = rng.gen_range(0..m.params.disk.positions);
            m.submit_io(
                &mut q,
                IoJob {
                    disk: d,
                    stream: 0,
                    bytes: BLOCK,
                    pos,
                },
            );
        }
        let horizon = SimTime::from_secs(secs);
        while let Some((t, ev)) = q.pop() {
            if t > horizon {
                break;
            }
            for c in m.handle(&mut q, ev) {
                if let Completion::IoComplete(job) = c {
                    let pos = rng.gen_range(0..m.params.disk.positions);
                    m.submit_io(&mut q, IoJob { pos, ..job });
                }
            }
        }
        m.disk_bytes(which) as f64 / 1e6 / secs as f64
    }

    /// Runs a ttcp-style sender (next packet submitted when the copy
    /// returns) and returns MB/s.
    fn ttcp_throughput(disk_hba: Vec<usize>, with_disks: bool, secs: u64) -> f64 {
        let mut m = Machine::new(MachineParams::default(), disk_hba, 42);
        let mut q = EventQueue::new();
        let mut rng = StdRng::seed_from_u64(7);
        let n = m.disks.len();
        if with_disks {
            for d in 0..n {
                let pos = rng.gen_range(0..m.params.disk.positions);
                m.submit_io(
                    &mut q,
                    IoJob {
                        disk: d,
                        stream: 0,
                        bytes: BLOCK,
                        pos,
                    },
                );
            }
        }
        let mut seq = 0u64;
        m.submit_send(
            &mut q,
            SendJob {
                stream: 0,
                seq,
                due: SimTime::ZERO,
                bytes: 4096,
            },
        );
        let horizon = SimTime::from_secs(secs);
        while let Some((t, ev)) = q.pop() {
            if t > horizon {
                break;
            }
            if let Ev::External(_) = ev {
                continue;
            }
            for c in m.handle(&mut q, ev) {
                match c {
                    Completion::CopyDone(_) => {
                        seq += 1;
                        m.submit_send(
                            &mut q,
                            SendJob {
                                stream: 0,
                                seq,
                                due: SimTime::ZERO,
                                bytes: 4096,
                            },
                        );
                    }
                    Completion::IoComplete(job) if with_disks => {
                        let pos = rng.gen_range(0..m.params.disk.positions);
                        m.submit_io(&mut q, IoJob { pos, ..job });
                    }
                    _ => {}
                }
            }
        }
        m.stats().wire_bytes as f64 / 1e6 / secs as f64
    }

    #[test]
    fn single_disk_calibrates_near_3_6_mb_s() {
        let mb = disk_only_throughput(vec![0], 0, 30);
        assert!(
            (3.2..4.0).contains(&mb),
            "single-disk {mb} MB/s (paper: 3.6)"
        );
    }

    #[test]
    fn two_disks_one_hba_share_the_chain() {
        let mb0 = disk_only_throughput(vec![0, 0], 0, 30);
        assert!(
            (2.2..3.0).contains(&mb0),
            "per-disk {mb0} MB/s on a shared chain (paper: 2.8)"
        );
    }

    #[test]
    fn fddi_only_calibrates_near_8_5_mb_s() {
        let mb = ttcp_throughput(vec![], false, 20);
        assert!((7.8..9.3).contains(&mb), "ttcp {mb} MB/s (paper: 8.5)");
    }

    #[test]
    fn one_disk_plus_fddi_interferes_moderately() {
        let mb = ttcp_throughput(vec![0], true, 20);
        assert!(
            (5.0..7.0).contains(&mb),
            "fddi-with-1-disk {mb} MB/s (paper: 5.9)"
        );
    }

    #[test]
    fn two_hbas_crater_the_send_path() {
        let one_hba = ttcp_throughput(vec![0, 0], true, 20);
        let two_hba = ttcp_throughput(vec![0, 1], true, 20);
        assert!(
            two_hba < one_hba * 0.7,
            "two HBAs {two_hba} must crater vs one {one_hba} (paper: 2.3 vs 4.7)"
        );
        assert!(
            (1.5..3.5).contains(&two_hba),
            "two-HBA fddi {two_hba} (paper: 2.3)"
        );
    }

    #[test]
    fn multi_hba_flag_follows_topology() {
        assert!(!Machine::new(MachineParams::default(), vec![0, 0], 1).multi_hba());
        assert!(Machine::new(MachineParams::default(), vec![0, 1], 1).multi_hba());
        assert!(!Machine::new(MachineParams::default(), vec![], 1).multi_hba());
    }

    #[test]
    fn expected_service_time_matches_calibration() {
        let p = DiskParams::default();
        let ms = p.expected_service_ms(BLOCK as u64);
        // ~256 KB / 3.6 MB/s ≈ 72.8 ms.
        assert!((65.0..80.0).contains(&ms), "{ms} ms");
        // 256 KB transfers reach ~70% of the media rate (paper §2.3.3).
        let efficiency = p.transfer_ms(BLOCK as u64) / ms;
        assert!((0.62..0.78).contains(&efficiency), "{efficiency}");
    }

    #[test]
    fn seek_time_grows_sublinearly() {
        let p = DiskParams::default();
        assert_eq!(p.seek_ms(0), 0.0);
        let near = p.seek_ms(10);
        let far = p.seek_ms(8000);
        assert!(near < far);
        assert!(far < 2.0 * p.seek_ms(2000), "√ curve, not linear");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = disk_only_throughput(vec![0, 0], 0, 5);
        let b = disk_only_throughput(vec![0, 0], 0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn utilizations_are_sane() {
        let mut m = Machine::new(MachineParams::default(), vec![0], 1);
        let mut q = EventQueue::new();
        m.submit_io(
            &mut q,
            IoJob {
                disk: 0,
                stream: 0,
                bytes: BLOCK,
                pos: 100,
            },
        );
        let mut end = SimTime::ZERO;
        while let Some((t, ev)) = q.pop() {
            end = t;
            m.handle(&mut q, ev);
        }
        assert!(m.disk_utilization(0, end) > 0.5);
        assert!(m.cpu_utilization(end) > 0.0);
        assert!(m.mem_utilization(end) > 0.0);
        assert_eq!(m.stats().ios, 1);
    }
}
