//! Calibration driver for the MSU model: prints the Graph 1/2 shapes
//! at 60 s horizons so parameter changes can be sanity-checked quickly
//! (`cargo run -p calliope-sim --example debug_lateness --release`).
//! The full experiments live in `calliope-bench`.
use calliope_sim::msu_model::{run, MsuWorkload};

fn vbr_traces() -> Vec<Vec<(u64, u32)>> {
    calliope_media::nv::paper_files()
        .iter()
        .map(|p| {
            calliope_media::nv::generate(p, 60, 11)
                .into_iter()
                .map(|pkt| (pkt.time_us, pkt.payload.len() as u32))
                .collect()
        })
        .collect()
}

fn main() {
    for n in [2usize, 5, 22, 23, 24] {
        let r = run(&MsuWorkload::cbr(n, 60, 3));
        println!(
            "cbr n={n:2}  pkts={:7}  w20={:5.1}%  w50={:5.1}%  w150={:5.1}%  max={:6.1}ms mean={:5.2}ms  wire={:.2} disk={:.2} cpu={:.2} mem={:.2} starv={}",
            r.packets,
            r.cdf.pct_within_ms(20),
            r.cdf.pct_within_ms(50),
            r.cdf.pct_within_ms(150),
            r.cdf.max_ms(),
            r.cdf.mean_ms(),
            r.wire_mb_s, r.disk_mb_s, r.cpu_util, r.mem_util, r.starved
        );
        if n == 2 {
            // Tail of the curve to localize the >20 ms packets.
            for (ms, pct) in r.cdf.curve() {
                if (15..40).contains(&ms) && ms % 2 == 1 {
                    print!("  {ms}ms:{pct:.2}%");
                }
            }
            println!();
        }
    }

    let files = vbr_traces();
    for n in [11usize, 15, 16, 17, 20] {
        let r = run(&MsuWorkload::vbr(n, &files, 60, 3));
        println!(
            "vbr n={n:2}  pkts={:7}  w20={:5.1}%  w50={:5.1}%  w150={:5.1}%  max={:6.1}ms mean={:5.2}ms  wire={:.2} cpu={:.2} mem={:.2} starv={}",
            r.packets, r.cdf.pct_within_ms(20), r.cdf.pct_within_ms(50), r.cdf.pct_within_ms(150),
            r.cdf.max_ms(), r.cdf.mean_ms(), r.wire_mb_s, r.cpu_util, r.mem_util, r.starved
        );
    }
    // Single-file pathological case (paper: only 11 streams).
    let one = vec![files[2].clone()];
    for n in [11usize, 15] {
        let r = run(&MsuWorkload::vbr(n, &one, 60, 3));
        println!(
            "vbr-1file n={n:2}  w50={:5.1}%  max={:6.1}ms mean={:5.2}ms",
            r.cdf.pct_within_ms(50),
            r.cdf.max_ms(),
            r.cdf.mean_ms()
        );
    }
}
