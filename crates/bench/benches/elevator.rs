//! E7 — §2.3.3: elevator vs. round-robin disk-head scheduling.
//!
//! "Using a simple program that simulated 24 concurrent users reading
//! random 256 KByte disk blocks, we found that an elevator scheduling
//! algorithm improves throughput by only about 6% for our disks."

use calliope_bench::banner;
use calliope_sim::diskpolicy::compare;
use calliope_sim::machine::DiskParams;

fn main() {
    banner("E7", "Elevator vs. round-robin disk scheduling", "§2.3.3");
    let disk = DiskParams::default();
    let secs = if calliope_bench::quick() { 30 } else { 120 };

    println!(
        "{:>6} {:>10} | {:>8} {:>10} {:>10} | {:>8} {:>10} {:>10} | {:>7}",
        "users",
        "block",
        "rr MB/s",
        "rr seek",
        "rr svc ms",
        "el MB/s",
        "el seek",
        "el svc ms",
        "gain"
    );
    println!("{}", "-".repeat(104));
    for users in [2usize, 8, 24, 64] {
        let (rr, el, gain) = compare(disk, users, 256 * 1024, secs, 7);
        println!(
            "{:>6} {:>10} | {:>8.2} {:>10.0} {:>10.1} | {:>8.2} {:>10.0} {:>10.1} | {:>6.1}%",
            users,
            "256 KB",
            rr.mb_s,
            rr.mean_seek_distance,
            rr.mean_service_ms,
            el.mb_s,
            el.mean_seek_distance,
            el.mean_service_ms,
            gain * 100.0
        );
    }
    println!();
    println!("The paper's configuration — 24 users, 256 KB blocks — and its flip side:");
    let (_, _, gain_paper) = compare(disk, 24, 256 * 1024, secs, 7);
    println!(
        "  24 users, 256 KB: elevator gains {:.1}%   (paper: ~6%)",
        gain_paper * 100.0
    );
    for block in [8 * 1024u64, 64 * 1024] {
        let (_, _, gain) = compare(disk, 24, block, secs, 7);
        println!(
            "  24 users, {:>3} KB: elevator gains {:>5.1}%   (small blocks make scheduling matter —",
            block / 1024,
            gain * 100.0
        );
    }
    println!("   the 256 KB design choice is what makes head scheduling unnecessary)");
}
