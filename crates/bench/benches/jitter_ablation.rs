//! E10 — §2.2.1: the jitter budget — timer granularity and double
//! buffering.
//!
//! "FreeBSD timers have only 10 ms granularity, so delivery times are
//! only approximate. … Calliope will not add more than 150 milliseconds
//! of jitter in the worst case."

use calliope_bench::{banner, horizon_secs};
use calliope_sim::msu_model::{run, MsuWorkload};

fn main() {
    banner(
        "E10",
        "Jitter budget: timer granularity and buffering (22 CBR streams)",
        "§2.2.1",
    );
    let secs = horizon_secs().min(120);

    println!("timer-granularity sweep (double buffering, 22 streams):");
    println!(
        "{:>10} | {:>9} {:>9} {:>9} {:>9}",
        "timer", "mean(ms)", "max(ms)", "≤50ms", "≤150ms"
    );
    println!("{}", "-".repeat(56));
    for timer_ms in [1u64, 5, 10, 20, 50] {
        let mut w = MsuWorkload::cbr(22, secs, 42);
        w.timer_ms = timer_ms;
        let r = run(&w);
        println!(
            "{:>7} ms | {:>9.2} {:>9.1} {:>8.1}% {:>8.1}%",
            timer_ms,
            r.cdf.mean_ms(),
            r.cdf.max_ms(),
            r.cdf.pct_within_ms(50),
            r.cdf.pct_within_ms(150),
        );
    }
    println!("  (paper: 10 ms timers; ≤150 ms worst-case jitter at 22 streams,");
    println!("   absorbed by a 200 KB client buffer holding >1 s of video)");
    println!();

    println!("buffering sweep (10 ms timer):");
    println!(
        "{:>14} | {:>8} | {:>9} {:>9} {:>9} {:>10}",
        "buffers", "streams", "mean(ms)", "max(ms)", "≤50ms", "starvation"
    );
    println!("{}", "-".repeat(72));
    for n in [20usize, 22] {
        for buffers in [1u32, 2, 3] {
            let mut w = MsuWorkload::cbr(n, secs, 42);
            w.buffer_blocks = buffers;
            let r = run(&w);
            println!(
                "{:>8} × 256K | {:>8} | {:>9.2} {:>9.1} {:>8.1}% {:>10}",
                buffers,
                n,
                r.cdf.mean_ms(),
                r.cdf.max_ms(),
                r.cdf.pct_within_ms(50),
                r.starved,
            );
        }
    }
    println!("  (double buffering is the paper's design: the disk loads one");
    println!("   256 KB buffer while the network empties the other, §2.2.1)");
}
