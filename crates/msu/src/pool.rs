//! A fixed-size recycling page pool.
//!
//! The MSU "does its own memory management" (paper §2.3.3): in steady
//! state the disk process should never allocate. [`PagePool`] owns a
//! set of block-size buffers; the disk thread checks one out
//! ([`PagePool::get`]), fills it from disk, and freezes it into a
//! refcounted [`PageData`] that travels through the SPSC ring to the
//! network thread. When the last reference drops — the page was fully
//! packetized, or the ring was drained on stream teardown — the buffer
//! returns to the pool automatically.
//!
//! The pool is grown only on the control path ([`PagePool::ensure_capacity`]
//! at stream admission), so the steady-state data path is allocation-free.
//! If the pool is nonetheless empty at `get` (a sizing bug, or transient
//! pressure), it falls back to the heap and counts the event rather than
//! stalling the duty cycle.

use calliope_check::sync::atomic::{AtomicU64, Ordering};
use calliope_check::sync::{Arc, Mutex};
use std::ops::Deref;

/// Point-in-time accounting of a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer size, bytes.
    pub page_size: usize,
    /// Total buffers the pool owns (free + checked out).
    pub capacity: u64,
    /// Buffers currently on the free list.
    pub free: u64,
    /// Buffers currently checked out.
    pub outstanding: u64,
    /// Times `get` found the free list empty and heap-allocated.
    pub heap_fallbacks: u64,
}

struct PoolInner {
    page_size: usize,
    free: Mutex<Vec<Vec<u8>>>,
    capacity: AtomicU64,
    outstanding: AtomicU64,
    heap_fallbacks: AtomicU64,
}

impl PoolInner {
    fn recycle(&self, buf: Vec<u8>) {
        // relaxed: statistics counter; the buffer handoff itself is
        // synchronized by the free-list mutex below.
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().push(buf);
    }
}

/// A shared handle to a pool of block-size buffers.
#[derive(Clone)]
pub struct PagePool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for PagePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagePool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl PagePool {
    /// An empty pool of `page_size`-byte buffers (grow it with
    /// [`PagePool::ensure_capacity`]).
    pub fn new(page_size: usize) -> PagePool {
        PagePool {
            inner: Arc::new(PoolInner {
                page_size,
                free: Mutex::new(Vec::new()),
                capacity: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
                heap_fallbacks: AtomicU64::new(0),
            }),
        }
    }

    /// A pool pre-populated with `pages` buffers.
    pub fn with_capacity(page_size: usize, pages: u64) -> PagePool {
        let pool = PagePool::new(page_size);
        pool.ensure_capacity(pages);
        pool
    }

    /// Buffer size, bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Grows the pool until it owns at least `pages` buffers. Called on
    /// the control path (stream admission) — never on the duty cycle.
    pub fn ensure_capacity(&self, pages: u64) {
        let mut free = self.inner.free.lock();
        // relaxed: capacity is only written under the free-list mutex
        // (held here and implied by get's fallback being a fresh
        // allocation); the mutex orders the updates.
        while self.inner.capacity.load(Ordering::Relaxed) < pages {
            free.push(vec![0u8; self.inner.page_size]);
            // relaxed: see above.
            self.inner.capacity.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Checks a buffer out of the pool. Falls back to the heap (and
    /// counts it) when the free list is empty; the fallback buffer joins
    /// the pool when recycled, so sustained pressure grows the pool to
    /// the workload's true footprint instead of thrashing the allocator.
    pub fn get(&self) -> PooledBuf {
        let buf = self.inner.free.lock().pop();
        let buf = match buf {
            Some(b) => b,
            None => {
                // relaxed: statistics counters; no data is published
                // through them.
                self.inner.heap_fallbacks.fetch_add(1, Ordering::Relaxed);
                // relaxed: see above.
                self.inner.capacity.fetch_add(1, Ordering::Relaxed);
                vec![0u8; self.inner.page_size]
            }
        };
        // relaxed: statistics counter.
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            buf,
            pool: Some(self.inner.clone()),
        }
    }

    /// Current accounting.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            page_size: self.inner.page_size,
            // relaxed: point-in-time statistics snapshot; the fields
            // are not read as a consistent transaction.
            capacity: self.inner.capacity.load(Ordering::Relaxed),
            free: self.inner.free.lock().len() as u64,
            // relaxed: see above.
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            // relaxed: see above.
            heap_fallbacks: self.inner.heap_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Returns and resets the heap-fallback count — the disk thread
    /// drains this into its `pool_exhausted` metric once per cycle.
    pub fn drain_heap_fallbacks(&self) -> u64 {
        // relaxed: statistics counter; the swap itself is atomic, so no
        // increment is lost, only arbitrarily ordered against others.
        self.inner.heap_fallbacks.swap(0, Ordering::Relaxed)
    }
}

/// A uniquely-owned, mutable buffer checked out of a [`PagePool`].
///
/// Fill it, then [`PooledBuf::freeze`] it into a shareable [`PageData`].
/// Dropping it unfrozen returns the buffer to the pool.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.buf.len())
    }
}

impl PooledBuf {
    /// The whole buffer, writable.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Freezes the buffer into an immutable, refcounted page.
    pub fn freeze(mut self) -> PageData {
        PageData(Arc::new(SharedPage {
            buf: std::mem::take(&mut self.buf),
            pool: self.pool.take(),
        }))
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

struct SharedPage {
    buf: Vec<u8>,
    pool: Option<Arc<PoolInner>>,
}

impl Drop for SharedPage {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

/// An immutable, refcounted page. Clones share the same buffer — the
/// packetizer hands out `(PageData, Range)` pairs instead of copying —
/// and the buffer returns to its pool when the last clone drops.
#[derive(Clone)]
pub struct PageData(Arc<SharedPage>);

impl Deref for PageData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0.buf
    }
}

impl std::fmt::Debug for PageData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageData({} bytes)", self.0.buf.len())
    }
}

impl From<Vec<u8>> for PageData {
    /// Wraps a plain heap buffer (tests, control paths). Not pooled: the
    /// buffer is freed normally when the last clone drops.
    fn from(buf: Vec<u8>) -> PageData {
        PageData(Arc::new(SharedPage { buf, pool: None }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_freeze_and_recycle() {
        let pool = PagePool::with_capacity(64, 2);
        assert_eq!(pool.stats().free, 2);
        let mut a = pool.get();
        a.as_mut_slice()[0] = 0xAB;
        let page = a.freeze();
        assert_eq!(page[0], 0xAB);
        assert_eq!(page.len(), 64);
        let s = pool.stats();
        assert_eq!((s.free, s.outstanding), (1, 1));
        // Clones share the buffer; recycling waits for the last one.
        let clone = page.clone();
        drop(page);
        assert_eq!(pool.stats().outstanding, 1);
        drop(clone);
        let s = pool.stats();
        assert_eq!((s.free, s.outstanding, s.capacity), (2, 0, 2));
        assert_eq!(s.heap_fallbacks, 0);
    }

    #[test]
    fn unfrozen_checkout_returns_on_drop() {
        let pool = PagePool::with_capacity(16, 1);
        drop(pool.get());
        assert_eq!(pool.stats().free, 1);
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn exhaustion_falls_back_to_heap_and_adopts_the_buffer() {
        let pool = PagePool::with_capacity(16, 1);
        let a = pool.get();
        let b = pool.get(); // free list empty: heap fallback
        let s = pool.stats();
        assert_eq!(s.heap_fallbacks, 1);
        assert_eq!(s.outstanding, 2);
        assert_eq!(s.capacity, 2, "fallback buffer joins the pool");
        drop(a.freeze());
        drop(b.freeze());
        let s = pool.stats();
        assert_eq!((s.free, s.outstanding, s.capacity), (2, 0, 2));
        assert_eq!(pool.drain_heap_fallbacks(), 1);
        assert_eq!(pool.stats().heap_fallbacks, 0);
    }

    #[test]
    fn ensure_capacity_is_idempotent() {
        let pool = PagePool::new(8);
        pool.ensure_capacity(4);
        pool.ensure_capacity(2);
        pool.ensure_capacity(4);
        assert_eq!(pool.stats().capacity, 4);
        assert_eq!(pool.stats().free, 4);
    }

    #[test]
    fn no_leak_no_double_recycle_under_churn() {
        // Every checkout is returned exactly once, whatever the path
        // (drop unfrozen, drop frozen, drop the last of many clones) —
        // free + outstanding always equals capacity, and at teardown
        // every buffer is back on the free list.
        let pool = PagePool::with_capacity(32, 4);
        for round in 0..100 {
            let mut pages = Vec::new();
            for i in 0..4 {
                let mut b = pool.get();
                b.as_mut_slice()[0] = i as u8;
                if (round + i) % 3 == 0 {
                    drop(b); // unfrozen return
                } else {
                    pages.push(b.freeze());
                }
            }
            let clones: Vec<PageData> = pages.to_vec();
            let s = pool.stats();
            assert_eq!(s.capacity, s.free + s.outstanding, "round {round}");
            drop(pages);
            drop(clones);
        }
        let s = pool.stats();
        assert_eq!(s.outstanding, 0, "no leak");
        assert_eq!(s.free, s.capacity, "every buffer returned");
        assert_eq!(s.heap_fallbacks, 0, "pool never thrashed");
    }

    #[test]
    fn unpooled_pages_from_vec_are_plain() {
        let page: PageData = vec![1u8, 2, 3].into();
        assert_eq!(&page[..], &[1, 2, 3]);
        drop(page.clone());
        drop(page);
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = PagePool::with_capacity(8, 2);
        let p2 = pool.clone();
        let h = std::thread::spawn(move || {
            let b = p2.get().freeze();
            assert_eq!(b.len(), 8);
        });
        h.join().unwrap();
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.stats().free, 2);
    }
}
