//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! bounded/unbounded channels with the error types and blocking,
//! timeout, and non-blocking receive operations this workspace uses —
//! implemented with a `Mutex<VecDeque>` plus two condition variables.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending on a channel with no receivers.
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` on a disconnected, empty channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors returned by `recv_timeout`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// Errors returned by `try_recv`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on a disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for TryRecvError {}

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` messages (a capacity of
    /// zero is treated as one: true rendezvous channels are not needed
    /// here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every
        /// sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Receives a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                self.0.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            Iter(self)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u32>();
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn iterator_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.into_iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }
}
