//! On-disk layout constants and the superblock.
//!
//! Disk geometry (all sizes from the paper §2.2.1/§2.3.3):
//!
//! ```text
//! block 0                  superblock (only the first 4 KB are used)
//! blocks 1 ..= meta_end    metadata region: allocation bitmap + catalog
//! blocks meta_end+1 ..     data blocks (256 KB each)
//! ```
//!
//! The metadata region is sized at format time so that *all* metadata
//! fits; the file system keeps it entirely cached in memory and writes
//! it through on mutation, exactly because "large file block size …
//! decreases the size of the file system meta-data to the point that it
//! can be entirely cached in main memory".

use calliope_types::error::{Error, Result};

/// The data block ("page") size: 256 KB.
pub const BLOCK_SIZE: usize = 256 * 1024;

/// Size of an embedded IB-tree internal page: 28 KB.
pub const INTERNAL_PAGE_SIZE: usize = 28 * 1024;

/// Maximum keys per internal page (paper: "28 KByte internal pages (with
/// 1024 keys)").
pub const INTERNAL_PAGE_KEYS: usize = 1024;

/// Magic number identifying a Calliope MSU file system.
pub const FS_MAGIC: u32 = 0xCA11_F500;

/// On-disk format version.
pub const FS_VERSION: u32 = 1;

/// The superblock, stored at the start of block 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Total number of blocks on the device.
    pub num_blocks: u64,
    /// Number of metadata blocks following the superblock.
    pub meta_blocks: u64,
    /// The device's block size at format time (must equal [`BLOCK_SIZE`]).
    pub block_size: u32,
}

impl Superblock {
    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 4 + 4 + 8 + 8 + 4;

    /// Index of the first data block.
    pub fn first_data_block(&self) -> u64 {
        1 + self.meta_blocks
    }

    /// Number of usable data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.num_blocks.saturating_sub(self.first_data_block())
    }

    /// Serializes the superblock into the head of a block buffer.
    pub fn encode_into(&self, block: &mut [u8]) {
        assert!(block.len() >= Self::ENCODED_LEN);
        block[0..4].copy_from_slice(&FS_MAGIC.to_le_bytes());
        block[4..8].copy_from_slice(&FS_VERSION.to_le_bytes());
        block[8..16].copy_from_slice(&self.num_blocks.to_le_bytes());
        block[16..24].copy_from_slice(&self.meta_blocks.to_le_bytes());
        block[24..28].copy_from_slice(&self.block_size.to_le_bytes());
    }

    /// Reads a superblock back from block 0, validating magic and
    /// version.
    pub fn decode_from(block: &[u8]) -> Result<Superblock> {
        if block.len() < Self::ENCODED_LEN {
            return Err(Error::storage("superblock truncated"));
        }
        let magic = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
        if magic != FS_MAGIC {
            return Err(Error::storage(format!(
                "bad fs magic {magic:#x}: device is not a Calliope file system"
            )));
        }
        let version = u32::from_le_bytes(block[4..8].try_into().expect("4 bytes"));
        if version != FS_VERSION {
            return Err(Error::storage(format!(
                "fs version {version} unsupported (want {FS_VERSION})"
            )));
        }
        Ok(Superblock {
            num_blocks: u64::from_le_bytes(block[8..16].try_into().expect("8 bytes")),
            meta_blocks: u64::from_le_bytes(block[16..24].try_into().expect("8 bytes")),
            block_size: u32::from_le_bytes(block[24..28].try_into().expect("4 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(BLOCK_SIZE, 262_144);
        assert_eq!(INTERNAL_PAGE_SIZE, 28_672);
        assert_eq!(INTERNAL_PAGE_KEYS, 1024);
        // One internal page per 1024 data pages ⇒ internals appear in
        // ~0.1% of data pages, the paper's figure.
        let fraction = 1.0 / INTERNAL_PAGE_KEYS as f64;
        assert!(fraction < 0.0011);
    }

    #[test]
    fn superblock_round_trip() {
        let sb = Superblock {
            num_blocks: 8192,
            meta_blocks: 15,
            block_size: BLOCK_SIZE as u32,
        };
        let mut block = vec![0u8; 64];
        sb.encode_into(&mut block);
        assert_eq!(Superblock::decode_from(&block).unwrap(), sb);
        assert_eq!(sb.first_data_block(), 16);
        assert_eq!(sb.data_blocks(), 8192 - 16);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let sb = Superblock {
            num_blocks: 10,
            meta_blocks: 1,
            block_size: BLOCK_SIZE as u32,
        };
        let mut block = vec![0u8; 64];
        sb.encode_into(&mut block);
        let mut bad_magic = block.clone();
        bad_magic[0] ^= 1;
        assert!(Superblock::decode_from(&bad_magic).is_err());
        let mut bad_version = block.clone();
        bad_version[4] = 99;
        assert!(Superblock::decode_from(&bad_version).is_err());
        assert!(Superblock::decode_from(&block[..8]).is_err());
    }
}
