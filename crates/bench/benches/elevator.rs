//! E7 — §2.3.3: elevator vs. round-robin disk-head scheduling.
//!
//! "Using a simple program that simulated 24 concurrent users reading
//! random 256 KByte disk blocks, we found that an elevator scheduling
//! algorithm improves throughput by only about 6% for our disks."

use calliope_bench::banner;
use calliope_sim::diskpolicy::compare;
use calliope_sim::machine::DiskParams;
use calliope_storage::block::{BlockDevice, MemDisk, MeteredDevice};
use calliope_storage::{coalesce_runs, ElevatorState};

fn main() {
    banner("E7", "Elevator vs. round-robin disk scheduling", "§2.3.3");
    let disk = DiskParams::default();
    let secs = if calliope_bench::quick() { 30 } else { 120 };

    println!(
        "{:>6} {:>10} | {:>8} {:>10} {:>10} | {:>8} {:>10} {:>10} | {:>7}",
        "users",
        "block",
        "rr MB/s",
        "rr seek",
        "rr svc ms",
        "el MB/s",
        "el seek",
        "el svc ms",
        "gain"
    );
    println!("{}", "-".repeat(104));
    for users in [2usize, 8, 24, 64] {
        let (rr, el, gain) = compare(disk, users, 256 * 1024, secs, 7);
        println!(
            "{:>6} {:>10} | {:>8.2} {:>10.0} {:>10.1} | {:>8.2} {:>10.0} {:>10.1} | {:>6.1}%",
            users,
            "256 KB",
            rr.mb_s,
            rr.mean_seek_distance,
            rr.mean_service_ms,
            el.mb_s,
            el.mean_seek_distance,
            el.mean_service_ms,
            gain * 100.0
        );
    }
    println!();
    println!("The paper's configuration — 24 users, 256 KB blocks — and its flip side:");
    let (_, _, gain_paper) = compare(disk, 24, 256 * 1024, secs, 7);
    println!(
        "  24 users, 256 KB: elevator gains {:.1}%   (paper: ~6%)",
        gain_paper * 100.0
    );
    for block in [8 * 1024u64, 64 * 1024] {
        let (_, _, gain) = compare(disk, 24, block, secs, 7);
        println!(
            "  24 users, {:>3} KB: elevator gains {:>5.1}%   (small blocks make scheduling matter —",
            block / 1024,
            gain * 100.0
        );
    }
    println!("   the 256 KB design choice is what makes head scheduling unnecessary)");

    // The same contrast at the real device layer: 24 streams, each
    // claiming two adjacent pages per duty cycle, served round-robin as
    // single-block reads vs. SCAN-ordered coalesced batches.
    // MeteredDevice counts the blocks that rode a multi-block transfer
    // (`IoStats::batched_blocks`).
    let (rr, el) = metered_duty_cycles(24, 16);
    println!();
    println!("real device layer (MeteredDevice over MemDisk, 24 streams, read-ahead 2):");
    println!(
        "  round-robin:      seek {:>8} blocks, {:>4} transfers, {:>4} batched blocks",
        rr.seek_distance,
        rr.transfers(),
        rr.batched_blocks
    );
    println!(
        "  elevator-batched: seek {:>8} blocks, {:>4} transfers, {:>4} batched blocks",
        el.seek_distance,
        el.transfers(),
        el.batched_blocks
    );
}

/// Plays `cycles` duty cycles of 24 interleaved streams both ways and
/// returns `(round_robin, elevator_batched)` device stats.
fn metered_duty_cycles(
    streams: u64,
    cycles: u64,
) -> (
    calliope_storage::block::IoStats,
    calliope_storage::block::IoStats,
) {
    const BS: usize = 4096;
    const READ_AHEAD: u64 = 2;
    let pages = cycles * READ_AHEAD;
    let regions: Vec<u64> = (0..streams).map(|i| (i * 7 % streams) * pages).collect();
    let mut dev = MeteredDevice::new(MemDisk::new(BS, streams * pages));
    let mut bufs: Vec<Vec<u8>> = (0..streams * READ_AHEAD).map(|_| vec![0u8; BS]).collect();

    for cycle in 0..cycles {
        for region in &regions {
            for k in 0..READ_AHEAD {
                let b = region + cycle * READ_AHEAD + k;
                dev.read_block(b, &mut bufs[0]).expect("read");
            }
        }
    }
    let rr = dev.stats();
    dev.reset_stats();

    let mut elevator = ElevatorState::new();
    for cycle in 0..cycles {
        let mut addrs = Vec::with_capacity((streams * READ_AHEAD) as usize);
        for region in &regions {
            for k in 0..READ_AHEAD {
                addrs.push(region + cycle * READ_AHEAD + k);
            }
        }
        let order = elevator.plan(&addrs);
        let mut at = 0;
        for run in coalesce_runs(&addrs, &order) {
            let (chunk, _) = bufs[at..].split_at_mut(run.len());
            let mut refs: Vec<&mut [u8]> = chunk.iter_mut().map(|b| b.as_mut_slice()).collect();
            dev.read_blocks_into(run.start, &mut refs).expect("read");
            at += run.len();
        }
    }
    (rr, dev.stats())
}
