//! Block devices.
//!
//! The MSU file system "does its own memory management and uses raw disk
//! I/O" (paper §2.3.3). [`BlockDevice`] is that raw interface: fixed-size
//! block reads and writes, nothing else. Two implementations are
//! provided — [`FileDisk`], backed by a regular file standing in for a
//! raw partition, and [`MemDisk`] for tests — plus [`MeteredDevice`], a
//! wrapper that counts transfers and seek distance for the disk-layout
//! experiments (E7/E8 in DESIGN.md).

use calliope_types::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{IoSliceMut, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A raw, fixed-block-size storage device.
///
/// Blocks are numbered from zero. Implementations must reject
/// out-of-range indices and short buffers rather than panicking: a bad
/// request from one stream must not take down the MSU.
pub trait BlockDevice: Send {
    /// The device's block size in bytes.
    fn block_size(&self) -> usize;

    /// Total number of blocks.
    fn num_blocks(&self) -> u64;

    /// Reads block `idx` into `buf` (whose length must equal the block
    /// size).
    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()>;

    /// Reads the physically contiguous blocks `start .. start +
    /// bufs.len()` into `bufs`, one block per buffer. Implementations
    /// that can coalesce the run into a single transfer (one seek, one
    /// syscall) should; the default falls back to per-block reads.
    fn read_blocks_into(&mut self, start: u64, bufs: &mut [&mut [u8]]) -> Result<()> {
        for (i, buf) in bufs.iter_mut().enumerate() {
            self.read_block(start + i as u64, buf)?;
        }
        Ok(())
    }

    /// Writes `buf` (block-size bytes) to block `idx`.
    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()>;

    /// Flushes any buffered writes to stable storage.
    fn sync(&mut self) -> Result<()>;
}

fn check_batch(
    dev: &str,
    start: u64,
    bufs: &[&mut [u8]],
    block_size: usize,
    num_blocks: u64,
) -> Result<()> {
    let n = bufs.len() as u64;
    if start.checked_add(n).is_none_or(|end| end > num_blocks) {
        return Err(Error::storage(format!(
            "{dev}: blocks {start}..{} out of range (device has {num_blocks})",
            start.saturating_add(n)
        )));
    }
    for buf in bufs {
        if buf.len() != block_size {
            return Err(Error::storage(format!(
                "{dev}: batch buffer is {} bytes, block size is {block_size}",
                buf.len()
            )));
        }
    }
    Ok(())
}

fn check_args(dev: &str, idx: u64, len: usize, block_size: usize, num_blocks: u64) -> Result<()> {
    if len != block_size {
        return Err(Error::storage(format!(
            "{dev}: buffer is {len} bytes, block size is {block_size}"
        )));
    }
    if idx >= num_blocks {
        return Err(Error::storage(format!(
            "{dev}: block {idx} out of range (device has {num_blocks})"
        )));
    }
    Ok(())
}

/// A block device backed by an ordinary file.
///
/// Stands in for the raw SCSI partitions of the original system. The
/// backing file is created sparse at open time, so a "2 GB disk" costs
/// only the space actually written.
#[derive(Debug)]
pub struct FileDisk {
    file: File,
    block_size: usize,
    num_blocks: u64,
}

impl FileDisk {
    /// Creates (or truncates) a backing file for `num_blocks` blocks of
    /// `block_size` bytes.
    pub fn create(path: &Path, block_size: usize, num_blocks: u64) -> Result<FileDisk> {
        if block_size == 0 || num_blocks == 0 {
            return Err(Error::storage("disk geometry must be non-zero"));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(block_size as u64 * num_blocks)?;
        Ok(FileDisk {
            file,
            block_size,
            num_blocks,
        })
    }

    /// Opens an existing backing file, inferring the block count from its
    /// length.
    pub fn open(path: &Path, block_size: usize) -> Result<FileDisk> {
        if block_size == 0 {
            return Err(Error::storage("block size must be non-zero"));
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len % block_size as u64 != 0 {
            return Err(Error::storage(format!(
                "backing file length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(FileDisk {
            num_blocks: len / block_size as u64,
            file,
            block_size,
        })
    }
}

impl BlockDevice for FileDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        check_args(
            "file-disk",
            idx,
            buf.len(),
            self.block_size,
            self.num_blocks,
        )?;
        self.file
            .seek(SeekFrom::Start(idx * self.block_size as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        check_args(
            "file-disk",
            idx,
            buf.len(),
            self.block_size,
            self.num_blocks,
        )?;
        self.file
            .seek(SeekFrom::Start(idx * self.block_size as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn read_blocks_into(&mut self, start: u64, bufs: &mut [&mut [u8]]) -> Result<()> {
        check_batch("file-disk", start, bufs, self.block_size, self.num_blocks)?;
        if bufs.is_empty() {
            return Ok(());
        }
        self.file
            .seek(SeekFrom::Start(start * self.block_size as u64))?;
        let total = self.block_size * bufs.len();
        let done = {
            let mut slices: Vec<IoSliceMut<'_>> =
                bufs.iter_mut().map(|b| IoSliceMut::new(b)).collect();
            let n = self.file.read_vectored(&mut slices)?;
            if n == total {
                return Ok(());
            }
            // A short vectored read (rare for regular files) may have left
            // block `n / block_size` half-filled; re-read from there on.
            n / self.block_size
        };
        for (i, buf) in bufs.iter_mut().enumerate().skip(done) {
            self.file
                .seek(SeekFrom::Start((start + i as u64) * self.block_size as u64))?;
            self.file.read_exact(buf)?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory block device for tests and simulation.
#[derive(Debug, Clone)]
pub struct MemDisk {
    block_size: usize,
    blocks: Vec<Vec<u8>>,
}

impl MemDisk {
    /// Creates a zero-filled in-memory disk.
    pub fn new(block_size: usize, num_blocks: u64) -> MemDisk {
        MemDisk {
            block_size,
            blocks: (0..num_blocks).map(|_| vec![0u8; block_size]).collect(),
        }
    }
}

impl BlockDevice for MemDisk {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        check_args(
            "mem-disk",
            idx,
            buf.len(),
            self.block_size,
            self.num_blocks(),
        )?;
        buf.copy_from_slice(&self.blocks[idx as usize]);
        Ok(())
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        check_args(
            "mem-disk",
            idx,
            buf.len(),
            self.block_size,
            self.num_blocks(),
        )?;
        self.blocks[idx as usize].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Transfer and seek statistics gathered by [`MeteredDevice`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of block reads.
    pub reads: u64,
    /// Number of block writes.
    pub writes: u64,
    /// Number of transfers that were *not* sequential with the previous
    /// one (i.e. required a head seek).
    pub seeks: u64,
    /// Total absolute head movement, in blocks.
    pub seek_distance: u64,
    /// Number of `sync` calls.
    pub syncs: u64,
    /// Blocks transferred as part of coalesced multi-block batches
    /// (batches of two or more blocks; single-block reads don't count).
    pub batched_blocks: u64,
}

impl IoStats {
    /// Total transfers.
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Wraps a device and records [`IoStats`].
pub struct MeteredDevice<D: BlockDevice> {
    inner: D,
    stats: IoStats,
    head: Option<u64>,
}

impl<D: BlockDevice> std::fmt::Debug for MeteredDevice<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeteredDevice")
            .field("stats", &self.stats)
            .field("head", &self.head)
            .finish_non_exhaustive()
    }
}

impl<D: BlockDevice> MeteredDevice<D> {
    /// Wraps `inner` with fresh counters.
    pub fn new(inner: D) -> Self {
        MeteredDevice {
            inner,
            stats: IoStats::default(),
            head: None,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the counters (head position is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn note_transfer(&mut self, idx: u64) {
        if let Some(head) = self.head {
            if idx != head {
                self.stats.seeks += 1;
                self.stats.seek_distance += head.abs_diff(idx);
            }
        }
        // After a transfer, the head rests past the block just accessed.
        self.head = Some(idx + 1);
    }
}

impl<D: BlockDevice> BlockDevice for MeteredDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(idx, buf)?;
        self.stats.reads += 1;
        self.note_transfer(idx);
        Ok(())
    }

    fn read_blocks_into(&mut self, start: u64, bufs: &mut [&mut [u8]]) -> Result<()> {
        self.inner.read_blocks_into(start, bufs)?;
        let n = bufs.len() as u64;
        if n == 0 {
            return Ok(());
        }
        self.stats.reads += n;
        if n >= 2 {
            self.stats.batched_blocks += n;
        }
        // One head movement for the whole run, then a sequential sweep.
        if let Some(head) = self.head {
            if start != head {
                self.stats.seeks += 1;
                self.stats.seek_distance += head.abs_diff(start);
            }
        }
        self.head = Some(start + n);
        Ok(())
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_block(idx, buf)?;
        self.stats.writes += 1;
        self.note_transfer(idx);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?;
        self.stats.syncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "calliope-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn exercise(dev: &mut dyn BlockDevice) {
        let bs = dev.block_size();
        let mut a = vec![0xAAu8; bs];
        a[0] = 1;
        let mut b = vec![0xBBu8; bs];
        b[0] = 2;
        dev.write_block(0, &a).unwrap();
        dev.write_block(dev.num_blocks() - 1, &b).unwrap();
        let mut out = vec![0u8; bs];
        dev.read_block(0, &mut out).unwrap();
        assert_eq!(out, a);
        dev.read_block(dev.num_blocks() - 1, &mut out).unwrap();
        assert_eq!(out, b);
        dev.sync().unwrap();
        // Out-of-range and short-buffer requests fail cleanly.
        assert!(dev.read_block(dev.num_blocks(), &mut out).is_err());
        let mut short = vec![0u8; bs - 1];
        assert!(dev.read_block(0, &mut short).is_err());
        assert!(dev.write_block(0, &short).is_err());
    }

    #[test]
    fn mem_disk_basic_io() {
        let mut d = MemDisk::new(4096, 8);
        exercise(&mut d);
    }

    #[test]
    fn file_disk_basic_io_and_reopen() {
        let path = tempdir().join("disk0.img");
        {
            let mut d = FileDisk::create(&path, 4096, 8).unwrap();
            exercise(&mut d);
        }
        // Re-open and confirm persistence.
        let mut d = FileDisk::open(&path, 4096).unwrap();
        assert_eq!(d.num_blocks(), 8);
        let mut buf = vec![0u8; 4096];
        d.read_block(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_disk_rejects_bad_geometry() {
        let path = tempdir().join("badgeom.img");
        assert!(FileDisk::create(&path, 0, 8).is_err());
        assert!(FileDisk::create(&path, 4096, 0).is_err());
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(
            FileDisk::open(&path, 4096).is_err(),
            "length not block-aligned"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metered_device_counts_seeks() {
        let mut d = MeteredDevice::new(MemDisk::new(512, 16));
        let buf = vec![0u8; 512];
        let mut out = vec![0u8; 512];
        d.write_block(0, &buf).unwrap(); // first transfer: no seek
        d.write_block(1, &buf).unwrap(); // sequential: no seek
        d.write_block(10, &buf).unwrap(); // jump: seek of 8 (head was at 2)
        d.read_block(11, &mut out).unwrap(); // sequential: no seek
        d.read_block(3, &mut out).unwrap(); // jump back: seek of 9
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 3);
        assert_eq!(s.seeks, 2);
        assert_eq!(s.seek_distance, 8 + 9);
        assert_eq!(s.transfers(), 5);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    /// Writes block `i` filled with byte `i`, then batch-reads a run and
    /// checks contents plus the error paths of `read_blocks_into`.
    fn exercise_batch(dev: &mut dyn BlockDevice) {
        let bs = dev.block_size();
        let nb = dev.num_blocks();
        for i in 0..nb {
            dev.write_block(i, &vec![i as u8; bs]).unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; bs]).collect();
        {
            let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            dev.read_blocks_into(2, &mut refs).unwrap();
        }
        for (k, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![(2 + k) as u8; bs], "block {}", 2 + k);
        }
        // Empty batches are a no-op; bad ranges and short buffers fail.
        dev.read_blocks_into(0, &mut []).unwrap();
        {
            let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            assert!(dev.read_blocks_into(nb - 2, &mut refs).is_err());
            assert!(dev.read_blocks_into(u64::MAX, &mut refs).is_err());
        }
        let mut short = vec![0u8; bs - 1];
        let mut refs: Vec<&mut [u8]> = vec![short.as_mut_slice()];
        assert!(dev.read_blocks_into(0, &mut refs).is_err());
    }

    #[test]
    fn mem_disk_batched_read() {
        let mut d = MemDisk::new(512, 8);
        exercise_batch(&mut d);
    }

    #[test]
    fn file_disk_batched_read() {
        let path = tempdir().join("batch.img");
        let mut d = FileDisk::create(&path, 4096, 8).unwrap();
        exercise_batch(&mut d);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metered_device_batched_accounting() {
        let mut d = MeteredDevice::new(MemDisk::new(512, 32));
        let buf = vec![0u8; 512];
        d.write_block(0, &buf).unwrap(); // head now at 1
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 512]).collect();
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        d.read_blocks_into(10, &mut refs).unwrap();
        let s = d.stats();
        assert_eq!(s.reads, 4, "each block of the batch is one read");
        assert_eq!(s.batched_blocks, 4);
        assert_eq!(s.seeks, 1, "one seek for the whole run");
        assert_eq!(s.seek_distance, 9);
        // The head rests past the run: a follow-on sequential read is free.
        let mut out = vec![0u8; 512];
        d.read_block(14, &mut out).unwrap();
        assert_eq!(d.stats().seeks, 1);
        // A single-block "batch" is not counted as batched.
        let mut one: Vec<&mut [u8]> = vec![out.as_mut_slice()];
        d.read_blocks_into(15, &mut one).unwrap();
        assert_eq!(d.stats().batched_blocks, 4);
        assert_eq!(d.stats().seeks, 1, "15 was sequential after 14");
    }

    #[test]
    fn metered_device_failed_batch_not_counted() {
        let mut d = MeteredDevice::new(MemDisk::new(512, 4));
        let mut bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 512]).collect();
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(d.read_blocks_into(0, &mut refs).is_err());
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn metered_device_failed_io_not_counted() {
        let mut d = MeteredDevice::new(MemDisk::new(512, 4));
        let mut out = vec![0u8; 512];
        assert!(d.read_block(99, &mut out).is_err());
        assert_eq!(d.stats().reads, 0);
    }
}
