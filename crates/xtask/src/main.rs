//! Repo automation tasks, invoked as `cargo xtask <task>`.
//!
//! The only task today is `lint`: the static passes that back the
//! concurrency-correctness story (see `lint.rs`). Exits nonzero when
//! any violation is found, so CI can gate on it.

use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        other => {
            eprintln!(
                "usage: cargo xtask lint\n  (got: {:?})",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}
