//! Control-plane messages.
//!
//! Three TCP conversations exist in a Calliope installation (paper §2):
//!
//! 1. **client ↔ Coordinator** — session setup, table-of-contents
//!    browsing, display-port registration, play/record/delete requests,
//!    and administration ([`ClientRequest`] / [`CoordReply`]).
//! 2. **MSU ↔ Coordinator** — the MSU dials the Coordinator's intra-server
//!    port, registers its disks, receives scheduling decisions, and posts
//!    stream-termination notifications ([`MsuToCoord`] / [`CoordToMsu`],
//!    carried in [`MsuEnvelope`] / [`CoordEnvelope`] with correlation
//!    ids).
//! 3. **MSU ↔ client** — as soon as a stream is scheduled the MSU opens a
//!    control connection *to* the client, over which the client sends VCR
//!    commands ([`MsuToClient`] / [`ClientToMsu`]).

use super::stats::StatsSnapshot;
use super::{Reader, Wire, WireError};
use crate::content::{ContentEntry, ContentTypeSpec, ProtocolId};
use crate::ids::{DiskId, GroupId, MsuId, SessionId, StreamId};
use crate::time::{BitRate, ByteRate};
use crate::trace::TraceCtx;
use crate::vcr::VcrCommand;
use std::net::SocketAddr;

/// Why a stream stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DoneReason {
    /// The content played (or the recording estimate was reached) to the
    /// end.
    Completed,
    /// The client sent a `quit` VCR command.
    ClientQuit,
    /// The Coordinator cancelled the stream.
    Cancelled,
    /// The MSU is shutting down.
    MsuShutdown,
    /// Something went wrong; the message describes it.
    Error(String),
    /// The MSU hit a disk I/O error serving the stream. Distinct from
    /// `Error` so the Coordinator can attempt replica failover and the
    /// client knows the content itself may still be playable elsewhere.
    IoError(String),
}

impl Wire for DoneReason {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DoneReason::Completed => buf.push(0),
            DoneReason::ClientQuit => buf.push(1),
            DoneReason::Cancelled => buf.push(2),
            DoneReason::MsuShutdown => buf.push(3),
            DoneReason::Error(msg) => {
                buf.push(4);
                msg.encode(buf);
            }
            DoneReason::IoError(msg) => {
                buf.push(5);
                msg.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("done reason")? {
            0 => Ok(DoneReason::Completed),
            1 => Ok(DoneReason::ClientQuit),
            2 => Ok(DoneReason::Cancelled),
            3 => Ok(DoneReason::MsuShutdown),
            4 => Ok(DoneReason::Error(String::decode(r)?)),
            5 => Ok(DoneReason::IoError(String::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "done reason",
                tag,
            }),
        }
    }
}

/// How the MSU's network process paces a playback stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacingSpec {
    /// Constant bit-rate: the delivery schedule is *calculated* — packet
    /// `i` of size `packet_bytes` is due at `i * packet_bytes * 8 / rate`.
    Constant {
        /// Stream rate.
        rate: BitRate,
        /// Fixed packet payload size in bytes.
        packet_bytes: u32,
    },
    /// Variable bit-rate: delivery times are *stored* in the IB-tree
    /// alongside the data and replayed as recorded.
    Stored,
}

impl Wire for PacingSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PacingSpec::Constant { rate, packet_bytes } => {
                buf.push(0);
                rate.encode(buf);
                packet_bytes.encode(buf);
            }
            PacingSpec::Stored => buf.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("pacing spec")? {
            0 => Ok(PacingSpec::Constant {
                rate: BitRate::decode(r)?,
                packet_bytes: u32::decode(r)?,
            }),
            1 => Ok(PacingSpec::Stored),
            tag => Err(WireError::BadTag {
                what: "pacing spec",
                tag,
            }),
        }
    }
}

/// Names of the pre-filtered trick-play files for one content item
/// (paper §2.3.1). Loaded by an administrator; the MSU switches between
/// the normal-rate file and these on FF/FB commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrickFiles {
    /// File holding every 15th frame, forward order.
    pub fast_forward: String,
    /// File holding every 15th frame, reverse order.
    pub fast_backward: String,
}

impl Wire for TrickFiles {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.fast_forward.encode(buf);
        self.fast_backward.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TrickFiles {
            fast_forward: String::decode(r)?,
            fast_backward: String::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Conversation 1: client ↔ Coordinator
// ---------------------------------------------------------------------

/// Requests a client sends to the Coordinator over its session connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientRequest {
    /// Opens the session. Must be the first message.
    Hello {
        /// Client's self-reported name (used for the admin database).
        client_name: String,
        /// True if the client claims administrative rights.
        admin: bool,
    },
    /// Asks for the table of contents.
    ListContent,
    /// Asks for the content-type table.
    ListTypes,
    /// Registers an atomic display port: a UDP socket where this client
    /// receives (or sends, when recording) data, plus the TCP listener the
    /// MSU should dial for VCR control.
    RegisterPort {
        /// Port name, unique within the session.
        name: String,
        /// Must name an atomic content type.
        type_name: String,
        /// UDP address of the data socket.
        data_addr: SocketAddr,
        /// TCP address of the client's control listener.
        ctrl_addr: SocketAddr,
    },
    /// Registers a composite display port from previously-registered
    /// component ports (paper §2.1: a Seminar port is built from an RTP
    /// port and a VAT port).
    RegisterCompositePort {
        /// Port name, unique within the session.
        name: String,
        /// Must name a composite content type.
        type_name: String,
        /// Names of already-registered atomic ports, in the composite
        /// type's component order.
        components: Vec<String>,
    },
    /// Removes a display port from the session.
    UnregisterPort {
        /// The port to remove.
        name: String,
    },
    /// Plays existing content to a display port of the same type.
    Play {
        /// Content name from the table of contents.
        content: String,
        /// A registered display port of matching type.
        port: String,
    },
    /// Records new content from a display port. The client must estimate
    /// the recording length so the Coordinator can reserve disk space;
    /// over-estimates are returned when the recording completes.
    Record {
        /// Name for the new content item.
        content: String,
        /// A registered display port of matching type.
        port: String,
        /// Content type of the new item.
        type_name: String,
        /// Client's estimate of the recording length, in seconds.
        est_secs: u32,
    },
    /// Deletes an item of content (requires permission).
    Delete {
        /// The content to delete.
        content: String,
    },
    /// Adds a content type to the type table (admin only — clients may not
    /// define new types without an administrator, paper §2.1).
    AddType {
        /// The new type definition.
        spec: ContentTypeSpec,
    },
    /// Associates offline-filtered fast-forward / fast-backward files with
    /// a content item (admin only, paper §2.3.1).
    AttachTrick {
        /// The normal-rate content.
        content: String,
        /// Names of the filtered versions, already recorded on the server.
        files: TrickFiles,
    },
    /// Replicates a content item onto another disk (admin only): "we
    /// can make copies of popular content on several disks", buying
    /// per-title bandwidth with disk space (paper §2.3.3).
    Replicate {
        /// The content to copy.
        content: String,
    },
    /// Asks for the scheduler's resource view (MSUs, disks, load).
    ServerStatus,
    /// Asks for live metrics snapshots. With `msu: None` the Coordinator
    /// returns its own snapshot plus one per reachable MSU; with
    /// `Some(id)` only that MSU's.
    Stats {
        /// Restrict the report to one MSU.
        msu: Option<MsuId>,
    },
    /// Asks for the Coordinator's merged cluster view: the per-MSU
    /// snapshots it collected piggybacked on the heartbeat plus a
    /// cluster-total aggregate. Unlike [`ClientRequest::Stats`] this
    /// never blocks on an MSU round trip — it reads the Coordinator's
    /// cache.
    ClusterStats,
    /// Ends the session; the Coordinator deallocates the session's ports.
    Bye,
}

impl Wire for ClientRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ClientRequest::Hello { client_name, admin } => {
                buf.push(0);
                client_name.encode(buf);
                admin.encode(buf);
            }
            ClientRequest::ListContent => buf.push(1),
            ClientRequest::ListTypes => buf.push(2),
            ClientRequest::RegisterPort {
                name,
                type_name,
                data_addr,
                ctrl_addr,
            } => {
                buf.push(3);
                name.encode(buf);
                type_name.encode(buf);
                data_addr.encode(buf);
                ctrl_addr.encode(buf);
            }
            ClientRequest::RegisterCompositePort {
                name,
                type_name,
                components,
            } => {
                buf.push(4);
                name.encode(buf);
                type_name.encode(buf);
                components.encode(buf);
            }
            ClientRequest::UnregisterPort { name } => {
                buf.push(5);
                name.encode(buf);
            }
            ClientRequest::Play { content, port } => {
                buf.push(6);
                content.encode(buf);
                port.encode(buf);
            }
            ClientRequest::Record {
                content,
                port,
                type_name,
                est_secs,
            } => {
                buf.push(7);
                content.encode(buf);
                port.encode(buf);
                type_name.encode(buf);
                est_secs.encode(buf);
            }
            ClientRequest::Delete { content } => {
                buf.push(8);
                content.encode(buf);
            }
            ClientRequest::AddType { spec } => {
                buf.push(9);
                spec.encode(buf);
            }
            ClientRequest::AttachTrick { content, files } => {
                buf.push(10);
                content.encode(buf);
                files.encode(buf);
            }
            ClientRequest::Bye => buf.push(11),
            ClientRequest::Replicate { content } => {
                buf.push(12);
                content.encode(buf);
            }
            ClientRequest::ServerStatus => buf.push(13),
            ClientRequest::Stats { msu } => {
                buf.push(14);
                msu.encode(buf);
            }
            ClientRequest::ClusterStats => buf.push(15),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("client request")? {
            0 => ClientRequest::Hello {
                client_name: String::decode(r)?,
                admin: bool::decode(r)?,
            },
            1 => ClientRequest::ListContent,
            2 => ClientRequest::ListTypes,
            3 => ClientRequest::RegisterPort {
                name: String::decode(r)?,
                type_name: String::decode(r)?,
                data_addr: SocketAddr::decode(r)?,
                ctrl_addr: SocketAddr::decode(r)?,
            },
            4 => ClientRequest::RegisterCompositePort {
                name: String::decode(r)?,
                type_name: String::decode(r)?,
                components: Vec::<String>::decode(r)?,
            },
            5 => ClientRequest::UnregisterPort {
                name: String::decode(r)?,
            },
            6 => ClientRequest::Play {
                content: String::decode(r)?,
                port: String::decode(r)?,
            },
            7 => ClientRequest::Record {
                content: String::decode(r)?,
                port: String::decode(r)?,
                type_name: String::decode(r)?,
                est_secs: u32::decode(r)?,
            },
            8 => ClientRequest::Delete {
                content: String::decode(r)?,
            },
            9 => ClientRequest::AddType {
                spec: ContentTypeSpec::decode(r)?,
            },
            10 => ClientRequest::AttachTrick {
                content: String::decode(r)?,
                files: TrickFiles::decode(r)?,
            },
            11 => ClientRequest::Bye,
            12 => ClientRequest::Replicate {
                content: String::decode(r)?,
            },
            13 => ClientRequest::ServerStatus,
            14 => ClientRequest::Stats {
                msu: Option::<MsuId>::decode(r)?,
            },
            15 => ClientRequest::ClusterStats,
            tag => {
                return Err(WireError::BadTag {
                    what: "client request",
                    tag,
                })
            }
        })
    }
}

/// One scheduled playback stream, as reported to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStart {
    /// The stream id, used in VCR commands.
    pub stream: StreamId,
    /// Which of the client's (possibly composite) component ports this
    /// stream feeds.
    pub port_name: String,
    /// The MSU serving the stream (informational; the MSU dials the
    /// client's control listener itself).
    pub msu: MsuId,
    /// Trace context minted at admission; the same id appears in every
    /// Coordinator and MSU log line and flight-recorder event for this
    /// stream.
    pub trace: TraceCtx,
}

impl Wire for StreamStart {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.stream.encode(buf);
        self.port_name.encode(buf);
        self.msu.encode(buf);
        self.trace.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StreamStart {
            stream: StreamId::decode(r)?,
            port_name: String::decode(r)?,
            msu: MsuId::decode(r)?,
            trace: TraceCtx::decode(r)?,
        })
    }
}

/// One scheduled recording stream, as reported to the client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordStart {
    /// The stream id, used in VCR commands.
    pub stream: StreamId,
    /// Which component port this stream records from.
    pub port_name: String,
    /// The MSU serving the stream.
    pub msu: MsuId,
    /// UDP address on the MSU where the client must send data packets.
    pub udp_sink: SocketAddr,
    /// Trace context minted at admission.
    pub trace: TraceCtx,
}

impl Wire for RecordStart {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.stream.encode(buf);
        self.port_name.encode(buf);
        self.msu.encode(buf);
        self.udp_sink.encode(buf);
        self.trace.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RecordStart {
            stream: StreamId::decode(r)?,
            port_name: String::decode(r)?,
            msu: MsuId::decode(r)?,
            udp_sink: SocketAddr::decode(r)?,
            trace: TraceCtx::decode(r)?,
        })
    }
}

/// One disk's load in a [`CoordReply::Status`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskStatus {
    /// Global disk id.
    pub disk: DiskId,
    /// Free space, bytes.
    pub free_bytes: u64,
    /// Total capacity, bytes.
    pub capacity_bytes: u64,
    /// Bandwidth reserved, bytes/s.
    pub bw_used: u64,
    /// Bandwidth capacity, bytes/s.
    pub bw_capacity: u64,
}

impl Wire for DiskStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.disk.encode(buf);
        self.free_bytes.encode(buf);
        self.capacity_bytes.encode(buf);
        self.bw_used.encode(buf);
        self.bw_capacity.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DiskStatus {
            disk: DiskId::decode(r)?,
            free_bytes: u64::decode(r)?,
            capacity_bytes: u64::decode(r)?,
            bw_used: u64::decode(r)?,
            bw_capacity: u64::decode(r)?,
        })
    }
}

/// One MSU's load in a [`CoordReply::Status`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsuStatus {
    /// The MSU.
    pub msu: MsuId,
    /// False while the Coordinator has it marked down.
    pub available: bool,
    /// Network bandwidth reserved, bytes/s.
    pub net_used: u64,
    /// Network bandwidth capacity, bytes/s.
    pub net_capacity: u64,
    /// Its disks.
    pub disks: Vec<DiskStatus>,
}

impl Wire for MsuStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.msu.encode(buf);
        self.available.encode(buf);
        self.net_used.encode(buf);
        self.net_capacity.encode(buf);
        self.disks.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MsuStatus {
            msu: MsuId::decode(r)?,
            available: bool::decode(r)?,
            net_used: u64::decode(r)?,
            net_capacity: u64::decode(r)?,
            disks: Vec::<DiskStatus>::decode(r)?,
        })
    }
}

/// Replies the Coordinator sends to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordReply {
    /// Session established.
    Welcome {
        /// The new session's id.
        session: SessionId,
    },
    /// The table of contents.
    ContentList {
        /// One entry per content item.
        entries: Vec<ContentEntry>,
    },
    /// The content-type table.
    TypeList {
        /// One spec per type.
        types: Vec<ContentTypeSpec>,
    },
    /// Generic success for requests with nothing else to return.
    Ok,
    /// The request is valid but no MSU currently has the resources; it has
    /// been queued and the final reply will follow when it is scheduled
    /// (paper §2.2). Interim message.
    Queued,
    /// Playback scheduled: one stream per component (a singleton group for
    /// atomic content).
    PlayStarted {
        /// The stream group controlling all components together.
        group: GroupId,
        /// Component streams in port order.
        streams: Vec<StreamStart>,
    },
    /// Recording scheduled.
    RecordStarted {
        /// The stream group.
        group: GroupId,
        /// Component streams in port order.
        streams: Vec<RecordStart>,
    },
    /// The request failed.
    Error {
        /// Stable code from [`crate::error::Error::wire_code`].
        code: u16,
        /// Human-readable description.
        msg: String,
    },
    /// The scheduler's resource view.
    Status {
        /// One entry per known MSU.
        msus: Vec<MsuStatus>,
        /// Live stream reservations.
        active_streams: u32,
    },
    /// Reply to [`ClientRequest::Stats`]: one snapshot per component
    /// that answered (MSUs that are down are simply absent).
    Stats {
        /// Coordinator and/or MSU snapshots.
        snapshots: Vec<StatsSnapshot>,
    },
    /// Reply to [`ClientRequest::ClusterStats`]: the Coordinator's
    /// merged cluster view, assembled from heartbeat-piggybacked MSU
    /// snapshots.
    ClusterStats {
        /// Cluster-total aggregate (counters summed, histogram buckets
        /// merged across MSUs), `source == "cluster"`.
        cluster: StatsSnapshot,
        /// The most recent snapshot from each live MSU.
        msus: Vec<StatsSnapshot>,
    },
}

impl Wire for CoordReply {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoordReply::Welcome { session } => {
                buf.push(0);
                session.encode(buf);
            }
            CoordReply::ContentList { entries } => {
                buf.push(1);
                entries.encode(buf);
            }
            CoordReply::TypeList { types } => {
                buf.push(2);
                types.encode(buf);
            }
            CoordReply::Ok => buf.push(3),
            CoordReply::Queued => buf.push(4),
            CoordReply::PlayStarted { group, streams } => {
                buf.push(5);
                group.encode(buf);
                streams.encode(buf);
            }
            CoordReply::RecordStarted { group, streams } => {
                buf.push(6);
                group.encode(buf);
                streams.encode(buf);
            }
            CoordReply::Error { code, msg } => {
                buf.push(7);
                code.encode(buf);
                msg.encode(buf);
            }
            CoordReply::Status {
                msus,
                active_streams,
            } => {
                buf.push(8);
                msus.encode(buf);
                active_streams.encode(buf);
            }
            CoordReply::Stats { snapshots } => {
                buf.push(9);
                snapshots.encode(buf);
            }
            CoordReply::ClusterStats { cluster, msus } => {
                buf.push(10);
                cluster.encode(buf);
                msus.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("coord reply")? {
            0 => CoordReply::Welcome {
                session: SessionId::decode(r)?,
            },
            1 => CoordReply::ContentList {
                entries: Vec::<ContentEntry>::decode(r)?,
            },
            2 => CoordReply::TypeList {
                types: Vec::<ContentTypeSpec>::decode(r)?,
            },
            3 => CoordReply::Ok,
            4 => CoordReply::Queued,
            5 => CoordReply::PlayStarted {
                group: GroupId::decode(r)?,
                streams: Vec::<StreamStart>::decode(r)?,
            },
            6 => CoordReply::RecordStarted {
                group: GroupId::decode(r)?,
                streams: Vec::<RecordStart>::decode(r)?,
            },
            7 => CoordReply::Error {
                code: u16::decode(r)?,
                msg: String::decode(r)?,
            },
            8 => CoordReply::Status {
                msus: Vec::<MsuStatus>::decode(r)?,
                active_streams: u32::decode(r)?,
            },
            9 => CoordReply::Stats {
                snapshots: Vec::<StatsSnapshot>::decode(r)?,
            },
            10 => CoordReply::ClusterStats {
                cluster: StatsSnapshot::decode(r)?,
                msus: Vec::<StatsSnapshot>::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "coord reply",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------
// Conversation 2: MSU ↔ Coordinator
// ---------------------------------------------------------------------

/// An MSU's description of one of its disks at registration time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskReport {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently free.
    pub free_bytes: u64,
    /// Sustained bandwidth the disk can deliver under the duty-cycle
    /// workload (random 256 KB transfers), used by the Coordinator for
    /// admission control.
    pub bandwidth: ByteRate,
}

impl Wire for DiskReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.capacity_bytes.encode(buf);
        self.free_bytes.encode(buf);
        self.bandwidth.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DiskReport {
            capacity_bytes: u64::decode(r)?,
            free_bytes: u64::decode(r)?,
            bandwidth: ByteRate::decode(r)?,
        })
    }
}

/// Messages from an MSU to the Coordinator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsuToCoord {
    /// First message on the connection: announce disks and control
    /// address. If the MSU restarted after a failure it passes its
    /// previous id so the Coordinator can restore (rather than duplicate)
    /// its database entry (paper §2.2 fault tolerance).
    Register {
        /// TCP address other components may use to reach this MSU.
        ctrl_addr: SocketAddr,
        /// One report per local disk, in local disk order.
        disks: Vec<DiskReport>,
        /// Previous identity when re-registering after a crash.
        previous: Option<MsuId>,
    },
    /// Reply to [`CoordToMsu::ScheduleRead`]: either the stream is being
    /// delivered or an error string.
    ReadScheduled {
        /// `None` on success, `Some(message)` on failure.
        error: Option<String>,
    },
    /// Reply to [`CoordToMsu::ScheduleWrite`]: on success carries the UDP
    /// socket the client must send data to.
    WriteScheduled {
        /// `Ok(sink)` or `Err(message)` flattened for the wire.
        udp_sink: Option<SocketAddr>,
        /// Present iff `udp_sink` is `None`.
        error: Option<String>,
    },
    /// Unsolicited: a stream ended. For recordings, `bytes` and
    /// `duration_us` describe the captured content so the Coordinator can
    /// finalize the catalog entry and return over-reserved disk space.
    StreamDone {
        /// Which stream.
        stream: StreamId,
        /// Why it ended.
        reason: DoneReason,
        /// Bytes played or recorded.
        bytes: u64,
        /// Play/record duration in microseconds of media time.
        duration_us: u64,
        /// The trace context the grant carried, echoed back so the
        /// stream's end is attributable to its admission.
        trace: TraceCtx,
    },
    /// Reply to [`CoordToMsu::Ping`]. Carries a fresh metrics snapshot
    /// piggybacked on the heartbeat so the Coordinator's cluster view
    /// stays current without extra round trips (`None` only from
    /// components that cannot produce one).
    Pong {
        /// This MSU's live metrics at ping time.
        snapshot: Option<StatsSnapshot>,
    },
    /// Reply to [`CoordToMsu::DeleteFile`].
    FileDeleted {
        /// `None` on success.
        error: Option<String>,
    },
    /// Reply to [`CoordToMsu::CopyFile`].
    FileCopied {
        /// `None` on success.
        error: Option<String>,
    },
    /// Reply to [`CoordToMsu::GetStats`]: this MSU's live metrics.
    Stats {
        /// The snapshot.
        snapshot: StatsSnapshot,
    },
}

impl Wire for MsuToCoord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MsuToCoord::Register {
                ctrl_addr,
                disks,
                previous,
            } => {
                buf.push(0);
                ctrl_addr.encode(buf);
                disks.encode(buf);
                previous.encode(buf);
            }
            MsuToCoord::ReadScheduled { error } => {
                buf.push(1);
                error.encode(buf);
            }
            MsuToCoord::WriteScheduled { udp_sink, error } => {
                buf.push(2);
                udp_sink.encode(buf);
                error.encode(buf);
            }
            MsuToCoord::StreamDone {
                stream,
                reason,
                bytes,
                duration_us,
                trace,
            } => {
                buf.push(3);
                stream.encode(buf);
                reason.encode(buf);
                bytes.encode(buf);
                duration_us.encode(buf);
                trace.encode(buf);
            }
            MsuToCoord::Pong { snapshot } => {
                buf.push(4);
                snapshot.encode(buf);
            }
            MsuToCoord::FileDeleted { error } => {
                buf.push(5);
                error.encode(buf);
            }
            MsuToCoord::FileCopied { error } => {
                buf.push(6);
                error.encode(buf);
            }
            MsuToCoord::Stats { snapshot } => {
                buf.push(7);
                snapshot.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("msu-to-coord")? {
            0 => MsuToCoord::Register {
                ctrl_addr: SocketAddr::decode(r)?,
                disks: Vec::<DiskReport>::decode(r)?,
                previous: Option::<MsuId>::decode(r)?,
            },
            1 => MsuToCoord::ReadScheduled {
                error: Option::<String>::decode(r)?,
            },
            2 => MsuToCoord::WriteScheduled {
                udp_sink: Option::<SocketAddr>::decode(r)?,
                error: Option::<String>::decode(r)?,
            },
            3 => MsuToCoord::StreamDone {
                stream: StreamId::decode(r)?,
                reason: DoneReason::decode(r)?,
                bytes: u64::decode(r)?,
                duration_us: u64::decode(r)?,
                trace: TraceCtx::decode(r)?,
            },
            4 => MsuToCoord::Pong {
                snapshot: Option::<StatsSnapshot>::decode(r)?,
            },
            5 => MsuToCoord::FileDeleted {
                error: Option::<String>::decode(r)?,
            },
            6 => MsuToCoord::FileCopied {
                error: Option::<String>::decode(r)?,
            },
            7 => MsuToCoord::Stats {
                snapshot: StatsSnapshot::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "msu-to-coord",
                    tag,
                })
            }
        })
    }
}

/// Messages from the Coordinator to an MSU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordToMsu {
    /// Reply to [`MsuToCoord::Register`]: the MSU's identity and the
    /// global ids assigned to its disks (in the order reported).
    RegisterAck {
        /// This MSU's id.
        msu: MsuId,
        /// Global disk ids, parallel to the registration's disk list.
        disk_ids: Vec<DiskId>,
    },
    /// Schedule a playback stream (paper §2.2: once scheduled, the client
    /// talks to the MSU directly).
    ScheduleRead {
        /// New stream id.
        stream: StreamId,
        /// Stream group for synchronized VCR control.
        group: GroupId,
        /// Total number of streams in the group (the MSU releases the
        /// group — and starts all members simultaneously — once this
        /// many are primed).
        group_size: u32,
        /// Which local disk holds the content (by global id).
        disk: DiskId,
        /// File name in the MSU file system.
        file: String,
        /// Protocol module to use on output.
        protocol: ProtocolId,
        /// Calculated or stored delivery schedule.
        pacing: PacingSpec,
        /// UDP address of the client's display port.
        client_data: SocketAddr,
        /// TCP listener the MSU must dial for VCR control (one connection
        /// per group; the MSU dials it for the group's first stream).
        client_ctrl: SocketAddr,
        /// Trick-play files, if an administrator attached any.
        trick: Option<TrickFiles>,
        /// Trace context minted at admission (or continued on failover).
        trace: TraceCtx,
    },
    /// Schedule a recording stream.
    ScheduleWrite {
        /// New stream id.
        stream: StreamId,
        /// Stream group.
        group: GroupId,
        /// Total number of streams in the group.
        group_size: u32,
        /// Which local disk receives the recording.
        disk: DiskId,
        /// File name to create in the MSU file system.
        file: String,
        /// Protocol module to use on input (derives delivery times).
        protocol: ProtocolId,
        /// Reserved size in bytes (from the client's length estimate).
        est_bytes: u64,
        /// Whether to store a delivery schedule (variable-rate types) or
        /// rely on a computed one (constant-rate types).
        stores_schedule: bool,
        /// For constant-rate recordings, the nominal rate.
        cbr_rate: Option<BitRate>,
        /// TCP listener the MSU must dial for VCR control.
        client_ctrl: SocketAddr,
        /// Trace context minted at admission.
        trace: TraceCtx,
    },
    /// Cancel a stream (e.g. its group-mate failed to schedule).
    Cancel {
        /// Which stream.
        stream: StreamId,
    },
    /// Deletes a file from one of the MSU's disks (content deletion,
    /// paper §2.1 "with appropriate permissions, the client can delete
    /// an item of content").
    DeleteFile {
        /// Which local disk (by global id).
        disk: DiskId,
        /// The file to remove.
        file: String,
    },
    /// Copies a file between two of the MSU's disks — content
    /// replication: "we can make copies of popular content on several
    /// disks" to buy per-title bandwidth with space (paper §2.3.3).
    CopyFile {
        /// Source disk (global id).
        src_disk: DiskId,
        /// Destination disk (global id, same MSU).
        dst_disk: DiskId,
        /// File name (kept identical on the destination).
        file: String,
    },
    /// Liveness probe.
    Ping,
    /// Asks the MSU for a metrics snapshot ([`MsuToCoord::Stats`]).
    GetStats,
    /// Orderly shutdown: finish nothing, stop everything.
    Shutdown,
}

impl Wire for CoordToMsu {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CoordToMsu::RegisterAck { msu, disk_ids } => {
                buf.push(0);
                msu.encode(buf);
                disk_ids.encode(buf);
            }
            CoordToMsu::ScheduleRead {
                stream,
                group,
                group_size,
                disk,
                file,
                protocol,
                pacing,
                client_data,
                client_ctrl,
                trick,
                trace,
            } => {
                buf.push(1);
                stream.encode(buf);
                group.encode(buf);
                group_size.encode(buf);
                disk.encode(buf);
                file.encode(buf);
                protocol.encode(buf);
                pacing.encode(buf);
                client_data.encode(buf);
                client_ctrl.encode(buf);
                trick.encode(buf);
                trace.encode(buf);
            }
            CoordToMsu::ScheduleWrite {
                stream,
                group,
                group_size,
                disk,
                file,
                protocol,
                est_bytes,
                stores_schedule,
                cbr_rate,
                client_ctrl,
                trace,
            } => {
                buf.push(2);
                stream.encode(buf);
                group.encode(buf);
                group_size.encode(buf);
                disk.encode(buf);
                file.encode(buf);
                protocol.encode(buf);
                est_bytes.encode(buf);
                stores_schedule.encode(buf);
                cbr_rate.encode(buf);
                client_ctrl.encode(buf);
                trace.encode(buf);
            }
            CoordToMsu::Cancel { stream } => {
                buf.push(3);
                stream.encode(buf);
            }
            CoordToMsu::Ping => buf.push(4),
            CoordToMsu::Shutdown => buf.push(5),
            CoordToMsu::DeleteFile { disk, file } => {
                buf.push(6);
                disk.encode(buf);
                file.encode(buf);
            }
            CoordToMsu::CopyFile {
                src_disk,
                dst_disk,
                file,
            } => {
                buf.push(7);
                src_disk.encode(buf);
                dst_disk.encode(buf);
                file.encode(buf);
            }
            CoordToMsu::GetStats => buf.push(8),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("coord-to-msu")? {
            0 => CoordToMsu::RegisterAck {
                msu: MsuId::decode(r)?,
                disk_ids: Vec::<DiskId>::decode(r)?,
            },
            1 => CoordToMsu::ScheduleRead {
                stream: StreamId::decode(r)?,
                group: GroupId::decode(r)?,
                group_size: u32::decode(r)?,
                disk: DiskId::decode(r)?,
                file: String::decode(r)?,
                protocol: ProtocolId::decode(r)?,
                pacing: PacingSpec::decode(r)?,
                client_data: SocketAddr::decode(r)?,
                client_ctrl: SocketAddr::decode(r)?,
                trick: Option::<TrickFiles>::decode(r)?,
                trace: TraceCtx::decode(r)?,
            },
            2 => CoordToMsu::ScheduleWrite {
                stream: StreamId::decode(r)?,
                group: GroupId::decode(r)?,
                group_size: u32::decode(r)?,
                disk: DiskId::decode(r)?,
                file: String::decode(r)?,
                protocol: ProtocolId::decode(r)?,
                est_bytes: u64::decode(r)?,
                stores_schedule: bool::decode(r)?,
                cbr_rate: Option::<BitRate>::decode(r)?,
                client_ctrl: SocketAddr::decode(r)?,
                trace: TraceCtx::decode(r)?,
            },
            3 => CoordToMsu::Cancel {
                stream: StreamId::decode(r)?,
            },
            4 => CoordToMsu::Ping,
            5 => CoordToMsu::Shutdown,
            6 => CoordToMsu::DeleteFile {
                disk: DiskId::decode(r)?,
                file: String::decode(r)?,
            },
            7 => CoordToMsu::CopyFile {
                src_disk: DiskId::decode(r)?,
                dst_disk: DiskId::decode(r)?,
                file: String::decode(r)?,
            },
            8 => CoordToMsu::GetStats,
            tag => {
                return Err(WireError::BadTag {
                    what: "coord-to-msu",
                    tag,
                })
            }
        })
    }
}

/// Envelope for Coordinator→MSU frames: a correlation id plus the body.
///
/// The Coordinator assigns `req_id`s from its own counter; the MSU echoes
/// the id in its reply envelope. Unsolicited messages use id 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoordEnvelope {
    /// Correlation id (0 = unsolicited).
    pub req_id: u64,
    /// The message.
    pub body: CoordToMsu,
}

impl Wire for CoordEnvelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.req_id.encode(buf);
        self.body.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CoordEnvelope {
            req_id: u64::decode(r)?,
            body: CoordToMsu::decode(r)?,
        })
    }
}

/// Envelope for MSU→Coordinator frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsuEnvelope {
    /// Correlation id this frame replies to (0 = unsolicited).
    pub req_id: u64,
    /// The message.
    pub body: MsuToCoord,
}

impl Wire for MsuEnvelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.req_id.encode(buf);
        self.body.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MsuEnvelope {
            req_id: u64::decode(r)?,
            body: MsuToCoord::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Conversation 3: MSU ↔ client (VCR control)
// ---------------------------------------------------------------------

/// Messages the MSU sends on the control connection it opens to the
/// client (one connection per stream group).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsuToClient {
    /// Sent right after connecting: the group is about to play/record.
    GroupReady {
        /// The stream group this connection controls.
        group: GroupId,
        /// Member streams.
        streams: Vec<StreamId>,
        /// Trace context of the group's first stream, so client logs
        /// carry the same id as the Coordinator and MSU.
        trace: TraceCtx,
    },
    /// Response to a VCR command.
    VcrAck {
        /// The group the command applied to.
        group: GroupId,
        /// `None` on success, `Some(message)` on failure (e.g. FF without
        /// a trick file).
        error: Option<String>,
    },
    /// The group ended (end of content, quit, error, shutdown).
    GroupEnded {
        /// The group.
        group: GroupId,
        /// Why.
        reason: DoneReason,
    },
}

impl Wire for MsuToClient {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MsuToClient::GroupReady {
                group,
                streams,
                trace,
            } => {
                buf.push(0);
                group.encode(buf);
                streams.encode(buf);
                trace.encode(buf);
            }
            MsuToClient::VcrAck { group, error } => {
                buf.push(1);
                group.encode(buf);
                error.encode(buf);
            }
            MsuToClient::GroupEnded { group, reason } => {
                buf.push(2);
                group.encode(buf);
                reason.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("msu-to-client")? {
            0 => MsuToClient::GroupReady {
                group: GroupId::decode(r)?,
                streams: Vec::<StreamId>::decode(r)?,
                trace: TraceCtx::decode(r)?,
            },
            1 => MsuToClient::VcrAck {
                group: GroupId::decode(r)?,
                error: Option::<String>::decode(r)?,
            },
            2 => MsuToClient::GroupEnded {
                group: GroupId::decode(r)?,
                reason: DoneReason::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "msu-to-client",
                    tag,
                })
            }
        })
    }
}

/// Messages the client sends to the MSU on the control connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientToMsu {
    /// A VCR command for the whole group: one command starts and stops all
    /// member streams simultaneously (paper §2.2).
    Vcr {
        /// The group.
        group: GroupId,
        /// The command.
        cmd: VcrCommand,
    },
}

impl Wire for ClientToMsu {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ClientToMsu::Vcr { group, cmd } => {
                buf.push(0);
                group.encode(buf);
                cmd.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("client-to-msu")? {
            0 => ClientToMsu::Vcr {
                group: GroupId::decode(r)?,
                cmd: VcrCommand::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "client-to-msu",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MediaTime;
    use crate::trace::SpanKind;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + core::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        assert_eq!(&T::from_bytes(&bytes).expect("decode"), v);
    }

    fn sample_addr() -> SocketAddr {
        "10.1.2.3:5004".parse().unwrap()
    }

    fn sample_trace() -> TraceCtx {
        TraceCtx::new(0xABCD_1234, SpanKind::Play)
    }

    #[test]
    fn client_requests_round_trip() {
        let reqs = vec![
            ClientRequest::Hello {
                client_name: "mbone-client".into(),
                admin: false,
            },
            ClientRequest::ListContent,
            ClientRequest::ListTypes,
            ClientRequest::RegisterPort {
                name: "video0".into(),
                type_name: "nv-video".into(),
                data_addr: sample_addr(),
                ctrl_addr: "10.1.2.3:6000".parse().unwrap(),
            },
            ClientRequest::RegisterCompositePort {
                name: "seminar0".into(),
                type_name: "seminar".into(),
                components: vec!["video0".into(), "audio0".into()],
            },
            ClientRequest::UnregisterPort {
                name: "video0".into(),
            },
            ClientRequest::Play {
                content: "lecture-1".into(),
                port: "seminar0".into(),
            },
            ClientRequest::Record {
                content: "new-talk".into(),
                port: "video0".into(),
                type_name: "nv-video".into(),
                est_secs: 3600,
            },
            ClientRequest::Delete {
                content: "old".into(),
            },
            ClientRequest::AddType {
                spec: crate::content::builtin_types().remove(0),
            },
            ClientRequest::AttachTrick {
                content: "movie".into(),
                files: TrickFiles {
                    fast_forward: "movie.ff".into(),
                    fast_backward: "movie.fb".into(),
                },
            },
            ClientRequest::Bye,
            ClientRequest::Replicate {
                content: "popular".into(),
            },
            ClientRequest::ClusterStats,
        ];
        for r in &reqs {
            round_trip(r);
        }
    }

    #[test]
    fn coord_replies_round_trip() {
        let replies = vec![
            CoordReply::Welcome {
                session: SessionId(7),
            },
            CoordReply::ContentList {
                entries: vec![ContentEntry {
                    name: "m".into(),
                    type_name: "mpeg1".into(),
                    bytes: 42,
                    duration_us: 1_000_000,
                }],
            },
            CoordReply::TypeList {
                types: crate::content::builtin_types(),
            },
            CoordReply::Ok,
            CoordReply::Queued,
            CoordReply::PlayStarted {
                group: GroupId(1),
                streams: vec![StreamStart {
                    stream: StreamId(9),
                    port_name: "video0".into(),
                    msu: MsuId(2),
                    trace: sample_trace(),
                }],
            },
            CoordReply::RecordStarted {
                group: GroupId(2),
                streams: vec![RecordStart {
                    stream: StreamId(10),
                    port_name: "video0".into(),
                    msu: MsuId(2),
                    udp_sink: sample_addr(),
                    trace: TraceCtx::new(77, SpanKind::Record),
                }],
            },
            CoordReply::Error {
                code: 9,
                msg: "resources exhausted".into(),
            },
        ];
        for r in &replies {
            round_trip(r);
        }
    }

    #[test]
    fn msu_coordinator_envelopes_round_trip() {
        let msgs = vec![
            MsuEnvelope {
                req_id: 0,
                body: MsuToCoord::Register {
                    ctrl_addr: sample_addr(),
                    disks: vec![DiskReport {
                        capacity_bytes: 2_000_000_000,
                        free_bytes: 1_500_000_000,
                        bandwidth: ByteRate::from_bytes_per_sec(2_400_000),
                    }],
                    previous: Some(MsuId(4)),
                },
            },
            MsuEnvelope {
                req_id: 12,
                body: MsuToCoord::ReadScheduled { error: None },
            },
            MsuEnvelope {
                req_id: 13,
                body: MsuToCoord::WriteScheduled {
                    udp_sink: Some(sample_addr()),
                    error: None,
                },
            },
            MsuEnvelope {
                req_id: 0,
                body: MsuToCoord::StreamDone {
                    stream: StreamId(5),
                    reason: DoneReason::ClientQuit,
                    bytes: 1_000_000,
                    duration_us: 60_000_000,
                    trace: sample_trace(),
                },
            },
            MsuEnvelope {
                req_id: 44,
                body: MsuToCoord::Pong { snapshot: None },
            },
            MsuEnvelope {
                req_id: 15,
                body: MsuToCoord::FileDeleted { error: None },
            },
            MsuEnvelope {
                req_id: 16,
                body: MsuToCoord::FileCopied { error: None },
            },
        ];
        for m in &msgs {
            round_trip(m);
        }

        let coord = vec![
            CoordEnvelope {
                req_id: 0,
                body: CoordToMsu::RegisterAck {
                    msu: MsuId(1),
                    disk_ids: vec![DiskId(10), DiskId(11)],
                },
            },
            CoordEnvelope {
                req_id: 12,
                body: CoordToMsu::ScheduleRead {
                    stream: StreamId(5),
                    group: GroupId(3),
                    group_size: 1,
                    disk: DiskId(10),
                    file: "movie".into(),
                    protocol: ProtocolId::ConstantRate,
                    pacing: PacingSpec::Constant {
                        rate: BitRate::from_kbps(1500),
                        packet_bytes: 4096,
                    },
                    client_data: sample_addr(),
                    client_ctrl: "10.1.2.3:6000".parse().unwrap(),
                    trick: Some(TrickFiles {
                        fast_forward: "movie.ff".into(),
                        fast_backward: "movie.fb".into(),
                    }),
                    trace: sample_trace(),
                },
            },
            CoordEnvelope {
                req_id: 13,
                body: CoordToMsu::ScheduleWrite {
                    stream: StreamId(6),
                    group: GroupId(3),
                    group_size: 2,
                    disk: DiskId(10),
                    file: "new-talk".into(),
                    protocol: ProtocolId::Rtp,
                    est_bytes: 500_000_000,
                    stores_schedule: true,
                    cbr_rate: None,
                    client_ctrl: "10.1.2.3:6000".parse().unwrap(),
                    trace: TraceCtx::new(78, SpanKind::Record),
                },
            },
            CoordEnvelope {
                req_id: 0,
                body: CoordToMsu::Cancel {
                    stream: StreamId(6),
                },
            },
            CoordEnvelope {
                req_id: 14,
                body: CoordToMsu::Ping,
            },
            CoordEnvelope {
                req_id: 15,
                body: CoordToMsu::DeleteFile {
                    disk: DiskId(10),
                    file: "old".into(),
                },
            },
            CoordEnvelope {
                req_id: 16,
                body: CoordToMsu::CopyFile {
                    src_disk: DiskId(10),
                    dst_disk: DiskId(11),
                    file: "popular".into(),
                },
            },
            CoordEnvelope {
                req_id: 0,
                body: CoordToMsu::Shutdown,
            },
        ];
        for m in &coord {
            round_trip(m);
        }
    }

    #[test]
    fn control_channel_messages_round_trip() {
        round_trip(&MsuToClient::GroupReady {
            group: GroupId(1),
            streams: vec![StreamId(1), StreamId(2)],
            trace: sample_trace(),
        });
        round_trip(&MsuToClient::VcrAck {
            group: GroupId(1),
            error: Some("no trick file".into()),
        });
        round_trip(&MsuToClient::GroupEnded {
            group: GroupId(1),
            reason: DoneReason::Error("disk failed".into()),
        });
        round_trip(&ClientToMsu::Vcr {
            group: GroupId(1),
            cmd: VcrCommand::Seek(MediaTime::from_secs(90)),
        });
    }

    #[test]
    fn stats_messages_round_trip() {
        use crate::wire::stats::{HistBucket, MetricEntry, MetricValue};
        let snap = StatsSnapshot {
            source: "msu-1".into(),
            uptime_us: 42_000_000,
            metrics: vec![
                MetricEntry {
                    name: "net.packets_sent".into(),
                    value: MetricValue::Counter(1000),
                },
                MetricEntry {
                    name: "net.lateness_us".into(),
                    value: MetricValue::Histogram {
                        buckets: vec![
                            HistBucket { le: 1000, count: 7 },
                            HistBucket {
                                le: u64::MAX,
                                count: 8,
                            },
                        ],
                        count: 8,
                        sum: 12345,
                    },
                },
            ],
        };
        round_trip(&ClientRequest::Stats { msu: None });
        round_trip(&ClientRequest::Stats {
            msu: Some(MsuId(3)),
        });
        round_trip(&CoordReply::Stats {
            snapshots: vec![snap.clone()],
        });
        round_trip(&CoordReply::Stats { snapshots: vec![] });
        round_trip(&ClientRequest::ClusterStats);
        round_trip(&CoordReply::ClusterStats {
            cluster: StatsSnapshot {
                source: "cluster".into(),
                uptime_us: 42_000_000,
                metrics: snap.metrics.clone(),
            },
            msus: vec![snap.clone(), snap.clone()],
        });
        round_trip(&MsuEnvelope {
            req_id: 44,
            body: MsuToCoord::Pong {
                snapshot: Some(snap.clone()),
            },
        });
        round_trip(&MsuEnvelope {
            req_id: 77,
            body: MsuToCoord::Stats { snapshot: snap },
        });
        round_trip(&CoordEnvelope {
            req_id: 77,
            body: CoordToMsu::GetStats,
        });
    }

    #[test]
    fn done_reasons_round_trip() {
        for reason in [
            DoneReason::Completed,
            DoneReason::ClientQuit,
            DoneReason::Cancelled,
            DoneReason::MsuShutdown,
            DoneReason::Error("boom".into()),
            DoneReason::IoError("read block 7 failed".into()),
        ] {
            round_trip(&reason);
        }
    }

    proptest! {
        #[test]
        fn prop_message_decoders_survive_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = ClientRequest::from_bytes(&bytes);
            let _ = CoordReply::from_bytes(&bytes);
            let _ = CoordEnvelope::from_bytes(&bytes);
            let _ = MsuEnvelope::from_bytes(&bytes);
            let _ = MsuToClient::from_bytes(&bytes);
            let _ = ClientToMsu::from_bytes(&bytes);
        }

        #[test]
        fn prop_play_round_trips(content in "[a-z0-9/_-]{0,64}", port in "[a-z0-9/_-]{0,64}") {
            let req = ClientRequest::Play { content, port };
            let bytes = req.to_bytes();
            prop_assert_eq!(ClientRequest::from_bytes(&bytes).unwrap(), req);
        }
    }
}
