//! The file catalog — the MSU file system's only metadata.
//!
//! One [`FileMeta`] per file: its kind, block list, IB-tree root, and
//! accounting. The whole catalog is kept in memory and written through
//! to the metadata region on mutation; with 256 KB blocks a two-hour
//! movie has ~5400 blocks ≈ 43 KB of block list, so even a full disk's
//! catalog is a few hundred kilobytes (paper §2.3.3: metadata small
//! enough to cache entirely).

use calliope_types::error::{Error, Result};
use calliope_types::wire::{Reader, Wire, WireError};
use std::collections::BTreeMap;

/// How a file's bytes are organized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// An opaque byte stream (constant-rate content, e.g. raw MPEG-1).
    /// The delivery schedule is calculated, so no per-packet structure
    /// is stored.
    Raw,
    /// An Integrated B-tree: packet records interleaved with embedded
    /// index pages, keyed by delivery time (variable-rate content).
    IbTree,
}

impl Wire for FileKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            FileKind::Raw => 0,
            FileKind::IbTree => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("file kind")? {
            0 => Ok(FileKind::Raw),
            1 => Ok(FileKind::IbTree),
            tag => Err(WireError::BadTag {
                what: "file kind",
                tag,
            }),
        }
    }
}

/// One IB-tree root entry: the first delivery-time key covered by an
/// embedded internal page, and the file-page index where that internal
/// page lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootEntry {
    /// First key (delivery offset in µs) covered by the internal page.
    pub first_key: u64,
    /// File-relative index of the data page embedding the internal page.
    pub page: u64,
}

impl Wire for RootEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first_key.encode(buf);
        self.page.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RootEntry {
            first_key: u64::decode(r)?,
            page: u64::decode(r)?,
        })
    }
}

/// Metadata for one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// File name, unique per disk.
    pub name: String,
    /// Raw stream or IB-tree.
    pub kind: FileKind,
    /// Valid payload bytes: the byte length of a raw file, or the sum of
    /// media-record payload bytes for an IB-tree file.
    pub len_bytes: u64,
    /// Play time in microseconds (0 until the file is finalized).
    pub duration_us: u64,
    /// Data blocks holding file pages, in file order. Indices are
    /// relative to the data region.
    pub blocks: Vec<u64>,
    /// Blocks reserved for a recording in progress but not yet written.
    /// Returned to the allocator when the file is finalized ("unused
    /// space will be returned to the system once the recording session
    /// has completed", paper §2.2).
    pub reserved: Vec<u64>,
    /// IB-tree root: one entry per embedded internal page. Empty for raw
    /// files.
    pub root: Vec<RootEntry>,
    /// True once the recording completed and `reserved` was released.
    pub finalized: bool,
}

impl FileMeta {
    /// Creates metadata for a brand-new file.
    pub fn new(name: String, kind: FileKind, reserved: Vec<u64>) -> FileMeta {
        FileMeta {
            name,
            kind,
            len_bytes: 0,
            duration_us: 0,
            blocks: Vec::new(),
            reserved,
            root: Vec::new(),
            finalized: false,
        }
    }

    /// Number of data pages written.
    pub fn pages(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total blocks charged to this file (written + still reserved).
    pub fn blocks_charged(&self) -> u64 {
        (self.blocks.len() + self.reserved.len()) as u64
    }
}

impl Wire for FileMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.kind.encode(buf);
        self.len_bytes.encode(buf);
        self.duration_us.encode(buf);
        self.blocks.encode(buf);
        self.reserved.encode(buf);
        self.root.encode(buf);
        self.finalized.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FileMeta {
            name: String::decode(r)?,
            kind: FileKind::decode(r)?,
            len_bytes: u64::decode(r)?,
            duration_us: u64::decode(r)?,
            blocks: Vec::<u64>::decode(r)?,
            reserved: Vec::<u64>::decode(r)?,
            root: Vec::<RootEntry>::decode(r)?,
            finalized: bool::decode(r)?,
        })
    }
}

/// The in-memory catalog: every file on one disk.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    files: BTreeMap<String, FileMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Looks up a file.
    pub fn get(&self, name: &str) -> Option<&FileMeta> {
        self.files.get(name)
    }

    /// Looks up a file mutably.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut FileMeta> {
        self.files.get_mut(name)
    }

    /// Inserts a new file; the name must be unused.
    pub fn insert(&mut self, meta: FileMeta) -> Result<()> {
        if self.files.contains_key(&meta.name) {
            return Err(Error::AlreadyExists {
                kind: "file",
                name: meta.name,
            });
        }
        self.files.insert(meta.name.clone(), meta);
        Ok(())
    }

    /// Removes a file, returning its metadata (so the caller can free
    /// its blocks).
    pub fn remove(&mut self, name: &str) -> Result<FileMeta> {
        self.files.remove(name).ok_or_else(|| Error::NoSuchContent {
            name: name.to_owned(),
        })
    }

    /// Iterates over all files in name order.
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.values()
    }

    /// Serializes the whole catalog.
    pub fn encode(&self) -> Vec<u8> {
        let list: Vec<FileMeta> = self.files.values().cloned().collect();
        list.to_bytes()
    }

    /// Restores a catalog from [`Catalog::encode`] output.
    pub fn decode(buf: &[u8]) -> Result<Catalog> {
        let list = Vec::<FileMeta>::from_bytes(buf).map_err(Error::from)?;
        let mut cat = Catalog::new();
        for meta in list {
            cat.insert(meta)?;
        }
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_meta(name: &str) -> FileMeta {
        FileMeta {
            name: name.to_owned(),
            kind: FileKind::IbTree,
            len_bytes: 123_456,
            duration_us: 60_000_000,
            blocks: vec![5, 6, 7, 99],
            reserved: vec![100, 101],
            root: vec![RootEntry {
                first_key: 0,
                page: 3,
            }],
            finalized: false,
        }
    }

    #[test]
    fn meta_round_trip() {
        let m = sample_meta("movie");
        assert_eq!(FileMeta::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(m.pages(), 4);
        assert_eq!(m.blocks_charged(), 6);
    }

    #[test]
    fn catalog_insert_get_remove() {
        let mut c = Catalog::new();
        c.insert(sample_meta("a")).unwrap();
        c.insert(sample_meta("b")).unwrap();
        assert!(c.insert(sample_meta("a")).is_err(), "duplicate rejected");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().name, "a");
        assert!(c.get("zzz").is_none());
        let removed = c.remove("a").unwrap();
        assert_eq!(removed.name, "a");
        assert!(c.remove("a").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn catalog_encode_decode() {
        let mut c = Catalog::new();
        for name in ["x", "y", "z"] {
            c.insert(sample_meta(name)).unwrap();
        }
        let back = Catalog::decode(&c.encode()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("y"), c.get("y"));
    }

    #[test]
    fn empty_catalog_round_trips() {
        let c = Catalog::new();
        assert!(Catalog::decode(&c.encode()).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Catalog::decode(&[1, 2, 3]).is_err());
    }

    proptest! {
        #[test]
        fn prop_meta_round_trips(
            name in "[a-z0-9._-]{1,32}",
            len in any::<u64>(),
            blocks in proptest::collection::vec(any::<u64>(), 0..50),
            raw in any::<bool>(),
        ) {
            let m = FileMeta {
                name,
                kind: if raw { FileKind::Raw } else { FileKind::IbTree },
                len_bytes: len,
                duration_us: len / 2,
                blocks,
                reserved: vec![],
                root: vec![],
                finalized: raw,
            };
            prop_assert_eq!(FileMeta::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }
}
