//! Content helpers: generating and uploading synthetic media.
//!
//! The paper's content came from MPEG-1 encoders, NV captures, and VAT
//! sessions; here the `calliope-media` generators stand in. These
//! helpers wrap the record flow — open a port, schedule a recording,
//! stream the packets, finalize — so examples and tests stay short.

use calliope_client::CalliopeClient;
use calliope_media::{filter, mpeg, nv, vat, TimedPacket};
use calliope_types::error::{Error, Result};
use calliope_types::time::BitRate;
use calliope_types::wire::messages::DoneReason;
use std::time::{Duration, Instant};

/// How much faster than real time uploads run. Timestamped protocols
/// (RTP, VAT) carry their schedule in the headers, so arrival pacing
/// only has to be fast enough to keep packets ordered.
pub const UPLOAD_SPEEDUP: f64 = 40.0;

/// Waits until the Coordinator's catalog shows `name` as ready: the
/// client's `GroupEnded` can arrive slightly before the MSU's
/// `StreamDone` finalizes the catalog entry.
fn wait_cataloged(client: &mut CalliopeClient, name: &str) -> Result<()> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.list_content()?.iter().any(|e| e.name == name) {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(Error::internal(format!(
                "recording {name:?} never appeared in the catalog"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn upload_packets(
    client: &mut CalliopeClient,
    name: &str,
    type_name: &str,
    est_secs: u32,
    packets: &[(u64, Vec<u8>)],
) -> Result<()> {
    let port_name = format!("upload-{name}");
    let port = client.open_port(&port_name, type_name)?;
    let mut rec = client.record(name, &port_name, type_name, est_secs, &[&port])?;
    rec.send_trace(0, packets, UPLOAD_SPEEDUP)?;
    match rec.finish(Duration::from_secs(30))? {
        DoneReason::Completed | DoneReason::ClientQuit => {}
        other => {
            return Err(Error::Protocol {
                msg: format!("recording ended abnormally: {other:?}"),
            })
        }
    }
    client.request(
        calliope_types::wire::messages::ClientRequest::UnregisterPort { name: port_name },
    )?;
    wait_cataloged(client, name)
}

/// Records `secs` seconds of synthetic 1.5 Mbit/s MPEG-1 as `name`.
/// Returns the generated stream so callers can verify playback
/// byte-for-byte.
pub fn upload_mpeg(
    client: &mut CalliopeClient,
    name: &str,
    secs: u32,
    seed: u64,
) -> Result<Vec<u8>> {
    let stream = mpeg::generate(BitRate::from_kbps(1500), secs, seed);
    upload_mpeg_bytes(client, name, &stream)?;
    Ok(stream)
}

/// Records an existing MPEG byte stream (e.g. a filtered trick-play
/// file) as `name`.
pub fn upload_mpeg_bytes(client: &mut CalliopeClient, name: &str, stream: &[u8]) -> Result<()> {
    // Chop the opaque stream into 1400-byte packets, paced at the
    // nominal rate (scaled by the upload speedup).
    let rate = BitRate::from_kbps(1500);
    let packets: Vec<(u64, Vec<u8>)> = stream
        .chunks(1400)
        .enumerate()
        .map(|(i, c)| {
            let t = rate.transmit_time(i as u64 * 1400).as_micros();
            (t, c.to_vec())
        })
        .collect();
    let est_secs = (rate.transmit_time(stream.len() as u64).as_micros() / 1_000_000 + 1) as u32;
    upload_packets(client, name, "mpeg1", est_secs, &packets)
}

/// Records a movie plus its offline-filtered fast-forward and
/// fast-backward versions, and attaches them (requires an admin
/// session). Returns the normal-rate stream bytes.
pub fn upload_movie_with_trick(
    client: &mut CalliopeClient,
    name: &str,
    secs: u32,
    seed: u64,
) -> Result<Vec<u8>> {
    let stream = mpeg::generate(BitRate::from_kbps(1500), secs, seed);
    let ff = filter::fast_forward(&stream, filter::SKIP)?;
    let fb = filter::fast_backward(&stream, filter::SKIP)?;
    upload_mpeg_bytes(client, name, &stream)?;
    upload_mpeg_bytes(client, &format!("{name}.ff"), &ff)?;
    upload_mpeg_bytes(client, &format!("{name}.fb"), &fb)?;
    client.attach_trick(name, &format!("{name}.ff"), &format!("{name}.fb"))?;
    Ok(stream)
}

/// Records `secs` seconds of NV-like variable-rate video as `name`.
/// Returns the trace for verification.
pub fn upload_nv(
    client: &mut CalliopeClient,
    name: &str,
    params: &nv::NvParams,
    secs: u32,
    seed: u64,
) -> Result<Vec<TimedPacket>> {
    let trace = nv::generate(params, secs, seed);
    let packets: Vec<(u64, Vec<u8>)> = trace
        .iter()
        .map(|p| (p.time_us, p.payload.clone()))
        .collect();
    upload_packets(client, name, "nv-video", secs + 1, &packets)?;
    Ok(trace)
}

/// Records a composite seminar: NV video plus VAT audio under one
/// content name, as one stream group.
pub fn upload_seminar(
    client: &mut CalliopeClient,
    name: &str,
    secs: u32,
    seed: u64,
) -> Result<(Vec<TimedPacket>, Vec<TimedPacket>)> {
    let video = nv::generate(&nv::paper_files()[0], secs, seed);
    let audio = vat::generate(secs, seed ^ 1);

    let vport_name = format!("upload-{name}-v");
    let aport_name = format!("upload-{name}-a");
    let vport = client.open_port(&vport_name, "nv-video")?;
    let aport = client.open_port(&aport_name, "vat-audio")?;
    let comp_name = format!("upload-{name}-sem");
    client.register_composite(&comp_name, "seminar", &[&vport, &aport])?;

    let mut rec = client.record(name, &comp_name, "seminar", secs + 1, &[&vport, &aport])?;
    // Interleave the two components in time order, scaled.
    let mut vi = 0;
    let mut ai = 0;
    let start = std::time::Instant::now();
    while vi < video.len() || ai < audio.len() {
        let (idx, pkt) = match (video.get(vi), audio.get(ai)) {
            (Some(v), Some(a)) if v.time_us <= a.time_us => {
                vi += 1;
                (0, v)
            }
            (Some(_), Some(a)) => {
                ai += 1;
                (1, a)
            }
            (Some(v), None) => {
                vi += 1;
                (0, v)
            }
            (None, Some(a)) => {
                ai += 1;
                (1, a)
            }
            (None, None) => break,
        };
        let due = Duration::from_micros((pkt.time_us as f64 / UPLOAD_SPEEDUP) as u64);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        rec.send_media(idx, &pkt.payload)?;
    }
    match rec.finish(Duration::from_secs(30))? {
        DoneReason::Completed | DoneReason::ClientQuit => {
            wait_cataloged(client, name)?;
            Ok((video, audio))
        }
        other => Err(Error::Protocol {
            msg: format!("seminar recording ended abnormally: {other:?}"),
        }),
    }
}
