//! VCR commands.
//!
//! Once a stream is scheduled, the client talks directly to the MSU over a
//! control connection the MSU establishes (paper §2.1): pause, play, seek,
//! and quit, plus fast forward / fast backward for content whose filtered
//! trick-mode files have been loaded by an administrator (§2.3.1).

use crate::time::MediaTime;
use core::fmt;

/// A VCR command sent from a client to the MSU controlling its stream.
///
/// For a stream group (composite content), one command controls every
/// stream in the group simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcrCommand {
    /// Resume (or begin) normal-rate playback.
    Play,
    /// Pause playback; the MSU keeps the stream's resources.
    Pause,
    /// Jump to the given offset from the beginning of the content.
    Seek(MediaTime),
    /// Switch to the pre-filtered fast-forward version of the content.
    FastForward,
    /// Switch to the pre-filtered fast-backward version of the content.
    FastBackward,
    /// Terminate the stream and release its resources.
    Quit,
}

impl VcrCommand {
    /// Stable numeric tag used on the wire.
    pub const fn tag(self) -> u8 {
        match self {
            VcrCommand::Play => 0,
            VcrCommand::Pause => 1,
            VcrCommand::Seek(_) => 2,
            VcrCommand::FastForward => 3,
            VcrCommand::FastBackward => 4,
            VcrCommand::Quit => 5,
        }
    }

    /// True if the command ends the stream.
    pub const fn is_terminal(self) -> bool {
        matches!(self, VcrCommand::Quit)
    }

    /// True if the command switches which file the MSU reads (trick play).
    pub const fn is_trick(self) -> bool {
        matches!(self, VcrCommand::FastForward | VcrCommand::FastBackward)
    }
}

impl fmt::Display for VcrCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcrCommand::Play => f.write_str("play"),
            VcrCommand::Pause => f.write_str("pause"),
            VcrCommand::Seek(t) => write!(f, "seek {t}"),
            VcrCommand::FastForward => f.write_str("fast-forward"),
            VcrCommand::FastBackward => f.write_str("fast-backward"),
            VcrCommand::Quit => f.write_str("quit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let cmds = [
            VcrCommand::Play,
            VcrCommand::Pause,
            VcrCommand::Seek(MediaTime::ZERO),
            VcrCommand::FastForward,
            VcrCommand::FastBackward,
            VcrCommand::Quit,
        ];
        for (i, a) in cmds.iter().enumerate() {
            for b in &cmds[i + 1..] {
                assert_ne!(a.tag(), b.tag());
            }
        }
    }

    #[test]
    fn classification() {
        assert!(VcrCommand::Quit.is_terminal());
        assert!(!VcrCommand::Pause.is_terminal());
        assert!(VcrCommand::FastForward.is_trick());
        assert!(VcrCommand::FastBackward.is_trick());
        assert!(!VcrCommand::Seek(MediaTime::from_secs(3)).is_trick());
    }

    #[test]
    fn display() {
        assert_eq!(
            VcrCommand::Seek(MediaTime::from_millis(2500)).to_string(),
            "seek 2.500s"
        );
        assert_eq!(VcrCommand::Quit.to_string(), "quit");
    }
}
