//! Observability for Calliope components.
//!
//! Two halves, both deliberately light so they can sit on the MSU's
//! real-time paths:
//!
//! * [`metrics`] — a registry of atomic counters, gauges (with
//!   high-water marks), and fixed-bucket histograms. Hot paths hold
//!   pre-registered `Arc` handles and touch only relaxed atomics; the
//!   registry lock is taken at registration and snapshot time only.
//!   Snapshots flatten into [`calliope_types::wire::stats::StatsSnapshot`]
//!   so they can travel over the control plane unchanged.
//! * [`logging`] — a `tracing` subscriber with `RUST_LOG`-style target
//!   filtering and compact or JSON line output on stderr. When no
//!   filter is configured the subscriber is never installed and every
//!   `tracing` macro collapses to one relaxed atomic load.
//!
//! A third half, added for post-mortems: [`flight`] — an always-on,
//! lock-free ring of compact binary events per component, dumped on
//! failure, panic, or `SIGUSR1` ([`signal`]) so a crash leaves
//! evidence behind without any logging configured.

pub mod flight;
pub mod logging;
pub mod metrics;
pub mod signal;

pub use flight::{FlightCode, FlightEventRecord, FlightRecorder};
pub use logging::{init_logging, init_logging_with};
pub use metrics::{histogram_quantile, Counter, Gauge, Histogram, Registry, LATENCY_US_BUCKETS};
