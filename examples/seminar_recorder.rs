//! Recording and replaying an MBone seminar — composite content.
//!
//! ```sh
//! cargo run --example seminar_recorder
//! ```
//!
//! The paper's seminar application (§2.1): a composite `Seminar` type
//! made of one NV video stream (variable-rate RTP, stored delivery
//! schedule in the IB-tree) and one VAT audio stream. Recording and
//! playback each use a *stream group*: both components are scheduled on
//! the same MSU and start simultaneously, so one set of VCR commands
//! controls them in sync (§2.2).

use calliope::cluster::Cluster;
use calliope::content;
use std::time::Duration;

fn main() {
    let cluster = Cluster::builder().msus(1).build().expect("cluster start");
    let mut client = cluster.client("seminar-bot", false).expect("session");

    println!("recording a 2 s seminar (NV video + VAT audio) as one composite item…");
    let (video, audio) = content::upload_seminar(&mut client, "colloquium", 2, 3).expect("record");
    let vbytes: u64 = video.iter().map(|p| p.payload.len() as u64).sum();
    let abytes: u64 = audio.iter().map(|p| p.payload.len() as u64).sum();
    println!(
        "  captured {} video packets ({vbytes} bytes), {} audio packets ({abytes} bytes)",
        video.len(),
        audio.len()
    );

    println!("replaying the seminar to a composite display port…");
    let vport = client.open_port("screen", "nv-video").expect("video port");
    let aport = client
        .open_port("speaker", "vat-audio")
        .expect("audio port");
    client
        .register_composite("seminar-out", "seminar", &[&vport, &aport])
        .expect("composite port");

    let mut play = client
        .play("colloquium", "seminar-out", &[&vport, &aport])
        .expect("play");
    println!(
        "  stream group {} with {} members",
        play.group,
        play.streams.len()
    );
    let (vs, as_) = (play.streams[0], play.streams[1]);
    let reason = play.wait_end(Duration::from_secs(60)).expect("end");
    std::thread::sleep(Duration::from_millis(300));

    let v = vport.stats(vs);
    let a = aport.stats(as_);
    println!("playback ended: {reason:?}");
    println!(
        "  video: {} pkts {} bytes, worst lateness {:.1} ms ({}% of recorded bytes)",
        v.packets,
        v.bytes,
        v.max_late_us as f64 / 1000.0,
        v.bytes * 100 / vbytes.max(1)
    );
    println!(
        "  audio: {} pkts {} bytes, worst lateness {:.1} ms ({}% of recorded bytes)",
        a.packets,
        a.bytes,
        a.max_late_us as f64 / 1000.0,
        a.bytes * 100 / abytes.max(1)
    );

    cluster.shutdown();
    println!("done.");
}
