//! Model-checking suite for the metrics primitives. Compiled only
//! under `RUSTFLAGS="--cfg calliope_check"` — the relaxed atomics
//! inside `Counter`/`Gauge`/`Histogram` are `calliope_check` shims, so
//! these tests explore every interleaving (and every weak-memory
//! outcome) of concurrent updates.
//!
//! Run with: `RUSTFLAGS="--cfg calliope_check" cargo test -p calliope-obs --test model`
#![cfg(calliope_check)]

use calliope_check::{model, thread};
use calliope_obs::metrics::Registry;

/// Concurrent relaxed increments never lose a count: `fetch_add` is an
/// atomic read-modify-write even at `Relaxed`, and the model checker's
/// RMWs read the newest store in modification order.
#[test]
fn counter_increments_are_never_lost() {
    let report = model(|| {
        let reg = Registry::new();
        let c = reg.counter("hits");
        let c2 = reg.counter("hits");
        let t = thread::spawn(move || {
            c2.inc();
            c2.add(2);
        });
        c.inc();
        t.join().unwrap();
        assert_eq!(c.get(), 4, "an increment was lost");
    });
    assert!(report.schedules > 1, "must explore multiple interleavings");
}

/// Racing `set` calls keep the high-water mark at the true maximum —
/// the `fetch_max` cannot miss the larger value whatever the order.
#[test]
fn gauge_high_water_is_the_true_maximum() {
    let report = model(|| {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        let g2 = reg.gauge("depth");
        let t = thread::spawn(move || g2.set(7));
        g.set(3);
        t.join().unwrap();
        assert_eq!(g.high_water(), 7, "high-water mark missed the peak");
        let v = g.get();
        assert!(v == 3 || v == 7, "level must be one of the written values");
    });
    assert!(report.schedules > 1);
}

/// Concurrent histogram records land exactly once each: bucket counts
/// and the sample count are conserved.
#[test]
fn histogram_records_are_conserved() {
    let report = model(|| {
        let reg = Registry::new();
        let h = reg.histogram("svc", &[10, 100]);
        let h2 = reg.histogram("svc", &[10, 100]);
        let t = thread::spawn(move || h2.record(5));
        h.record(50);
        t.join().unwrap();
        assert_eq!(h.count(), 2, "a sample was lost");
    });
    assert!(report.schedules > 1);
}
