//! The discrete-event engine: a simulated clock and an event queue.
//!
//! Deliberately minimal — time is nanoseconds in a `u64`, events are any
//! type `E`, and ties break in insertion order so simulations are fully
//! deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point in simulated time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Constructs from (possibly fractional) microseconds, rounding to
    /// the nearest nanosecond. Negative values clamp to zero.
    pub fn from_us_f64(us: f64) -> SimTime {
        SimTime((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// The time in microseconds (truncated).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// The time in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self + delta`.
    pub fn plus(self, delta: SimTime) -> SimTime {
        SimTime(self.0 + delta.0)
    }

    /// Saturating `self - other`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and,
        // on ties, the earliest-scheduled) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue with a simulated clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the model; it is
    /// clamped to `now` (the event fires immediately) to keep the clock
    /// monotone, and debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a delay.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.plus(delay), event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Peeks at the next event time without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks the busy time of a serialized resource for utilization
/// reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct Utilization {
    busy_ns: u64,
}

impl Utilization {
    /// Records `busy` time.
    pub fn add(&mut self, busy: SimTime) {
        self.busy_ns += busy.0;
    }

    /// Busy fraction over the interval `[0, total]`.
    pub fn fraction(&self, total: SimTime) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total.0 as f64
        }
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> SimTime {
        SimTime(self.busy_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_ms(10).as_us(), 10_000);
        assert_eq!(SimTime::from_secs(2).as_ms_f64(), 2_000.0);
        assert_eq!(SimTime::from_us_f64(1.5).0, 1_500);
        assert_eq!(SimTime::from_us_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_us(7).plus(SimTime::from_us(3)).as_us(), 10);
        assert_eq!(
            SimTime::from_us(7).saturating_sub(SimTime::from_us(9)),
            SimTime::ZERO
        );
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_us(30), "c");
        q.schedule_at(SimTime::from_us(10), "a");
        q.schedule_at(SimTime::from_us(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_us(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_us(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_ms(5), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ms(5));
        assert_eq!(q.now(), SimTime::from_ms(5));
        q.schedule_in(SimTime::from_ms(5), ());
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_ms(10));
    }

    #[test]
    fn interleaved_scheduling_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_us(100), 1u32);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule relative to the advanced clock.
        q.schedule_in(SimTime::from_us(50), 2);
        q.schedule_in(SimTime::from_us(25), 3);
        assert_eq!(q.pop().unwrap(), (SimTime::from_us(125), 3));
        assert_eq!(q.pop().unwrap(), (SimTime::from_us(150), 2));
        assert!(q.is_empty());
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::default();
        u.add(SimTime::from_ms(250));
        u.add(SimTime::from_ms(250));
        assert!((u.fraction(SimTime::from_secs(1)) - 0.5).abs() < 1e-9);
        assert_eq!(u.fraction(SimTime::ZERO), 0.0);
        assert_eq!(u.busy(), SimTime::from_ms(500));
    }
}
