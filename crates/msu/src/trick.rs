//! Trick-play position mapping.
//!
//! Fast forward and fast backward play pre-filtered files (paper
//! §2.3.1): the FF file holds every 15th frame in forward order, the FB
//! file the same frames reversed. "If a client issues a command to
//! switch from normal rate to fast forward, the MSU seeks to the frame
//! in the fast forward file corresponding to the current frame of the
//! normal rate file. … Switching back to normal rate follows the same
//! procedure."
//!
//! Positions here are media times within each file. With a skip factor
//! of `k`, the filtered file is `k×` shorter, so content at normal-file
//! time `t` sits at `t/k` in the FF file and at `(D−t)/k` in the FB
//! file (which runs backwards from the end, `D` being the normal
//! duration).

use calliope_types::time::MediaTime;

/// The paper's skip factor (every 15th frame).
pub const SKIP: u64 = 15;

/// Which file a stream is currently playing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrickMode {
    /// The normal-rate file.
    Normal,
    /// The fast-forward filtered file.
    FastForward,
    /// The fast-backward filtered file.
    FastBackward,
}

/// Converts a position in the file for `mode` into the *virtual*
/// position within the normal-rate content.
pub fn to_normal(
    mode: TrickMode,
    pos: MediaTime,
    normal_duration: MediaTime,
    skip: u64,
) -> MediaTime {
    match mode {
        TrickMode::Normal => pos,
        TrickMode::FastForward => MediaTime(pos.as_micros().saturating_mul(skip)),
        TrickMode::FastBackward => {
            normal_duration.saturating_sub(MediaTime(pos.as_micros().saturating_mul(skip)))
        }
    }
}

/// Converts a virtual normal-content position into the position within
/// the file for `mode`.
pub fn from_normal(
    mode: TrickMode,
    normal_pos: MediaTime,
    normal_duration: MediaTime,
    skip: u64,
) -> MediaTime {
    let clamped = normal_pos.min(normal_duration);
    match mode {
        TrickMode::Normal => clamped,
        TrickMode::FastForward => MediaTime(clamped.as_micros() / skip),
        TrickMode::FastBackward => {
            MediaTime(normal_duration.saturating_sub(clamped).as_micros() / skip)
        }
    }
}

/// Computes the position to seek to in the destination file when
/// switching modes at `pos_in_current` within the current file.
pub fn switch_position(
    from: TrickMode,
    to: TrickMode,
    pos_in_current: MediaTime,
    normal_duration: MediaTime,
    skip: u64,
) -> MediaTime {
    let virtual_pos = to_normal(from, pos_in_current, normal_duration, skip);
    from_normal(to, virtual_pos, normal_duration, skip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const D: MediaTime = MediaTime(90 * 60 * 1_000_000); // a 90-minute movie

    #[test]
    fn normal_to_ff_divides_by_skip() {
        let t = MediaTime::from_secs(150);
        let ff = switch_position(TrickMode::Normal, TrickMode::FastForward, t, D, SKIP);
        assert_eq!(ff, MediaTime::from_secs(10));
    }

    #[test]
    fn ff_back_to_normal_multiplies() {
        // Watch FF for 10 s of FF-file time = 150 s of content.
        let ff_pos = MediaTime::from_secs(10);
        let normal = switch_position(TrickMode::FastForward, TrickMode::Normal, ff_pos, D, SKIP);
        assert_eq!(normal, MediaTime::from_secs(150));
    }

    #[test]
    fn fb_runs_from_the_end() {
        // At content position D−30 s, the FB file position is 2 s.
        let t = D.saturating_sub(MediaTime::from_secs(30));
        let fb = switch_position(TrickMode::Normal, TrickMode::FastBackward, t, D, SKIP);
        assert_eq!(fb, MediaTime::from_secs(2));
        // Rewinding for 2 more FB-seconds lands 60 s from the end.
        let back = switch_position(
            TrickMode::FastBackward,
            TrickMode::Normal,
            fb + MediaTime::from_secs(2),
            D,
            SKIP,
        );
        assert_eq!(back, D.saturating_sub(MediaTime::from_secs(60)));
    }

    #[test]
    fn ff_to_fb_reverses_direction_at_the_same_content_point() {
        let ff_pos = MediaTime::from_secs(20); // content 300 s
        let fb = switch_position(
            TrickMode::FastForward,
            TrickMode::FastBackward,
            ff_pos,
            D,
            SKIP,
        );
        let content_from_fb = to_normal(TrickMode::FastBackward, fb, D, SKIP);
        assert_eq!(content_from_fb, MediaTime::from_secs(300));
    }

    #[test]
    fn positions_beyond_duration_clamp() {
        let over = D + MediaTime::from_secs(100);
        let ff = from_normal(TrickMode::FastForward, over, D, SKIP);
        assert_eq!(ff, MediaTime(D.as_micros() / SKIP));
        let fb = from_normal(TrickMode::FastBackward, over, D, SKIP);
        assert_eq!(fb, MediaTime::ZERO);
    }

    #[test]
    fn rewinding_past_the_start_clamps_to_zero() {
        // FB position beyond D/skip maps to content 0, not negative.
        let fb_pos = MediaTime(D.as_micros() / SKIP + 1_000_000);
        let content = to_normal(TrickMode::FastBackward, fb_pos, D, SKIP);
        assert_eq!(content, MediaTime::ZERO);
    }

    proptest! {
        #[test]
        fn prop_round_trips_lose_at_most_skip_microseconds(pos_us in 0u64..5_400_000_000, mode_tag in 0u8..3) {
            let mode = match mode_tag {
                0 => TrickMode::Normal,
                1 => TrickMode::FastForward,
                _ => TrickMode::FastBackward,
            };
            let pos = MediaTime(pos_us);
            let there = switch_position(TrickMode::Normal, mode, pos, D, SKIP);
            let back = switch_position(mode, TrickMode::Normal, there, D, SKIP);
            // Rounding to the filtered file's granularity loses < skip µs.
            let diff = back.saturating_sub(pos).as_micros().max(pos.saturating_sub(back).as_micros());
            prop_assert!(diff < SKIP, "{pos:?} -> {there:?} -> {back:?}");
        }

        #[test]
        fn prop_ff_position_monotone_in_content(a in 0u64..5_400_000_000, b in 0u64..5_400_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let f_lo = from_normal(TrickMode::FastForward, MediaTime(lo), D, SKIP);
            let f_hi = from_normal(TrickMode::FastForward, MediaTime(hi), D, SKIP);
            prop_assert!(f_lo <= f_hi);
            // FB is anti-monotone.
            let b_lo = from_normal(TrickMode::FastBackward, MediaTime(lo), D, SKIP);
            let b_hi = from_normal(TrickMode::FastBackward, MediaTime(hi), D, SKIP);
            prop_assert!(b_lo >= b_hi);
        }
    }
}
