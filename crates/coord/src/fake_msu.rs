//! The §3.3 fake MSU.
//!
//! "To measure the effect of scheduling requests on shared resource
//! loads, we have created a fake MSU which, when scheduled, delays for
//! 50 ms and then reports that the user has terminated the stream."
//!
//! [`FakeMsu`] registers like a real MSU, accepts `ScheduleRead` /
//! `ScheduleWrite`, sleeps the configured delay, acknowledges, and
//! immediately posts `StreamDone` — so the Coordinator experiences the
//! full per-request control-plane load without any data movement.

use calliope_types::error::{Error, Result};
use calliope_types::time::ByteRate;
use calliope_types::wire::messages::{
    CoordEnvelope, CoordToMsu, DiskReport, DoneReason, MsuEnvelope, MsuToCoord,
};
use calliope_types::wire::stats::{MetricEntry, MetricValue, StatsSnapshot};
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::MsuId;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The fake's one-counter stats snapshot, answered on both `GetStats`
/// and (piggybacked) `Ping`.
fn fake_snapshot(id: MsuId, started: Instant, served: &AtomicU64) -> StatsSnapshot {
    StatsSnapshot {
        source: id.to_string(),
        uptime_us: started.elapsed().as_micros() as u64,
        metrics: vec![MetricEntry {
            name: "fake.streams_served".into(),
            // relaxed: stats snapshots tolerate a slightly stale count.
            value: MetricValue::Counter(served.load(Ordering::Relaxed)),
        }],
    }
}

/// A running fake MSU.
pub struct FakeMsu {
    /// Identity assigned by the Coordinator.
    pub id: MsuId,
    stop: Arc<AtomicBool>,
    wedged: Arc<AtomicBool>,
    linger: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl FakeMsu {
    /// Registers with the Coordinator and serves until stopped.
    ///
    /// `delay` is the paper's 50 ms; `disks` controls how much fake
    /// capacity is advertised.
    pub fn start(coordinator: SocketAddr, disks: usize, delay: Duration) -> Result<FakeMsu> {
        let mut conn = TcpStream::connect(coordinator)?;
        conn.set_nodelay(true).ok();
        let reports: Vec<DiskReport> = (0..disks)
            .map(|_| DiskReport {
                capacity_bytes: 2_000_000_000,
                free_bytes: 2_000_000_000,
                bandwidth: ByteRate::from_bytes_per_sec(2_400_000),
            })
            .collect();
        let ctrl_addr = conn.local_addr()?;
        write_frame(
            &mut conn,
            &MsuEnvelope {
                req_id: 0,
                body: MsuToCoord::Register {
                    ctrl_addr,
                    disks: reports,
                    previous: None,
                },
            },
        )?;
        let ack: Option<CoordEnvelope> = read_frame(&mut conn)?;
        let id = match ack {
            Some(CoordEnvelope {
                body: CoordToMsu::RegisterAck { msu, .. },
                ..
            }) => msu,
            other => {
                return Err(Error::internal(format!(
                    "expected RegisterAck, got {other:?}"
                )))
            }
        };

        tracing::info!("fake {id}: registered {disks} disks, per-request delay {delay:?}");
        let started = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let wedged = Arc::new(AtomicBool::new(false));
        let linger = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let wedged2 = Arc::clone(&wedged);
        let linger2 = Arc::clone(&linger);
        let served2 = Arc::clone(&served);
        conn.set_read_timeout(Some(Duration::from_millis(100))).ok();
        // Requests are served concurrently, like a real MSU's scheduling
        // path: the 50 ms delay models per-request work, not a serial
        // bottleneck. The writer is shared under a mutex.
        let writer = Arc::new(parking_lot::Mutex::new(conn.try_clone()?));
        let handle = std::thread::spawn(move || {
            let mut conn = conn;
            loop {
                if stop2.load(Ordering::Acquire) {
                    return;
                }
                // Wedged: keep the TCP connection open but stop serving
                // requests (the heartbeat monitor's quarry — a TCP
                // break alone cannot detect this failure mode).
                if wedged2.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                let env: Option<CoordEnvelope> = match read_frame(&mut conn) {
                    Ok(env) => env,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => return,
                };
                let Some(env) = env else { return };
                match env.body {
                    CoordToMsu::ScheduleRead { stream, trace, .. } => {
                        tracing::debug!(
                            "fake {id}: play {stream} scheduled; will terminate [{trace}]"
                        );
                        let writer = Arc::clone(&writer);
                        let served = Arc::clone(&served2);
                        let linger = Arc::clone(&linger2);
                        std::thread::spawn(move || {
                            std::thread::sleep(delay);
                            let mut w = writer.lock();
                            let _ = write_frame(
                                &mut *w,
                                &MsuEnvelope {
                                    req_id: env.req_id,
                                    body: MsuToCoord::ReadScheduled { error: None },
                                },
                            );
                            if linger.load(Ordering::Acquire) {
                                return; // stream stays "playing" forever
                            }
                            // "…and then reports that the user has
                            // terminated the stream."
                            let _ = write_frame(
                                &mut *w,
                                &MsuEnvelope {
                                    req_id: 0,
                                    body: MsuToCoord::StreamDone {
                                        stream,
                                        reason: DoneReason::ClientQuit,
                                        bytes: 0,
                                        duration_us: 0,
                                        trace,
                                    },
                                },
                            );
                            // relaxed: a monotone test-visible counter; no other data is
                            // published through it.
                            served.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    CoordToMsu::ScheduleWrite { stream, trace, .. } => {
                        tracing::debug!(
                            "fake {id}: record {stream} scheduled; will terminate [{trace}]"
                        );
                        let writer = Arc::clone(&writer);
                        let served = Arc::clone(&served2);
                        let linger = Arc::clone(&linger2);
                        std::thread::spawn(move || {
                            std::thread::sleep(delay);
                            let mut w = writer.lock();
                            let _ = write_frame(
                                &mut *w,
                                &MsuEnvelope {
                                    req_id: env.req_id,
                                    body: MsuToCoord::WriteScheduled {
                                        udp_sink: Some("127.0.0.1:9".parse().expect("static addr")),
                                        error: None,
                                    },
                                },
                            );
                            if linger.load(Ordering::Acquire) {
                                return; // recording stays live forever
                            }
                            let _ = write_frame(
                                &mut *w,
                                &MsuEnvelope {
                                    req_id: 0,
                                    body: MsuToCoord::StreamDone {
                                        stream,
                                        reason: DoneReason::ClientQuit,
                                        bytes: 0,
                                        duration_us: 0,
                                        trace,
                                    },
                                },
                            );
                            // relaxed: a monotone test-visible counter; no other data is
                            // published through it.
                            served.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    CoordToMsu::Ping => {
                        // The Pong piggybacks a snapshot, feeding the
                        // Coordinator's cluster view at heartbeat cost.
                        let snapshot = fake_snapshot(id, started, &served2);
                        let mut w = writer.lock();
                        let _ = write_frame(
                            &mut *w,
                            &MsuEnvelope {
                                req_id: env.req_id,
                                body: MsuToCoord::Pong {
                                    snapshot: Some(snapshot),
                                },
                            },
                        );
                    }
                    CoordToMsu::DeleteFile { .. } => {
                        let mut w = writer.lock();
                        let _ = write_frame(
                            &mut *w,
                            &MsuEnvelope {
                                req_id: env.req_id,
                                body: MsuToCoord::FileDeleted { error: None },
                            },
                        );
                    }
                    CoordToMsu::CopyFile { .. } => {
                        let mut w = writer.lock();
                        let _ = write_frame(
                            &mut *w,
                            &MsuEnvelope {
                                req_id: env.req_id,
                                body: MsuToCoord::FileCopied { error: None },
                            },
                        );
                    }
                    CoordToMsu::GetStats => {
                        // Even the fake MSU answers the metrics probe,
                        // so §3.3 runs can be watched live.
                        let snapshot = fake_snapshot(id, started, &served2);
                        let mut w = writer.lock();
                        let _ = write_frame(
                            &mut *w,
                            &MsuEnvelope {
                                req_id: env.req_id,
                                body: MsuToCoord::Stats { snapshot },
                            },
                        );
                    }
                    CoordToMsu::Cancel { .. } | CoordToMsu::RegisterAck { .. } => {}
                    CoordToMsu::Shutdown => return,
                }
            }
        });
        Ok(FakeMsu {
            id,
            stop,
            wedged,
            linger,
            served,
            handle: Some(handle),
        })
    }

    /// Streams scheduled-and-terminated so far.
    pub fn served(&self) -> u64 {
        // relaxed: observer-side read of a monotone counter.
        self.served.load(Ordering::Relaxed)
    }

    /// Wedges the fake: the TCP connection stays open but no request —
    /// including `Ping` — is ever answered again. Only the heartbeat
    /// monitor can detect this.
    pub fn wedge(&self) {
        self.wedged.store(true, Ordering::Release);
    }

    /// Makes scheduled streams linger instead of terminating instantly:
    /// requests are still acknowledged, but no `StreamDone` follows, so
    /// grants stay live — the shape failover tests need.
    pub fn set_linger(&self) {
        self.linger.store(true, Ordering::Release);
    }

    /// Stops the fake MSU (the Coordinator will mark it down).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FakeMsu {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
