//! VAT-like audio generation.
//!
//! Classic MBone audio: 8 kHz µ-law PCM, one 160-byte packet every
//! 20 ms — a constant 64 Kbit/s of payload. Each packet carries the
//! 8-byte VAT header with a media timestamp in 8 kHz ticks, which the
//! MSU's VAT protocol module uses to derive delivery times.

use crate::TimedPacket;
use calliope_proto::vat::VatHeader;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Audio samples (= bytes, at 8-bit µ-law) per packet.
pub const SAMPLES_PER_PACKET: u32 = 160;

/// Packet interval: 160 samples at 8 kHz = 20 ms.
pub const PACKET_INTERVAL_US: u64 = 20_000;

/// Generates `seconds` of VAT-like audio.
///
/// Deterministic in `seed`.
pub fn generate(seconds: u32, seed: u64) -> Vec<TimedPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = seconds as u64 * 1_000_000 / PACKET_INTERVAL_US;
    let conf_id = rng.gen::<u16>();
    let mut out = Vec::with_capacity(packets as usize);
    for n in 0..packets {
        let header = VatHeader {
            flags: 0,
            format: 1, // µ-law PCM
            conf_id,
            timestamp: (n as u32) * SAMPLES_PER_PACKET,
        };
        let mut payload = header.to_bytes().to_vec();
        let mut body = vec![0u8; SAMPLES_PER_PACKET as usize];
        rng.fill(body.as_mut_slice());
        payload.extend_from_slice(&body);
        out.push(TimedPacket::new(n * PACKET_INTERVAL_US, payload));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn fifty_packets_per_second() {
        let pkts = generate(3, 1);
        assert_eq!(pkts.len(), 150);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.time_us, i as u64 * 20_000);
        }
    }

    #[test]
    fn payload_rate_is_64_kbps() {
        let pkts = generate(10, 2);
        // Strip the 8-byte headers for the nominal payload rate.
        let payload_bits: u64 = pkts.iter().map(|p| (p.payload.len() as u64 - 8) * 8).sum();
        assert_eq!(payload_bits / 10, 64_000);
        // Including headers it is slightly above.
        let avg = measure::avg_bps(&pkts);
        assert!((64_000..70_000).contains(&avg), "{avg}");
    }

    #[test]
    fn headers_carry_advancing_timestamps() {
        let pkts = generate(1, 3);
        for (i, p) in pkts.iter().enumerate() {
            let h = VatHeader::parse(&p.payload).unwrap();
            assert_eq!(h.timestamp, i as u32 * SAMPLES_PER_PACKET);
            assert_eq!(h.format, 1);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate(1, 4), generate(1, 4));
        assert_ne!(generate(1, 4), generate(1, 5));
    }
}
