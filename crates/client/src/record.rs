//! A recording stream group.
//!
//! After `RecordStarted` the client sends Calliope data packets to the
//! MSU's UDP sinks. Each packet carries the protocol payload (RTP, VAT,
//! or raw constant-rate bytes); the MSU's protocol module derives the
//! stored delivery schedule from protocol timestamps or arrival times
//! (§2.3.2). The recording ends with an end-of-stream marker or a VCR
//! `quit`.

use calliope_types::error::{Error, Result};
use calliope_types::wire::data::{DataHeader, PacketKind};
use calliope_types::wire::messages::{ClientToMsu, DoneReason, MsuToClient, RecordStart};
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::{GroupId, MediaTime, StreamId, TraceCtx, VcrCommand};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

/// A live recording group.
pub struct RecordSession {
    /// The stream group id.
    pub group: GroupId,
    /// Per-component stream ids and their MSU sinks, in port order.
    pub sinks: Vec<(StreamId, SocketAddr)>,
    /// Trace contexts minted at admission, parallel to `sinks`.
    pub traces: Vec<TraceCtx>,
    socket: UdpSocket,
    ctrl: TcpStream,
    seq: Vec<u32>,
    ended: Option<DoneReason>,
}

impl RecordSession {
    pub(crate) fn establish(
        group: GroupId,
        starts: Vec<RecordStart>,
        ports: &[&crate::port::DisplayPort],
        timeout: Duration,
    ) -> Result<RecordSession> {
        let ctrl = ports[0]
            .accept_ctrl(timeout)
            .ok_or_else(|| Error::internal("MSU never opened the control connection"))?;
        ctrl.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let socket = UdpSocket::bind((
            match starts[0].udp_sink {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::UNSPECIFIED),
            },
            0,
        ))?;
        let mut session = RecordSession {
            group,
            seq: vec![0; starts.len()],
            sinks: starts.iter().map(|s| (s.stream, s.udp_sink)).collect(),
            traces: starts.iter().map(|s| s.trace).collect(),
            socket,
            ctrl,
            ended: None,
        };
        let deadline = Instant::now() + timeout;
        loop {
            match session.read_msg(deadline)? {
                MsuToClient::GroupReady { group: g, .. } if g == group => return Ok(session),
                MsuToClient::GroupEnded { reason, .. } => {
                    return Err(Error::Protocol {
                        msg: format!("group ended before ready: {reason:?}"),
                    })
                }
                _ => continue,
            }
        }
    }

    fn read_msg(&mut self, deadline: Instant) -> Result<MsuToClient> {
        loop {
            if Instant::now() > deadline {
                return Err(Error::internal("timed out waiting for the MSU"));
            }
            match read_frame(&mut self.ctrl) {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => return Err(Error::SessionClosed),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Number of component streams.
    pub fn components(&self) -> usize {
        self.sinks.len()
    }

    /// Sends one packet for component `idx`. `offset` is informational
    /// for the MSU (recording time derives from protocol timestamps or
    /// arrival).
    pub fn send(&mut self, idx: usize, kind: PacketKind, payload: &[u8]) -> Result<()> {
        let (stream, sink) = *self
            .sinks
            .get(idx)
            .ok_or_else(|| Error::internal(format!("no component {idx}")))?;
        let header = DataHeader {
            stream,
            seq: self.seq[idx],
            offset: MediaTime::ZERO,
            kind,
        };
        self.seq[idx] = self.seq[idx].wrapping_add(1);
        self.socket.send_to(&header.encode_packet(payload), sink)?;
        Ok(())
    }

    /// Sends a media packet for component `idx`.
    pub fn send_media(&mut self, idx: usize, payload: &[u8]) -> Result<()> {
        self.send(idx, PacketKind::Media, payload)
    }

    /// Streams a timed trace into component `idx`, paced in real time
    /// scaled by `speedup` (e.g. 10.0 sends ten times faster — useful
    /// in tests with timestamped protocols whose schedules come from
    /// the headers, not arrival times).
    pub fn send_trace(
        &mut self,
        idx: usize,
        packets: &[(u64, Vec<u8>)],
        speedup: f64,
    ) -> Result<()> {
        let start = Instant::now();
        for (time_us, payload) in packets {
            let due = Duration::from_micros((*time_us as f64 / speedup) as u64);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            self.send_media(idx, payload)?;
        }
        Ok(())
    }

    /// Ends component `idx`'s stream with the end-of-stream marker.
    pub fn finish_component(&mut self, idx: usize) -> Result<()> {
        self.send(idx, PacketKind::EndOfStream, &[])
    }

    /// Ends every component and waits for the MSU to confirm the group
    /// finished (recordings finalize on disk before the confirmation).
    pub fn finish(mut self, timeout: Duration) -> Result<DoneReason> {
        for idx in 0..self.sinks.len() {
            self.finish_component(idx)?;
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.read_msg(deadline)? {
                MsuToClient::GroupEnded { reason, .. } => return Ok(reason),
                _ => continue,
            }
        }
    }

    /// Aborts the recording with a VCR `quit` (whatever arrived so far
    /// is finalized as the content).
    pub fn quit(mut self, timeout: Duration) -> Result<DoneReason> {
        write_frame(
            &mut self.ctrl,
            &ClientToMsu::Vcr {
                group: self.group,
                cmd: VcrCommand::Quit,
            },
        )?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.read_msg(deadline)? {
                MsuToClient::GroupEnded { reason, .. } => {
                    self.ended = Some(reason.clone());
                    return Ok(reason);
                }
                _ => continue,
            }
        }
    }
}
