//! Display ports.
//!
//! "Before sending or receiving multimedia content, the client must
//! create a UDP socket and register that socket with Calliope as a
//! display port." (paper §2.1)
//!
//! A [`DisplayPort`] owns:
//!
//! * the UDP data socket, drained by a receiver thread that keeps
//!   per-stream arrival statistics (packets, bytes, loss by sequence
//!   gap, lateness against the delivery schedule — the client-side view
//!   of the paper's Graphs 1 and 2);
//! * a TCP listener for the control connection the MSU establishes
//!   once a stream is scheduled (§2.2).

use calliope_obs::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};
use calliope_types::wire::data::{DataHeader, PacketKind};
use calliope_types::wire::stats::{MetricEntry, MetricValue, StatsSnapshot};
use calliope_types::StreamId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Arrival statistics for one stream at one port.
#[derive(Clone, Debug, Default)]
pub struct PortStats {
    /// Media + control packets received.
    pub packets: u64,
    /// Interleaved protocol control packets among them (e.g. RTCP).
    pub control_packets: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Packets missing by sequence-number gap.
    pub lost: u64,
    /// Packets that arrived out of order (sequence went backwards).
    pub reordered: u64,
    /// Worst arrival lateness vs. the delivery schedule, µs.
    pub max_late_us: u64,
    /// Sum of arrival lateness, µs (divide by `packets` for the mean).
    pub sum_late_us: u64,
    /// Packets arriving more than 50 ms late (the paper's headline
    /// quality threshold).
    pub late_over_50ms: u64,
    /// End-of-stream marker seen.
    pub eos: bool,
}

impl PortStats {
    /// Mean arrival lateness in milliseconds.
    pub fn mean_late_ms(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.sum_late_us as f64 / self.packets as f64 / 1_000.0
        }
    }

    /// Fraction of packets within 50 ms of their deadline.
    pub fn pct_within_50ms(&self) -> f64 {
        if self.packets == 0 {
            100.0
        } else {
            (self.packets - self.late_over_50ms) as f64 * 100.0 / self.packets as f64
        }
    }
}

struct RecvState {
    stats: PortStats,
    /// Wall instant corresponding to media offset zero (set from the
    /// first packet).
    base: Option<(Instant, u64)>,
    last_seq: Option<u32>,
}

/// A registered display port: data socket + control listener.
pub struct DisplayPort {
    /// Port name (unique within the session).
    pub name: String,
    /// Its atomic content type.
    pub type_name: String,
    data_addr: SocketAddr,
    ctrl_addr: SocketAddr,
    streams: Arc<Mutex<HashMap<StreamId, RecvState>>>,
    ctrl_conns: crossbeam::channel::Receiver<TcpStream>,
    stop: Arc<AtomicBool>,
    /// Port-wide receive metrics, exported in the wire snapshot form so
    /// client-side lateness lines up with MSU-side send lateness.
    registry: Arc<Registry>,
}

/// Receive-path metric handles shared with the receiver thread.
struct RecvMetrics {
    packets: Arc<Counter>,
    bytes: Arc<Counter>,
    lost: Arc<Counter>,
    lateness_us: Arc<Histogram>,
}

impl DisplayPort {
    /// Creates a port: binds a UDP data socket and a TCP control
    /// listener on `bind_ip`, and starts the receiver thread.
    pub fn open(bind_ip: IpAddr, name: &str, type_name: &str) -> std::io::Result<DisplayPort> {
        let data = UdpSocket::bind((bind_ip, 0))?;
        let data_addr = data.local_addr()?;
        let ctrl = TcpListener::bind((bind_ip, 0))?;
        let ctrl_addr = ctrl.local_addr()?;
        let streams: Arc<Mutex<HashMap<StreamId, RecvState>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        let metrics = RecvMetrics {
            packets: registry.counter("recv.packets"),
            bytes: registry.counter("recv.bytes"),
            lost: registry.counter("recv.lost"),
            lateness_us: registry.histogram("recv.lateness_us", LATENCY_US_BUCKETS),
        };

        // Receiver thread: demultiplex by stream id, account arrivals.
        {
            let streams = Arc::clone(&streams);
            let stop = Arc::clone(&stop);
            data.set_read_timeout(Some(Duration::from_millis(100)))?;
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 65_536];
                while !stop.load(Ordering::Acquire) {
                    let n = match data.recv(&mut buf) {
                        Ok(n) => n,
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => return,
                    };
                    let now = Instant::now();
                    let Ok((header, payload)) = DataHeader::decode_packet(&buf[..n]) else {
                        continue;
                    };
                    let mut map = streams.lock();
                    let st = map.entry(header.stream).or_insert_with(|| RecvState {
                        stats: PortStats::default(),
                        base: None,
                        last_seq: None,
                    });
                    if header.kind == PacketKind::EndOfStream {
                        st.stats.eos = true;
                        continue;
                    }
                    st.stats.packets += 1;
                    metrics.packets.inc();
                    if header.kind == PacketKind::Control {
                        st.stats.control_packets += 1;
                    }
                    st.stats.bytes += payload.len() as u64;
                    metrics.bytes.add(payload.len() as u64);
                    if let Some(last) = st.last_seq {
                        let expect = last.wrapping_add(1);
                        if header.seq != expect {
                            if header.seq > expect {
                                let gap = (header.seq - expect) as u64;
                                st.stats.lost += gap;
                                metrics.lost.add(gap);
                            } else {
                                st.stats.reordered += 1;
                            }
                        }
                    }
                    st.last_seq = Some(header.seq);
                    // Lateness vs. the stream's own schedule: the first
                    // packet defines offset-zero's wall time.
                    let (base_at, base_off) =
                        *st.base.get_or_insert((now, header.offset.as_micros()));
                    let expected = base_at
                        + Duration::from_micros(header.offset.as_micros().saturating_sub(base_off));
                    let late_us = now.saturating_duration_since(expected).as_micros() as u64;
                    st.stats.max_late_us = st.stats.max_late_us.max(late_us);
                    st.stats.sum_late_us += late_us;
                    metrics.lateness_us.record(late_us);
                    if late_us > 50_000 {
                        st.stats.late_over_50ms += 1;
                        tracing::debug!(
                            "recv: stream {} packet {} arrived {late_us} µs late",
                            header.stream,
                            header.seq
                        );
                    }
                }
            });
        }

        // Control acceptor thread.
        let (tx, rx) = crossbeam::channel::unbounded();
        {
            let stop = Arc::clone(&stop);
            ctrl.set_nonblocking(true)?;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match ctrl.accept() {
                        Ok((conn, _)) => {
                            if tx.send(conn).is_err() {
                                return;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        Ok(DisplayPort {
            name: name.to_owned(),
            type_name: type_name.to_owned(),
            data_addr,
            ctrl_addr,
            streams,
            ctrl_conns: rx,
            stop,
            registry,
        })
    }

    /// Every port-wide metric plus per-stream arrival counters in the
    /// wire snapshot form, tagged `client:{port name}` — the same shape
    /// MSUs and the Coordinator report, so one tool prints them all.
    pub fn snapshot_stats(&self) -> StatsSnapshot {
        let mut snap = self.registry.snapshot(&format!("client:{}", self.name));
        {
            let map = self.streams.lock();
            for (id, st) in map.iter() {
                let prefix = format!("stream.{}", id.0);
                for (field, v) in [
                    ("packets", st.stats.packets),
                    ("bytes", st.stats.bytes),
                    ("lost", st.stats.lost),
                    ("max_late_us", st.stats.max_late_us),
                ] {
                    snap.metrics.push(MetricEntry {
                        name: format!("{prefix}.{field}"),
                        value: MetricValue::Counter(v),
                    });
                }
            }
        }
        snap.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }

    /// The UDP data address to register with the Coordinator.
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// The TCP control address the MSU will dial.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// Waits for the MSU's control connection (one per stream group).
    pub fn accept_ctrl(&self, timeout: Duration) -> Option<TcpStream> {
        self.ctrl_conns.recv_timeout(timeout).ok()
    }

    /// A handle onto the control-connection queue, used by
    /// [`PlaySession`](crate::play::PlaySession) to adopt the
    /// replacement connection a failover MSU dials after the original
    /// one died. Receivers share the queue, so at most one live group
    /// should hold this per port.
    pub(crate) fn ctrl_conns(&self) -> crossbeam::channel::Receiver<TcpStream> {
        self.ctrl_conns.clone()
    }

    /// Arrival statistics for one stream.
    pub fn stats(&self, stream: StreamId) -> PortStats {
        self.streams
            .lock()
            .get(&stream)
            .map(|s| s.stats.clone())
            .unwrap_or_default()
    }

    /// True once the stream's end-of-stream marker arrived.
    pub fn saw_eos(&self, stream: StreamId) -> bool {
        self.stats(stream).eos
    }

    /// Streams seen on this port.
    pub fn streams(&self) -> Vec<StreamId> {
        self.streams.lock().keys().copied().collect()
    }
}

impl Drop for DisplayPort {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::MediaTime;
    use std::net::Ipv4Addr;

    fn localhost() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    fn send(to: SocketAddr, stream: u64, seq: u32, offset_us: u64, kind: PacketKind, len: usize) {
        let sock = UdpSocket::bind((localhost(), 0)).unwrap();
        let header = DataHeader {
            stream: StreamId(stream),
            seq,
            offset: MediaTime(offset_us),
            kind,
        };
        sock.send_to(&header.encode_packet(&vec![0u8; len]), to)
            .unwrap();
    }

    fn wait_packets(port: &DisplayPort, stream: u64, n: u64) {
        for _ in 0..200 {
            if port.stats(StreamId(stream)).packets >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {n} packets");
    }

    #[test]
    fn receiver_counts_packets_and_bytes() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        for seq in 0..5u32 {
            send(
                port.data_addr(),
                1,
                seq,
                seq as u64 * 1000,
                PacketKind::Media,
                100,
            );
        }
        wait_packets(&port, 1, 5);
        let s = port.stats(StreamId(1));
        assert_eq!(s.packets, 5);
        assert_eq!(s.bytes, 500);
        assert_eq!(s.lost, 0);
        assert!(!s.eos);
        assert_eq!(port.streams(), vec![StreamId(1)]);
    }

    #[test]
    fn sequence_gaps_count_as_loss() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        send(port.data_addr(), 2, 0, 0, PacketKind::Media, 10);
        send(port.data_addr(), 2, 3, 3000, PacketKind::Media, 10);
        wait_packets(&port, 2, 2);
        assert_eq!(port.stats(StreamId(2)).lost, 2);
    }

    #[test]
    fn eos_is_flagged() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        send(port.data_addr(), 3, 0, 0, PacketKind::Media, 10);
        wait_packets(&port, 3, 1);
        assert!(!port.saw_eos(StreamId(3)));
        send(port.data_addr(), 3, 1, 1000, PacketKind::EndOfStream, 0);
        for _ in 0..200 {
            if port.saw_eos(StreamId(3)) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(port.saw_eos(StreamId(3)));
        // EOS does not count as a media packet.
        assert_eq!(port.stats(StreamId(3)).packets, 1);
    }

    #[test]
    fn lateness_measured_against_schedule() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        // Packet 0 at offset 0 establishes the base; packet 1 claims an
        // offset 200 ms in the future but arrives immediately → 0 late.
        send(port.data_addr(), 4, 0, 0, PacketKind::Media, 10);
        send(port.data_addr(), 4, 1, 200_000, PacketKind::Media, 10);
        wait_packets(&port, 4, 2);
        let early = port.stats(StreamId(4));
        assert_eq!(early.late_over_50ms, 0);
        // Packet 2 was due at 100 ms but arrives ~at the same time as
        // the others plus our sleep: make it late by sleeping past it.
        std::thread::sleep(Duration::from_millis(200));
        send(port.data_addr(), 4, 2, 100_000, PacketKind::Media, 10);
        wait_packets(&port, 4, 3);
        let s = port.stats(StreamId(4));
        assert!(s.max_late_us >= 90_000, "{}", s.max_late_us);
        assert_eq!(s.late_over_50ms, 1);
        assert!(s.pct_within_50ms() < 100.0);
        // And the reorder counter fired (seq went 1 → 2 fine, so no).
        assert_eq!(s.reordered, 0);
    }

    #[test]
    fn multiple_streams_are_demultiplexed() {
        let port = DisplayPort::open(localhost(), "p", "seminar").unwrap();
        send(port.data_addr(), 10, 0, 0, PacketKind::Media, 10);
        send(port.data_addr(), 11, 0, 0, PacketKind::Media, 20);
        wait_packets(&port, 10, 1);
        wait_packets(&port, 11, 1);
        assert_eq!(port.stats(StreamId(10)).bytes, 10);
        assert_eq!(port.stats(StreamId(11)).bytes, 20);
        let mut streams = port.streams();
        streams.sort();
        assert_eq!(streams, vec![StreamId(10), StreamId(11)]);
    }

    #[test]
    fn ctrl_listener_accepts_connections() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        assert!(port.accept_ctrl(Duration::from_millis(50)).is_none());
        let _conn = TcpStream::connect(port.ctrl_addr()).unwrap();
        let accepted = port.accept_ctrl(Duration::from_secs(2));
        assert!(accepted.is_some());
    }

    #[test]
    fn garbage_datagrams_are_ignored() {
        let port = DisplayPort::open(localhost(), "p", "mpeg1").unwrap();
        let sock = UdpSocket::bind((localhost(), 0)).unwrap();
        sock.send_to(b"noise", port.data_addr()).unwrap();
        send(port.data_addr(), 5, 0, 0, PacketKind::Media, 10);
        wait_packets(&port, 5, 1);
        assert_eq!(port.stats(StreamId(5)).packets, 1);
    }

    #[test]
    fn snapshot_exports_port_and_stream_metrics() {
        let port = DisplayPort::open(localhost(), "tv", "mpeg1").unwrap();
        for seq in 0..4u32 {
            send(
                port.data_addr(),
                9,
                seq,
                seq as u64 * 1000,
                PacketKind::Media,
                50,
            );
        }
        wait_packets(&port, 9, 4);
        let snap = port.snapshot_stats();
        assert_eq!(snap.source, "client:tv");
        assert_eq!(snap.counter("recv.packets"), 4);
        assert_eq!(snap.counter("recv.bytes"), 200);
        assert_eq!(snap.counter("stream.9.packets"), 4);
        let late = snap.get("recv.lateness_us").unwrap();
        assert!(matches!(
            late,
            calliope_types::wire::stats::MetricValue::Histogram { count: 4, .. }
        ));
        // Sorted for stable display.
        let names: Vec<_> = snap.metrics.iter().map(|m| m.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn stats_helpers() {
        let s = PortStats {
            packets: 10,
            sum_late_us: 100_000,
            late_over_50ms: 2,
            ..Default::default()
        };
        assert!((s.mean_late_ms() - 10.0).abs() < 1e-9);
        assert!((s.pct_within_50ms() - 80.0).abs() < 1e-9);
        assert_eq!(PortStats::default().pct_within_50ms(), 100.0);
    }
}
