//! Shared per-stream and per-group runtime state.
//!
//! The disk thread, network thread, and control thread coordinate
//! through [`StreamShared`]: a small control block under a mutex
//! ([`StreamCtl`]) plus the lock-free page ring (held privately by the
//! two data-path threads). VCR operations mutate the control block and
//! bump its *generation*; pages carry the generation they were read
//! under, so stale pages from before a seek are discarded instead of
//! played.

use crate::pacer::Pacer;
use crate::trick::TrickMode;
use calliope_proto::schedule::CbrSchedule;
use calliope_storage::catalog::{FileKind, RootEntry};
use calliope_types::{GroupId, StreamId, TraceCtx};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of the file a stream is currently reading.
#[derive(Clone, Debug)]
pub struct ActiveFile {
    /// File name on the MSU file system.
    pub name: String,
    /// Raw (CBR) or IB-tree (VBR).
    pub kind: FileKind,
    /// Number of pages.
    pub pages: u64,
    /// Payload length in bytes.
    pub len_bytes: u64,
    /// IB-tree root (empty for raw files).
    pub root: Vec<RootEntry>,
    /// Play duration in microseconds.
    pub duration_us: u64,
}

/// Lifecycle of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamPhase {
    /// Waiting for the first buffer (and for the group to be released).
    Priming,
    /// Delivering (or recording) data.
    Running,
    /// Stopped; threads should drop it.
    Done,
}

/// One page handed from the disk thread to the network thread.
#[derive(Clone, Debug)]
pub struct PageBuf {
    /// Generation the page was read under (stale pages are discarded).
    pub gen: u64,
    /// File-relative page index.
    pub index: u64,
    /// Bytes to skip at the front (set on the first page after a raw
    /// seek, which rarely lands on a page boundary).
    pub skip: usize,
    /// Valid bytes (raw files: the final page is usually short).
    pub valid: usize,
    /// The page itself — pool-backed and refcounted, so handing it to
    /// the network thread (and cloning it into packets) never copies.
    pub data: crate::pool::PageData,
}

/// The mutable control block of a play stream.
#[derive(Debug)]
pub struct StreamCtl {
    /// Lifecycle phase.
    pub phase: StreamPhase,
    /// Bumped by every seek/trick-switch; stale pages are discarded.
    pub gen: u64,
    /// Which file variant is playing (normal / FF / FB).
    pub mode: TrickMode,
    /// The file being read.
    pub file: ActiveFile,
    /// Disk-side: next page to read.
    pub next_page: u64,
    /// Disk-side: byte skip to attach to the next page read (raw seek).
    pub pending_skip: usize,
    /// Disk-side: reached end of file.
    pub eof: bool,
    /// Net-side: for stored schedules, drop records before this offset
    /// (µs) after a seek.
    pub skip_until_us: u64,
    /// Net-side: CBR packet sequence to resume at for this generation.
    pub start_seq: u64,
    /// Deadline computation.
    pub pacer: Pacer,
}

/// State shared by every thread touching one stream.
#[derive(Debug)]
pub struct StreamShared {
    /// Stream id.
    pub id: StreamId,
    /// Its group.
    pub group: GroupId,
    /// Local disk index holding the file.
    pub disk: usize,
    /// End-to-end trace minted by the Coordinator at admission; echoed
    /// on `StreamDone` and `GroupReady` so one id follows the stream
    /// through every component's logs and flight recorders.
    pub trace: TraceCtx,
    /// The control block.
    pub ctl: Mutex<StreamCtl>,
    /// Simple delivery statistics.
    pub stats: StreamStats,
}

/// A packet later than this missed its deadline outright: lateness up
/// to one pacing tick (10 ms, the paper's timer granularity) is
/// expected jitter; beyond it the MSU fell behind schedule.
pub const DEADLINE_MISS_US: u64 = 10_000;

/// Lightweight delivery counters (inspected by tests and the status
/// API; the client measures true network lateness).
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Packets sent (or recorded).
    pub packets: AtomicU64,
    /// Payload bytes sent (or recorded).
    pub bytes: AtomicU64,
    /// Worst send lateness observed, µs.
    pub max_late_us: AtomicU64,
    /// Packets sent more than [`DEADLINE_MISS_US`] behind schedule.
    pub deadline_misses: AtomicU64,
}

impl StreamStats {
    /// Records one sent packet.
    pub fn note_packet(&self, bytes: usize, late_us: u64) {
        // relaxed: independent monotone counters on the send hot
        // path; readers (stats snapshots) tolerate staleness and
        // need no ordering between them.
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.max_late_us.fetch_max(late_us, Ordering::Relaxed);
        if late_us > DEADLINE_MISS_US {
            // relaxed: same monotone-counter contract as above.
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// State shared by the streams of one group.
#[derive(Debug)]
pub struct GroupShared {
    /// Group id.
    pub id: GroupId,
    /// Expected member count (from the Coordinator).
    pub size: u32,
    /// Members primed so far; when it reaches `size` the group releases.
    pub primed: Mutex<HashSet<StreamId>>,
    /// Set once every member is primed: all members start simultaneously
    /// (paper §2.2: one MSU per group so VCR commands stay in sync).
    pub released: AtomicBool,
    /// Members known so far.
    pub members: Mutex<Vec<StreamId>>,
}

impl GroupShared {
    /// Creates an empty group expecting `size` members.
    pub fn new(id: GroupId, size: u32) -> Arc<GroupShared> {
        Arc::new(GroupShared {
            id,
            size,
            primed: Mutex::new(HashSet::new()),
            released: AtomicBool::new(false),
            members: Mutex::new(Vec::new()),
        })
    }

    /// Marks a member primed; returns true if this releases the group.
    pub fn prime(&self, stream: StreamId) -> bool {
        let mut primed = self.primed.lock();
        primed.insert(stream);
        if primed.len() as u32 >= self.size && !self.released.swap(true, Ordering::AcqRel) {
            return true;
        }
        false
    }

    /// True once all members are primed.
    pub fn is_released(&self) -> bool {
        self.released.load(Ordering::Acquire)
    }
}

/// Computes the CBR packetizer state for a seek to media time `t`:
/// returns `(page, skip_bytes_within_page, packet_seq)`.
pub fn raw_seek(
    schedule: &CbrSchedule,
    t: calliope_types::MediaTime,
    page_size: usize,
) -> (u64, usize, u64) {
    let seq = schedule.seq_at(t);
    let byte = schedule.byte_of(seq);
    let page = byte / page_size as u64;
    let skip = (byte % page_size as u64) as usize;
    (page, skip, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::time::{BitRate, MediaTime};

    #[test]
    fn group_releases_when_all_members_prime() {
        let g = GroupShared::new(GroupId(1), 2);
        assert!(!g.is_released());
        assert!(!g.prime(StreamId(1)), "first member does not release");
        assert!(!g.is_released());
        assert!(g.prime(StreamId(2)), "second member releases");
        assert!(g.is_released());
        // Re-priming does not re-release.
        assert!(!g.prime(StreamId(2)));
    }

    #[test]
    fn duplicate_priming_does_not_release_early() {
        let g = GroupShared::new(GroupId(1), 2);
        assert!(!g.prime(StreamId(1)));
        assert!(!g.prime(StreamId(1)), "same stream twice is one member");
        assert!(!g.is_released());
    }

    #[test]
    fn singleton_group_releases_immediately() {
        let g = GroupShared::new(GroupId(2), 1);
        assert!(g.prime(StreamId(9)));
        assert!(g.is_released());
    }

    #[test]
    fn raw_seek_computes_page_and_skip() {
        let s = CbrSchedule::new(BitRate::from_kbps(1500), 4096);
        // Packet 100 starts at byte 409600 = page 1 (256 KB pages) +
        // 147456 bytes in.
        let t = s.offset_of(100);
        let (page, skip, seq) = raw_seek(&s, t, 256 * 1024);
        assert_eq!(seq, 100);
        assert_eq!(page, 1);
        assert_eq!(skip, 409600 - 262144);
        // Time zero is the file start.
        assert_eq!(raw_seek(&s, MediaTime::ZERO, 256 * 1024), (0, 0, 0));
    }

    #[test]
    fn stats_track_maximum_lateness() {
        let s = StreamStats::default();
        s.note_packet(4096, 500);
        s.note_packet(4096, 12_000);
        s.note_packet(4096, 3_000);
        // relaxed: single-threaded test readback.
        assert_eq!(s.packets.load(Ordering::Relaxed), 3);
        assert_eq!(s.bytes.load(Ordering::Relaxed), 3 * 4096);
        assert_eq!(s.max_late_us.load(Ordering::Relaxed), 12_000);
        // Only the 12 ms packet exceeded the one-tick allowance.
        assert_eq!(s.deadline_misses.load(Ordering::Relaxed), 1);
    }
}
