//! E5 — §3.2.3: the memory-path bottleneck analysis.
//!
//! "Our system can read memory at 53 MByte/sec, write it at 25
//! MByte/sec, and copy at 18 MByte/sec. … the fastest rate at which our
//! test system could move data along this path is
//! 1/(1/25 + 1/18 + 2/53) = 7.5 MByte/sec. … the system moved data at
//! about 6.3 MByte/sec."

use calliope_bench::banner;
use calliope_sim::baseline::{run_scenario, Workload};
use calliope_sim::machine::MachineParams;
use calliope_sim::memory::{MemoryModel, Pass};

fn main() {
    banner(
        "E5",
        "Memory-system bottleneck of the MSU data path",
        "§3.2.3",
    );
    let m = MemoryModel::default();
    println!("component rates (paper-measured):");
    println!("  read  {:>5.0} MB/s", m.read_mb_s);
    println!("  write {:>5.0} MB/s", m.write_mb_s);
    println!("  copy  {:>5.0} MB/s", m.copy_mb_s);
    println!();
    println!("the MSU read path: disk-DMA write → mbuf copy → checksum read → NIC-DMA read");
    println!(
        "  computed ceiling 1/(1/25 + 1/18 + 2/53) = {:>4.1} MB/s   (paper: 7.5)",
        m.computed_rate()
    );
    println!(
        "  after instruction-fetch overhead        = {:>4.1} MB/s   (paper measured: 6.3)",
        m.measured_rate()
    );
    println!();
    println!("other paths through the same model:");
    println!(
        "  ttcp-only path (copy + 2 reads): {:>4.1} MB/s raw, {:>4.1} with overhead",
        m.path_rate(&m.ttcp_path()),
        m.path_rate(&m.ttcp_path()) / m.overhead,
    );
    println!(
        "  copy alone: {:>4.1} MB/s   write alone: {:>4.1} MB/s",
        m.path_rate(&[Pass::Copy]),
        m.path_rate(&[Pass::Write]),
    );
    println!();

    // Cross-check against the event-driven machine: ttcp with no disks
    // lands at the paper's 8.5 MB/s once per-packet CPU costs join the
    // per-byte memory costs.
    let secs = if calliope_bench::quick() { 5 } else { 20 };
    let sim = run_scenario(MachineParams::default(), &[], Workload::FddiOnly, secs, 1);
    println!(
        "event-driven cross-check: ttcp over the full machine model = {:.1} MB/s (paper: 8.5)",
        sim.fddi_mb_s.unwrap_or(0.0)
    );
}
