//! Deterministic fault injection for block devices.
//!
//! [`FaultyDisk`] wraps any [`BlockDevice`] and fails I/O according to a
//! seed-driven [`FaultPlan`]: the Nth read or write errors, every
//! transfer can be slowed by a fixed latency, touching a block at or
//! beyond a threshold kills the device outright, and a per-million
//! probability injects random (but seed-reproducible) errors. A shared
//! [`FaultControl`] handle lets a test kill the device at runtime —
//! from outside the disk thread — and observe how many faults fired.
//!
//! The point is to test the failure paths the paper hand-waves ("the
//! Coordinator detects when one of the MSUs fails", §2.2) without
//! `kill -9`: an injected read error must surface as
//! `StreamDone { reason: IoError }`, flow client-visible, and trigger
//! replica failover when a copy of the content survives elsewhere.

use crate::block::BlockDevice;
use calliope_types::error::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic fault schedule for one device.
///
/// All triggers are optional; the default plan injects nothing, so a
/// `FaultyDisk` with a default plan behaves exactly like its inner
/// device (useful when only runtime [`FaultControl::kill`] is wanted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the probabilistic trigger; two devices with the same
    /// seed and workload fail identically.
    pub seed: u64,
    /// Fail the Nth block read (1-based, counted per block so batched
    /// reads participate). `None` disables the trigger.
    pub fail_read_nth: Option<u64>,
    /// Fail the Nth block write (1-based).
    pub fail_write_nth: Option<u64>,
    /// Added to every read before it is issued.
    pub read_latency: Duration,
    /// Added to every write before it is issued.
    pub write_latency: Duration,
    /// The first access touching a block index `>= K` kills the device
    /// permanently (models a head crash partway across the platter).
    pub dead_after_block: Option<u64>,
    /// Probability, in parts per million, that any given block transfer
    /// fails. Draws come from the seeded generator, so a run is
    /// reproducible.
    pub fail_ppm: u32,
}

impl FaultPlan {
    /// A plan whose only trigger is the Nth read failing.
    pub fn fail_read(nth: u64) -> FaultPlan {
        FaultPlan {
            fail_read_nth: Some(nth),
            ..FaultPlan::default()
        }
    }

    /// A plan whose only trigger is the Nth write failing.
    pub fn fail_write(nth: u64) -> FaultPlan {
        FaultPlan {
            fail_write_nth: Some(nth),
            ..FaultPlan::default()
        }
    }
}

/// Shared runtime handle to a [`FaultyDisk`].
///
/// Cloned out of the wrapper at construction time so tests (or the
/// `Cluster` chaos harness) can kill the device from another thread
/// while the MSU's disk process owns the device itself.
#[derive(Debug, Default)]
pub struct FaultControl {
    dead: AtomicBool,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
}

impl FaultControl {
    /// Kills the device: every subsequent transfer fails.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Whether the device has died (by plan or by [`kill`](Self::kill)).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Number of reads that have failed with an injected error.
    pub fn read_errors(&self) -> u64 {
        self.read_errors.load(Ordering::SeqCst)
    }

    /// Number of writes that have failed with an injected error.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::SeqCst)
    }
}

/// A [`BlockDevice`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyDisk<D: BlockDevice> {
    inner: D,
    plan: FaultPlan,
    ctl: Arc<FaultControl>,
    reads: u64,
    writes: u64,
    rng: u64,
}

impl<D: BlockDevice> std::fmt::Debug for FaultyDisk<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyDisk")
            .field("plan", &self.plan)
            .field("ctl", &self.ctl)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish_non_exhaustive()
    }
}

impl<D: BlockDevice> FaultyDisk<D> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: D, plan: FaultPlan) -> FaultyDisk<D> {
        // xorshift* must not start at zero; fold in a constant.
        let rng = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        FaultyDisk {
            inner,
            plan,
            ctl: Arc::new(FaultControl::default()),
            reads: 0,
            writes: 0,
            rng,
        }
    }

    /// The shared control handle (kill switch + error counters).
    pub fn control(&self) -> Arc<FaultControl> {
        Arc::clone(&self.ctl)
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// One xorshift64* draw.
    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Common per-transfer checks; `count` blocks starting at `start`.
    /// Returns the injected error, if any fired.
    fn check(&mut self, is_read: bool, start: u64, count: u64) -> Result<()> {
        if self.ctl.is_dead() {
            return self.fail(is_read, "device is dead");
        }
        if let Some(k) = self.plan.dead_after_block {
            if start.saturating_add(count) > k {
                self.ctl.kill();
                return self.fail(is_read, &format!("device died crossing block {k}"));
            }
        }
        let (counter, nth, latency) = if is_read {
            self.reads += count;
            (self.reads, self.plan.fail_read_nth, self.plan.read_latency)
        } else {
            self.writes += count;
            (
                self.writes,
                self.plan.fail_write_nth,
                self.plan.write_latency,
            )
        };
        if let Some(n) = nth {
            // The Nth block transfer falls inside this (possibly
            // batched) operation.
            if counter >= n && counter - count < n {
                let what = if is_read { "read" } else { "write" };
                return self.fail(is_read, &format!("injected fault on {what} #{n}"));
            }
        }
        if self.plan.fail_ppm > 0 && self.draw() % 1_000_000 < u64::from(self.plan.fail_ppm) {
            return self.fail(is_read, "injected random fault");
        }
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        Ok(())
    }

    fn fail(&self, is_read: bool, msg: &str) -> Result<()> {
        let c = if is_read {
            &self.ctl.read_errors
        } else {
            &self.ctl.write_errors
        };
        c.fetch_add(1, Ordering::SeqCst);
        Err(Error::storage(format!("faulty-disk: {msg}")))
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDisk<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_block(&mut self, idx: u64, buf: &mut [u8]) -> Result<()> {
        self.check(true, idx, 1)?;
        self.inner.read_block(idx, buf)
    }

    fn read_blocks_into(&mut self, start: u64, bufs: &mut [&mut [u8]]) -> Result<()> {
        if !bufs.is_empty() {
            self.check(true, start, bufs.len() as u64)?;
        }
        self.inner.read_blocks_into(start, bufs)
    }

    fn write_block(&mut self, idx: u64, buf: &[u8]) -> Result<()> {
        self.check(false, idx, 1)?;
        self.inner.write_block(idx, buf)
    }

    fn sync(&mut self) -> Result<()> {
        if self.ctl.is_dead() {
            self.ctl.read_errors.fetch_add(1, Ordering::SeqCst);
            return Err(Error::storage("faulty-disk: device is dead"));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDisk;

    fn disk(plan: FaultPlan) -> FaultyDisk<MemDisk> {
        FaultyDisk::new(MemDisk::new(512, 32), plan)
    }

    #[test]
    fn default_plan_is_transparent() {
        let mut d = disk(FaultPlan::default());
        let buf = vec![7u8; 512];
        let mut out = vec![0u8; 512];
        for i in 0..8 {
            d.write_block(i, &buf).unwrap();
            d.read_block(i, &mut out).unwrap();
            assert_eq!(out, buf);
        }
        d.sync().unwrap();
        let ctl = d.control();
        assert_eq!(ctl.read_errors(), 0);
        assert_eq!(ctl.write_errors(), 0);
        assert!(!ctl.is_dead());
    }

    #[test]
    fn nth_read_fails_and_is_counted() {
        let mut d = disk(FaultPlan::fail_read(3));
        let mut out = vec![0u8; 512];
        d.read_block(0, &mut out).unwrap();
        d.read_block(1, &mut out).unwrap();
        assert!(d.read_block(2, &mut out).is_err(), "third read must fail");
        // Only that one read fails; the plan is a schedule, not a state.
        d.read_block(3, &mut out).unwrap();
        assert_eq!(d.control().read_errors(), 1);
    }

    #[test]
    fn nth_write_fails() {
        let mut d = disk(FaultPlan::fail_write(2));
        let buf = vec![0u8; 512];
        d.write_block(0, &buf).unwrap();
        assert!(d.write_block(1, &buf).is_err());
        d.write_block(2, &buf).unwrap();
        assert_eq!(d.control().write_errors(), 1);
    }

    #[test]
    fn batched_read_fails_when_nth_falls_inside() {
        let mut d = disk(FaultPlan::fail_read(3));
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 512]).collect();
        let mut refs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        // Blocks 1..=4 of the read count; #3 is inside this batch.
        assert!(d.read_blocks_into(0, &mut refs).is_err());
        // The counter advanced past the trigger: later batches succeed.
        d.read_blocks_into(0, &mut refs).unwrap();
    }

    #[test]
    fn crossing_the_dead_block_kills_the_device() {
        let mut d = disk(FaultPlan {
            dead_after_block: Some(16),
            ..FaultPlan::default()
        });
        let mut out = vec![0u8; 512];
        d.read_block(15, &mut out).unwrap();
        assert!(d.read_block(16, &mut out).is_err());
        let ctl = d.control();
        assert!(ctl.is_dead());
        // Death is permanent: even in-range blocks now fail.
        assert!(d.read_block(0, &mut out).is_err());
        assert!(d.write_block(0, &[0u8; 512]).is_err());
        assert!(d.sync().is_err());
    }

    #[test]
    fn runtime_kill_switch_fails_everything() {
        let d = disk(FaultPlan::default());
        let ctl = d.control();
        let mut d = d;
        let mut out = vec![0u8; 512];
        d.read_block(0, &mut out).unwrap();
        ctl.kill();
        assert!(d.read_block(0, &mut out).is_err());
        assert!(d.write_block(0, &[0u8; 512]).is_err());
        assert!(ctl.read_errors() >= 1);
    }

    #[test]
    fn random_faults_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut d = disk(FaultPlan {
                seed,
                fail_ppm: 200_000, // 20% per transfer
                ..FaultPlan::default()
            });
            let mut out = vec![0u8; 512];
            (0..64)
                .map(|_| d.read_block(0, &mut out).is_err())
                .collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay the same faults");
        assert!(a.iter().any(|&e| e), "20% over 64 draws should fire");
        assert!(a.iter().any(|&e| !e), "and should not fire every time");
        assert_ne!(a, run(8), "different seeds should diverge");
    }

    #[test]
    fn latency_is_applied() {
        let mut d = disk(FaultPlan {
            read_latency: Duration::from_millis(5),
            ..FaultPlan::default()
        });
        let mut out = vec![0u8; 512];
        let t0 = std::time::Instant::now();
        for i in 0..4 {
            d.read_block(i, &mut out).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
