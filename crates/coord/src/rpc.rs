//! The intra-server RPC layer: Coordinator ↔ MSU connections.
//!
//! "In Calliope, the Coordinator and MSUs communicate using TCP
//! connections." (paper §2) Each accepted MSU connection gets a reader
//! thread; requests carry correlation ids, replies are routed back to
//! the waiting caller, and unsolicited messages (`StreamDone`) go to a
//! notification channel. A broken connection marks the MSU unavailable
//! — the paper's failure detector.

use calliope_types::error::{Error, Result};
use calliope_types::wire::messages::{CoordEnvelope, CoordToMsu, MsuToCoord};
use calliope_types::wire::write_frame;
use calliope_types::MsuId;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default RPC timeout. Scheduling involves disk metadata work on the
/// MSU; the paper tolerates multi-second VCR repositioning, so be
/// generous.
pub const RPC_TIMEOUT: Duration = Duration::from_secs(15);

/// One live MSU connection.
pub struct MsuConn {
    /// Write half (frames are written under the lock).
    pub writer: Mutex<TcpStream>,
    /// Pending RPCs by correlation id.
    pending: Mutex<HashMap<u64, Sender<MsuToCoord>>>,
}

/// The registry of live MSU connections.
#[derive(Default)]
pub struct MsuConns {
    conns: Mutex<HashMap<MsuId, Arc<MsuConn>>>,
    next_req: AtomicU64,
}

impl MsuConns {
    /// Creates an empty registry.
    pub fn new() -> MsuConns {
        MsuConns {
            conns: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
        }
    }

    /// Installs (or replaces) the connection for an MSU.
    pub fn install(&self, msu: MsuId, stream: TcpStream) -> Arc<MsuConn> {
        let conn = Arc::new(MsuConn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
        });
        self.conns.lock().insert(msu, Arc::clone(&conn));
        conn
    }

    /// Drops an MSU's connection (it broke) and fast-fails every RPC
    /// still waiting on it: dropping a pending `Sender` disconnects its
    /// bounded channel, so the caller's `recv_timeout` errors
    /// immediately instead of blocking out the full [`RPC_TIMEOUT`].
    pub fn remove(&self, msu: MsuId) {
        let conn = self.conns.lock().remove(&msu);
        if let Some(conn) = conn {
            let waiters: Vec<_> = conn.pending.lock().drain().collect();
            if !waiters.is_empty() {
                tracing::debug!(
                    "{msu} removed with {} in-flight rpc(s); failing them now",
                    waiters.len()
                );
            }
            // The drained Senders drop here, outside the pending lock.
            drop(waiters);
        }
    }

    /// The ids of every currently connected MSU.
    pub fn ids(&self) -> Vec<MsuId> {
        self.conns.lock().keys().copied().collect()
    }

    /// Number of connected MSUs.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// True if no MSUs are connected.
    pub fn is_empty(&self) -> bool {
        self.conns.lock().is_empty()
    }

    /// Sends a request to an MSU and waits for the correlated reply.
    pub fn rpc(&self, msu: MsuId, body: CoordToMsu) -> Result<MsuToCoord> {
        self.rpc_with_timeout(msu, body, RPC_TIMEOUT)
    }

    /// [`rpc`](Self::rpc) with a caller-chosen deadline; the heartbeat
    /// probe uses a much shorter one than scheduling RPCs.
    pub fn rpc_with_timeout(
        &self,
        msu: MsuId,
        body: CoordToMsu,
        timeout: Duration,
    ) -> Result<MsuToCoord> {
        let conn = self
            .conns
            .lock()
            .get(&msu)
            .cloned()
            .ok_or(Error::MsuUnavailable { msu })?;
        // relaxed: a fresh-id counter; uniqueness is all that matters.
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        conn.pending.lock().insert(req_id, tx);
        let write_res = {
            let mut w = conn.writer.lock();
            write_frame(&mut *w, &CoordEnvelope { req_id, body })
        };
        if write_res.is_err() {
            conn.pending.lock().remove(&req_id);
            return Err(Error::MsuUnavailable { msu });
        }
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(_) => {
                conn.pending.lock().remove(&req_id);
                Err(Error::MsuUnavailable { msu })
            }
        }
    }

    /// Sends a one-way message (no reply expected).
    pub fn notify(&self, msu: MsuId, body: CoordToMsu) -> Result<()> {
        let conn = self
            .conns
            .lock()
            .get(&msu)
            .cloned()
            .ok_or(Error::MsuUnavailable { msu })?;
        let mut w = conn.writer.lock();
        write_frame(&mut *w, &CoordEnvelope { req_id: 0, body })
            .map_err(|_| Error::MsuUnavailable { msu })
    }

    /// Routes one incoming envelope: replies complete their pending
    /// RPC; unsolicited messages return `Some` for the caller to
    /// handle.
    pub fn route(&self, msu: MsuId, req_id: u64, body: MsuToCoord) -> Option<MsuToCoord> {
        if req_id == 0 {
            return Some(body);
        }
        let conn = self.conns.lock().get(&msu).cloned()?;
        let waiter = conn.pending.lock().remove(&req_id);
        match waiter {
            Some(tx) => {
                let _ = tx.send(body);
                None
            }
            // Late reply after a timeout: drop it.
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calliope_types::wire::read_frame;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn rpc_round_trip() {
        let conns = MsuConns::new();
        let (coord_side, mut msu_side) = pair();
        conns.install(MsuId(1), coord_side);

        // Fake MSU: echo Pong to whatever arrives.
        let conns2 = Arc::new(conns);
        let conns3 = Arc::clone(&conns2);
        let responder = std::thread::spawn(move || {
            let env: Option<CoordEnvelope> = read_frame(&mut msu_side).unwrap();
            let env = env.unwrap();
            assert_eq!(env.body, CoordToMsu::Ping);
            // Simulate the reply arriving on the reader thread.
            conns3.route(MsuId(1), env.req_id, MsuToCoord::Pong { snapshot: None });
        });
        let reply = conns2.rpc(MsuId(1), CoordToMsu::Ping).unwrap();
        assert_eq!(reply, MsuToCoord::Pong { snapshot: None });
        responder.join().unwrap();
    }

    #[test]
    fn rpc_to_unknown_msu_fails_fast() {
        let conns = MsuConns::new();
        assert!(matches!(
            conns.rpc(MsuId(9), CoordToMsu::Ping),
            Err(Error::MsuUnavailable { .. })
        ));
        assert!(conns.notify(MsuId(9), CoordToMsu::Ping).is_err());
    }

    #[test]
    fn unsolicited_messages_are_surfaced() {
        let conns = MsuConns::new();
        let (coord_side, _msu_side) = pair();
        conns.install(MsuId(1), coord_side);
        let out = conns.route(
            MsuId(1),
            0,
            MsuToCoord::StreamDone {
                stream: calliope_types::StreamId(4),
                reason: calliope_types::wire::messages::DoneReason::Completed,
                bytes: 10,
                duration_us: 20,
                trace: Default::default(),
            },
        );
        assert!(out.is_some());
    }

    #[test]
    fn late_replies_are_dropped() {
        let conns = MsuConns::new();
        let (coord_side, _msu_side) = pair();
        conns.install(MsuId(1), coord_side);
        // No pending id 77: routed reply vanishes.
        assert!(conns
            .route(MsuId(1), 77, MsuToCoord::Pong { snapshot: None })
            .is_none());
    }

    /// The fast-fail path: a caller blocked in `rpc` must error the
    /// moment the connection is removed, not after the full 15 s
    /// `RPC_TIMEOUT` — failover latency is bounded by this.
    #[test]
    fn remove_fails_inflight_rpcs_immediately() {
        let conns = Arc::new(MsuConns::new());
        let (coord_side, _msu_side) = pair();
        conns.install(MsuId(1), coord_side);
        let conns2 = Arc::clone(&conns);
        let caller = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let res = conns2.rpc(MsuId(1), CoordToMsu::Ping);
            (res, t0.elapsed())
        });
        // Let the caller get into recv_timeout, then break the conn.
        std::thread::sleep(Duration::from_millis(100));
        conns.remove(MsuId(1));
        let (res, waited) = caller.join().unwrap();
        assert!(matches!(res, Err(Error::MsuUnavailable { .. })));
        assert!(
            waited < Duration::from_secs(5),
            "rpc blocked {waited:?} after remove; fast-fail is broken"
        );
    }

    #[test]
    fn ids_lists_connected_msus() {
        let conns = MsuConns::new();
        assert!(conns.ids().is_empty());
        let (a, _ka) = pair();
        let (b, _kb) = pair();
        conns.install(MsuId(1), a);
        conns.install(MsuId(2), b);
        let mut ids = conns.ids();
        ids.sort();
        assert_eq!(ids, vec![MsuId(1), MsuId(2)]);
    }

    #[test]
    fn remove_breaks_future_rpcs() {
        let conns = MsuConns::new();
        let (coord_side, _msu_side) = pair();
        conns.install(MsuId(1), coord_side);
        assert_eq!(conns.len(), 1);
        conns.remove(MsuId(1));
        assert!(conns.is_empty());
        assert!(conns.rpc(MsuId(1), CoordToMsu::Ping).is_err());
    }
}
