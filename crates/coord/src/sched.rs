//! Resource accounting and admission control.
//!
//! "When Calliope receives a read request, the Coordinator finds an
//! MSU with a disk that both contains the requested content and has
//! enough bandwidth available to satisfy the request. As the
//! Coordinator assigns resources to clients, it keeps track of load by
//! processor and disk. If a client's request cannot be satisfied, the
//! Coordinator queues the request until an MSU with the necessary
//! resources becomes available." (paper §2.2)
//!
//! The scheduler tracks, per disk: free space and bandwidth; per MSU:
//! aggregate network bandwidth. Reservations are tied to stream ids so
//! `StreamDone` releases exactly what was granted. A generation counter
//! wakes queued requests whenever capacity frees.

use calliope_types::error::{Error, Result};
use calliope_types::time::ByteRate;
use calliope_types::{DiskId, MsuId, StreamId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Aggregate network bandwidth one MSU can sustain (the paper's
/// measured 4.7 MB/s combined figure, slightly conservatively — the
/// MSU reaches ~90% of baseline).
pub const MSU_NET_BANDWIDTH: u64 = 4_200_000;

/// State of one disk.
#[derive(Clone, Debug)]
pub struct DiskState {
    /// Owning MSU.
    pub msu: MsuId,
    /// Total capacity, bytes.
    pub capacity: u64,
    /// Free space, bytes.
    pub free_bytes: u64,
    /// Bandwidth capacity, bytes/s.
    pub bw_capacity: u64,
    /// Bandwidth currently reserved, bytes/s.
    pub bw_used: u64,
}

impl DiskState {
    /// Bandwidth still available.
    pub fn bw_free(&self) -> u64 {
        self.bw_capacity.saturating_sub(self.bw_used)
    }
}

/// State of one MSU.
#[derive(Clone, Debug)]
pub struct MsuState {
    /// Control address it registered with.
    pub ctrl_addr: SocketAddr,
    /// Global ids of its disks, in registration order.
    pub disks: Vec<DiskId>,
    /// False while the MSU is down ("when an MSU is down, the
    /// Coordinator marks it as unavailable in the scheduling database").
    pub available: bool,
    /// Network bandwidth capacity, bytes/s.
    pub net_capacity: u64,
    /// Network bandwidth reserved, bytes/s.
    pub net_used: u64,
}

/// A play-admission request: one entry per component stream with its
/// candidate `(msu, disk)` replicas and bandwidth demand in bytes/s.
pub type PlayWant = (StreamId, Vec<(MsuId, DiskId)>, u64);

/// One `snapshot` row: an MSU, its state, and its disks' states.
pub type MsuSnapshot = (MsuId, MsuState, Vec<(DiskId, DiskState)>);

/// One granted reservation (released on `StreamDone`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Which MSU's network bandwidth is charged.
    pub msu: MsuId,
    /// Which disk's bandwidth is charged.
    pub disk: DiskId,
    /// Bytes/s reserved on both.
    pub bw: u64,
    /// Disk space reserved (recordings only), bytes.
    pub space: u64,
}

#[derive(Default)]
struct Tables {
    msus: HashMap<MsuId, MsuState>,
    disks: HashMap<DiskId, DiskState>,
    grants: HashMap<StreamId, Reservation>,
}

/// The resource scheduler.
pub struct Scheduler {
    tables: Mutex<Tables>,
    /// Bumped on every release / registration; queued requests retry.
    wakeups: Mutex<u64>,
    condvar: Condvar,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            tables: Mutex::new(Tables::default()),
            wakeups: Mutex::new(0),
            condvar: Condvar::new(),
        }
    }

    /// Registers (or restores) an MSU and its disks, returning the disk
    /// ids in report order.
    pub fn register_msu(
        &self,
        msu: MsuId,
        ctrl_addr: SocketAddr,
        reports: &[(DiskId, u64, u64, ByteRate)],
    ) -> Vec<DiskId> {
        let mut t = self.tables.lock();
        let disks: Vec<DiskId> = reports.iter().map(|(id, ..)| *id).collect();
        for (id, capacity, free, bw) in reports {
            let entry = t.disks.entry(*id).or_insert(DiskState {
                msu,
                capacity: *capacity,
                free_bytes: *free,
                bw_capacity: bw.bytes_per_sec(),
                bw_used: 0,
            });
            entry.msu = msu;
            if *capacity > 0 {
                entry.capacity = *capacity;
            }
            // On re-registration keep our bw accounting (streams survive
            // a Coordinator blip) but trust the MSU's free-space figure.
            entry.free_bytes = *free;
        }
        t.msus
            .entry(msu)
            .and_modify(|m| {
                m.ctrl_addr = ctrl_addr;
                m.available = true;
                m.disks = disks.clone();
            })
            .or_insert(MsuState {
                ctrl_addr,
                disks: disks.clone(),
                available: true,
                net_capacity: MSU_NET_BANDWIDTH,
                net_used: 0,
            });
        drop(t);
        self.wake();
        disks
    }

    /// Marks an MSU unavailable (its TCP connection broke or its
    /// heartbeat lapsed) and reaps every grant held on its disks:
    /// reserved network and disk bandwidth and disk space all return to
    /// the pool, and the admission queue is woken so waiting requests
    /// can land on the survivors. Returns the reaped reservations so
    /// the server can fail playback streams over to live replicas and
    /// clean up recording state.
    pub fn mark_down(&self, msu: MsuId) -> Vec<(StreamId, Reservation)> {
        let mut t = self.tables.lock();
        if let Some(m) = t.msus.get_mut(&msu) {
            m.available = false;
        }
        let reaped: Vec<(StreamId, Reservation)> = t
            .grants
            .iter()
            .filter(|(_, r)| r.msu == msu)
            .map(|(s, r)| (*s, r.clone()))
            .collect();
        for (stream, grant) in &reaped {
            t.grants.remove(stream);
            if let Some(m) = t.msus.get_mut(&grant.msu) {
                m.net_used = m.net_used.saturating_sub(grant.bw);
            }
            if let Some(d) = t.disks.get_mut(&grant.disk) {
                d.bw_used = d.bw_used.saturating_sub(grant.bw);
                // A reaped recording never finishes, so the whole
                // reservation comes back (the partial file is garbage).
                d.free_bytes = (d.free_bytes + grant.space).min(d.capacity);
            }
            tracing::debug!("reaped {stream}'s grant on downed {msu}");
        }
        drop(t);
        if !reaped.is_empty() {
            self.wake();
        }
        reaped
    }

    /// The live reservation backing a stream, if any.
    pub fn reservation_of(&self, stream: StreamId) -> Option<Reservation> {
        self.tables.lock().grants.get(&stream).cloned()
    }

    /// True if the MSU is currently registered and reachable.
    pub fn is_available(&self, msu: MsuId) -> bool {
        self.tables
            .lock()
            .msus
            .get(&msu)
            .is_some_and(|m| m.available)
    }

    /// Snapshot of one MSU.
    pub fn msu(&self, msu: MsuId) -> Option<MsuState> {
        self.tables.lock().msus.get(&msu).cloned()
    }

    /// Snapshot of one disk.
    pub fn disk(&self, disk: DiskId) -> Option<DiskState> {
        self.tables.lock().disks.get(&disk).cloned()
    }

    /// Number of live reservations.
    pub fn grant_count(&self) -> usize {
        self.tables.lock().grants.len()
    }

    /// Snapshot of every MSU and its disks (for status reports), in
    /// MSU-id order.
    pub fn snapshot(&self) -> Vec<MsuSnapshot> {
        let t = self.tables.lock();
        let mut msus: Vec<MsuId> = t.msus.keys().copied().collect();
        msus.sort();
        msus.into_iter()
            .map(|id| {
                let m = t.msus.get(&id).expect("listed").clone();
                let disks = m
                    .disks
                    .iter()
                    .filter_map(|d| t.disks.get(d).map(|ds| (*d, ds.clone())))
                    .collect();
                (id, m, disks)
            })
            .collect()
    }

    fn wake(&self) {
        let mut gen = self.wakeups.lock();
        *gen += 1;
        self.condvar.notify_all();
    }

    /// Blocks until the scheduler state changes (a release or a
    /// registration), or the timeout passes. Returns the new
    /// generation. Queued requests loop on this.
    pub fn wait_for_change(&self, seen: u64, timeout: Duration) -> u64 {
        let mut gen = self.wakeups.lock();
        if *gen == seen {
            self.condvar.wait_for(&mut gen, timeout);
        }
        *gen
    }

    /// Current wakeup generation (pass to [`Scheduler::wait_for_change`]).
    pub fn generation(&self) -> u64 {
        *self.wakeups.lock()
    }

    /// Admits a group of play streams on one MSU.
    ///
    /// `wants` lists, per component stream, the candidate `(msu, disk)`
    /// replicas and the bandwidth demand. All components must land on
    /// the *same* MSU ("synchronizing the streams would be difficult if
    /// streams from the same group were assigned to different
    /// machines"). On success every reservation is recorded against its
    /// stream id.
    pub fn admit_play(&self, wants: &[PlayWant]) -> Result<Vec<(StreamId, MsuId, DiskId)>> {
        if wants.is_empty() {
            return Err(Error::internal("empty admission request"));
        }
        let mut t = self.tables.lock();
        // Candidate MSUs = those having a replica of every component.
        let mut candidates: Vec<MsuId> = wants[0].1.iter().map(|(m, _)| *m).collect();
        candidates.dedup();
        candidates.retain(|m| {
            t.msus.get(m).is_some_and(|s| s.available)
                && wants
                    .iter()
                    .all(|(_, locs, _)| locs.iter().any(|(lm, _)| lm == m))
        });

        for msu in candidates {
            // Tentatively reserve; roll back if any component fails.
            let total_bw: u64 = wants.iter().map(|(_, _, bw)| *bw).sum();
            let net_ok = t
                .msus
                .get(&msu)
                .is_some_and(|m| m.net_used + total_bw <= m.net_capacity);
            if !net_ok {
                continue;
            }
            let mut picks: Vec<(StreamId, MsuId, DiskId)> = Vec::new();
            let mut charged: Vec<(DiskId, u64)> = Vec::new();
            let mut ok = true;
            for (stream, locs, bw) in wants {
                let pick = locs.iter().find(|(lm, ld)| {
                    *lm == msu && t.disks.get(ld).is_some_and(|d| d.bw_free() >= *bw)
                });
                match pick {
                    Some((_, disk)) => {
                        t.disks.get_mut(disk).expect("picked disk exists").bw_used += bw;
                        charged.push((*disk, *bw));
                        picks.push((*stream, msu, *disk));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                for (disk, bw) in charged {
                    t.disks.get_mut(&disk).expect("charged disk exists").bw_used -= bw;
                }
                continue;
            }
            let total: u64 = wants.iter().map(|(_, _, bw)| *bw).sum();
            t.msus.get_mut(&msu).expect("candidate exists").net_used += total;
            for ((stream, _, bw), (_, _, disk)) in wants.iter().zip(&picks) {
                t.grants.insert(
                    *stream,
                    Reservation {
                        msu,
                        disk: *disk,
                        bw: *bw,
                        space: 0,
                    },
                );
            }
            return Ok(picks);
        }
        Err(Error::ResourcesExhausted {
            what: "no MSU holds every component with bandwidth to spare".into(),
        })
    }

    /// Admits a group of recording streams on one MSU: each component
    /// needs `bw` bytes/s of disk + network bandwidth and `space` bytes
    /// of disk.
    pub fn admit_record(
        &self,
        wants: &[(StreamId, u64, u64)],
    ) -> Result<Vec<(StreamId, MsuId, DiskId)>> {
        if wants.is_empty() {
            return Err(Error::internal("empty admission request"));
        }
        let mut t = self.tables.lock();
        let msus: Vec<MsuId> = t
            .msus
            .iter()
            .filter(|(_, m)| m.available)
            .map(|(id, _)| *id)
            .collect();
        for msu in msus {
            let total_bw: u64 = wants.iter().map(|(_, bw, _)| *bw).sum();
            if t.msus
                .get(&msu)
                .is_none_or(|m| m.net_used + total_bw > m.net_capacity)
            {
                continue;
            }
            let disk_ids = t.msus.get(&msu).expect("listed").disks.clone();
            let mut picks = Vec::new();
            let mut charged: Vec<(DiskId, u64, u64)> = Vec::new();
            let mut ok = true;
            for (stream, bw, space) in wants {
                let pick = disk_ids.iter().find(|d| {
                    t.disks
                        .get(d)
                        .is_some_and(|ds| ds.bw_free() >= *bw && ds.free_bytes >= *space)
                });
                match pick {
                    Some(disk) => {
                        let ds = t.disks.get_mut(disk).expect("picked disk exists");
                        ds.bw_used += bw;
                        ds.free_bytes -= space;
                        charged.push((*disk, *bw, *space));
                        picks.push((*stream, msu, *disk));
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                for (disk, bw, space) in charged {
                    let ds = t.disks.get_mut(&disk).expect("charged disk exists");
                    ds.bw_used -= bw;
                    ds.free_bytes += space;
                }
                continue;
            }
            t.msus.get_mut(&msu).expect("candidate exists").net_used += total_bw;
            for ((stream, bw, space), (_, _, disk)) in wants.iter().zip(&picks) {
                t.grants.insert(
                    *stream,
                    Reservation {
                        msu,
                        disk: *disk,
                        bw: *bw,
                        space: *space,
                    },
                );
            }
            return Ok(picks);
        }
        Err(Error::ResourcesExhausted {
            what: "no MSU has the disk space and bandwidth".into(),
        })
    }

    /// Releases a stream's reservation. `actual_bytes` (recordings)
    /// returns over-reserved space: "if the client overestimates the
    /// length of the recording, the unused space will be returned to
    /// the system once the recording session has completed" (§2.2).
    pub fn release(&self, stream: StreamId, actual_bytes: u64) {
        let mut t = self.tables.lock();
        let Some(grant) = t.grants.remove(&stream) else {
            return;
        };
        if let Some(m) = t.msus.get_mut(&grant.msu) {
            m.net_used = m.net_used.saturating_sub(grant.bw);
        }
        if let Some(d) = t.disks.get_mut(&grant.disk) {
            d.bw_used = d.bw_used.saturating_sub(grant.bw);
            if grant.space > 0 {
                let returned = grant.space.saturating_sub(actual_bytes);
                d.free_bytes += returned;
            }
        }
        drop(t);
        self.wake();
    }

    /// Charges `space` bytes against a disk (replication).
    pub fn consume_space(&self, disk: DiskId, space: u64) {
        let mut t = self.tables.lock();
        if let Some(d) = t.disks.get_mut(&disk) {
            d.free_bytes = d.free_bytes.saturating_sub(space);
        }
    }

    /// Returns `space` bytes to a disk (content deletion).
    pub fn return_space(&self, disk: DiskId, space: u64) {
        let mut t = self.tables.lock();
        if let Some(d) = t.disks.get_mut(&disk) {
            d.free_bytes = (d.free_bytes + space).min(d.capacity);
        }
        drop(t);
        self.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> SocketAddr {
        "127.0.0.1:1".parse().unwrap()
    }

    fn scheduler_with_one_msu() -> Scheduler {
        let s = Scheduler::new();
        s.register_msu(
            MsuId(1),
            addr(),
            &[
                (
                    DiskId(10),
                    2_000_000_000,
                    2_000_000_000,
                    ByteRate(2_400_000),
                ),
                (
                    DiskId(11),
                    2_000_000_000,
                    2_000_000_000,
                    ByteRate(2_400_000),
                ),
            ],
        );
        s
    }

    const MPEG_BW: u64 = 187_500; // 1.5 Mbit/s in bytes/s

    #[test]
    fn play_admission_reserves_and_releases() {
        let s = scheduler_with_one_msu();
        let locs = vec![(MsuId(1), DiskId(10))];
        let picks = s
            .admit_play(&[(StreamId(1), locs.clone(), MPEG_BW)])
            .unwrap();
        assert_eq!(picks, vec![(StreamId(1), MsuId(1), DiskId(10))]);
        assert_eq!(s.disk(DiskId(10)).unwrap().bw_used, MPEG_BW);
        assert_eq!(s.msu(MsuId(1)).unwrap().net_used, MPEG_BW);
        assert_eq!(s.grant_count(), 1);
        s.release(StreamId(1), 0);
        assert_eq!(s.disk(DiskId(10)).unwrap().bw_used, 0);
        assert_eq!(s.msu(MsuId(1)).unwrap().net_used, 0);
        assert_eq!(s.grant_count(), 0);
        // Double release is harmless.
        s.release(StreamId(1), 0);
    }

    #[test]
    fn disk_bandwidth_limits_streams_per_disk() {
        let s = scheduler_with_one_msu();
        // 2.4 MB/s / 187.5 KB/s = 12.8 ⇒ 12 streams per disk.
        let locs = vec![(MsuId(1), DiskId(10))];
        let mut admitted = 0;
        for i in 0..20 {
            if s.admit_play(&[(StreamId(i), locs.clone(), MPEG_BW)])
                .is_ok()
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 12, "the paper's per-disk stream ceiling");
    }

    #[test]
    fn msu_network_limits_total_streams() {
        let s = scheduler_with_one_msu();
        // Replicas on both disks: disk bandwidth would admit 24, but the
        // MSU network cap (4.2 MB/s) stops at 22 — the paper's number.
        let mut admitted = 0;
        for i in 0..30 {
            let disk = if i % 2 == 0 { DiskId(10) } else { DiskId(11) };
            if s.admit_play(&[(StreamId(i), vec![(MsuId(1), disk)], MPEG_BW)])
                .is_ok()
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 22, "22 × 1.5 Mbit/s per MSU, as measured");
    }

    #[test]
    fn group_lands_on_one_msu_or_fails() {
        let s = scheduler_with_one_msu();
        s.register_msu(
            MsuId(2),
            addr(),
            &[(DiskId(20), 1_000_000, 1_000_000, ByteRate(2_400_000))],
        );
        // Video replica only on MSU 1, audio replica only on MSU 2: no
        // single MSU has both ⇒ reject.
        let wants = vec![
            (StreamId(1), vec![(MsuId(1), DiskId(10))], 250_000),
            (StreamId(2), vec![(MsuId(2), DiskId(20))], 8_000),
        ];
        assert!(matches!(
            s.admit_play(&wants),
            Err(Error::ResourcesExhausted { .. })
        ));
        assert_eq!(s.grant_count(), 0, "failed admission reserves nothing");

        // Both components on MSU 1 works.
        let wants = vec![
            (StreamId(1), vec![(MsuId(1), DiskId(10))], 250_000),
            (StreamId(2), vec![(MsuId(1), DiskId(11))], 8_000),
        ];
        let picks = s.admit_play(&wants).unwrap();
        assert!(picks.iter().all(|(_, m, _)| *m == MsuId(1)));
    }

    #[test]
    fn record_admission_charges_space_and_returns_overestimate() {
        let s = scheduler_with_one_msu();
        let free0 = s.disk(DiskId(10)).unwrap().free_bytes;
        let picks = s
            .admit_record(&[(StreamId(5), MPEG_BW, 100_000_000)])
            .unwrap();
        let disk = picks[0].2;
        assert_eq!(s.disk(disk).unwrap().free_bytes, free0 - 100_000_000);
        // The recording actually used 30 MB; 70 MB comes back.
        s.release(StreamId(5), 30_000_000);
        assert_eq!(s.disk(disk).unwrap().free_bytes, free0 - 30_000_000);
    }

    #[test]
    fn record_rejected_when_space_exhausted() {
        let s = Scheduler::new();
        s.register_msu(
            MsuId(1),
            addr(),
            &[(DiskId(10), 1_000_000, 1_000_000, ByteRate(2_400_000))],
        );
        assert!(s.admit_record(&[(StreamId(1), 1000, 2_000_000)]).is_err());
        assert!(s.admit_record(&[(StreamId(1), 1000, 500_000)]).is_ok());
    }

    #[test]
    fn down_msu_is_skipped_until_reregistration() {
        let s = scheduler_with_one_msu();
        s.mark_down(MsuId(1));
        assert!(!s.is_available(MsuId(1)));
        let locs = vec![(MsuId(1), DiskId(10))];
        assert!(s
            .admit_play(&[(StreamId(1), locs.clone(), MPEG_BW)])
            .is_err());
        // Re-registration restores it (paper: "when the MSU becomes
        // available again, it contacts the Coordinator and is restored").
        s.register_msu(
            MsuId(1),
            addr(),
            &[(
                DiskId(10),
                2_000_000_000,
                2_000_000_000,
                ByteRate(2_400_000),
            )],
        );
        assert!(s.is_available(MsuId(1)));
        assert!(s.admit_play(&[(StreamId(1), locs, MPEG_BW)]).is_ok());
    }

    /// `mark_down` is a reaper: every grant on the dead MSU's disks is
    /// released (bandwidth and space return to the pool) and
    /// `grant_count()` drops back to baseline — no stranded
    /// reservations.
    #[test]
    fn mark_down_reaps_grants_back_to_baseline() {
        let s = scheduler_with_one_msu();
        let baseline = s.grant_count();
        for i in 0..6 {
            s.admit_play(&[(StreamId(i), vec![(MsuId(1), DiskId(10))], MPEG_BW)])
                .unwrap();
        }
        let free0 = s.disk(DiskId(10)).unwrap().free_bytes;
        s.admit_record(&[(StreamId(50), MPEG_BW, 100_000_000)])
            .unwrap();
        assert_eq!(s.grant_count(), baseline + 7);

        let reaped = s.mark_down(MsuId(1));
        assert_eq!(reaped.len(), 7, "every grant on the MSU is reaped");
        assert_eq!(s.grant_count(), baseline, "no stranded reservations");
        assert_eq!(s.msu(MsuId(1)).unwrap().net_used, 0);
        assert_eq!(s.disk(DiskId(10)).unwrap().bw_used, 0);
        assert_eq!(
            s.disk(DiskId(10)).unwrap().free_bytes,
            free0,
            "the reaped recording's space reservation came back in full"
        );
        // Releasing a reaped stream again is harmless (the StreamDone
        // may still arrive later, or never).
        s.release(StreamId(0), 0);
        assert_eq!(s.grant_count(), baseline);
        // A second mark_down reaps nothing: the path is idempotent.
        assert!(s.mark_down(MsuId(1)).is_empty());
    }

    /// Reaping wakes the admission queue: `mark_down` bumps the
    /// generation (a blocked waiter retries immediately), and the
    /// freed bandwidth is usable once the MSU re-registers.
    #[test]
    fn mark_down_wakes_queued_admissions() {
        let s = std::sync::Arc::new(scheduler_with_one_msu());
        let locs = vec![(MsuId(1), DiskId(10))];
        for i in 0..12 {
            s.admit_play(&[(StreamId(i), locs.clone(), MPEG_BW)])
                .unwrap();
        }
        assert!(s
            .admit_play(&[(StreamId(99), locs.clone(), MPEG_BW)])
            .is_err());
        let gen = s.generation();
        let s2 = std::sync::Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let new_gen = s2.wait_for_change(gen, Duration::from_secs(5));
            assert_ne!(new_gen, gen, "mark_down must bump the generation");
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.mark_down(MsuId(1)).len(), 12);
        waiter.join().unwrap();
        // While the MSU is down the retry still fails…
        assert!(s
            .admit_play(&[(StreamId(99), locs.clone(), MPEG_BW)])
            .is_err());
        // …but after recovery the reaped bandwidth is all back.
        s.register_msu(
            MsuId(1),
            addr(),
            &[(
                DiskId(10),
                2_000_000_000,
                2_000_000_000,
                ByteRate(2_400_000),
            )],
        );
        assert!(s.admit_play(&[(StreamId(99), locs, MPEG_BW)]).is_ok());
        assert!(s.reservation_of(StreamId(99)).is_some());
        assert!(s.reservation_of(StreamId(0)).is_none());
    }

    #[test]
    fn waiters_wake_on_release() {
        let s = std::sync::Arc::new(scheduler_with_one_msu());
        let locs = vec![(MsuId(1), DiskId(10))];
        for i in 0..12 {
            s.admit_play(&[(StreamId(i), locs.clone(), MPEG_BW)])
                .unwrap();
        }
        assert!(s
            .admit_play(&[(StreamId(99), locs.clone(), MPEG_BW)])
            .is_err());
        let gen = s.generation();
        let s2 = std::sync::Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            let new_gen = s2.wait_for_change(gen, Duration::from_secs(5));
            assert_ne!(new_gen, gen, "release must bump the generation");
            s2.admit_play(&[(StreamId(99), vec![(MsuId(1), DiskId(10))], MPEG_BW)])
        });
        std::thread::sleep(Duration::from_millis(50));
        s.release(StreamId(0), 0);
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn wait_for_change_times_out() {
        let s = scheduler_with_one_msu();
        let gen = s.generation();
        let new = s.wait_for_change(gen, Duration::from_millis(50));
        assert_eq!(new, gen);
    }
}
