//! Failure injection and variable-bit-rate paths: stored schedules,
//! VBR seeks, aborted recordings, MSU death mid-stream, and concurrent
//! clients.

use calliope::cluster::Cluster;
use calliope::content;
use calliope_media::nv;
use calliope_types::wire::messages::DoneReason;
use calliope_types::MediaTime;
use std::time::{Duration, Instant};

fn wait_for<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn vbr_content_round_trips_with_stored_schedule() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let params = nv::paper_files()[0];
    let trace = content::upload_nv(&mut client, "nvclip", &params, 2, 5).unwrap();
    let total: u64 = trace.iter().map(|p| p.payload.len() as u64).sum();

    // The catalog duration reflects the RTP timestamps, not the (fast)
    // upload pacing — the protocol module derived the schedule from the
    // headers.
    let toc = client.list_content().unwrap();
    let e = toc.iter().find(|e| e.name == "nvclip").unwrap();
    let dur_s = e.duration_us as f64 / 1e6;
    assert!(
        (1.5..2.5).contains(&dur_s),
        "stored duration {dur_s}s for 2s trace"
    );

    let port = client.open_port("screen", "nv-video").unwrap();
    let started = Instant::now();
    let mut play = client.play("nvclip", "screen", &[&port]).unwrap();
    let stream = play.streams[0];
    let reason = play.wait_end(Duration::from_secs(30)).unwrap();
    assert_eq!(reason, DoneReason::Completed);
    let took = started.elapsed();
    // Played at the *recorded* pace: ≈ the trace duration.
    assert!(took >= Duration::from_millis(1_500), "replayed in {took:?}");

    let stats = wait_for(Duration::from_secs(5), || {
        let s = port.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(stats.bytes, total, "every RTP byte came back");
    assert_eq!(
        stats.packets as usize,
        trace.len(),
        "packet framing preserved"
    );
    assert_eq!(stats.lost, 0);
    cluster.shutdown();
}

#[test]
fn vbr_seek_uses_the_ibtree() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let params = nv::paper_files()[0];
    let trace = content::upload_nv(&mut client, "longnv", &params, 4, 6).unwrap();
    let total: u64 = trace.iter().map(|p| p.payload.len() as u64).sum();

    let port = client.open_port("screen", "nv-video").unwrap();
    let mut play = client.play("longnv", "screen", &[&port]).unwrap();
    let stream = play.streams[0];
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 3).then_some(())
    });
    // Seek forward past most of the clip.
    play.seek(MediaTime::from_millis(3_500)).unwrap();
    let reason = play.wait_end(Duration::from_secs(20)).unwrap();
    assert_eq!(reason, DoneReason::Completed);
    let stats = port.stats(stream);
    assert!(
        stats.bytes < total * 2 / 3,
        "seek skipped content: {} of {total}",
        stats.bytes
    );
    // The delivered packets after the seek are the tail of the trace:
    // the last packet's bytes arrived.
    assert!(stats.bytes > 0);
    cluster.shutdown();
}

#[test]
fn aborted_recording_finalizes_partial_content() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let port = client.open_port("cam", "mpeg1").unwrap();
    let mut rec = client
        .record("interrupted", "cam", "mpeg1", 30, &[&port])
        .unwrap();
    // Send ~100 KB, then quit mid-recording.
    for i in 0..70 {
        rec.send_media(0, &vec![i as u8; 1400]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let reason = rec.quit(Duration::from_secs(20)).unwrap();
    assert_eq!(reason, DoneReason::ClientQuit);

    // The partial content finalizes and becomes playable; the unused
    // reservation returns to the disk (paper §2.2).
    let entry = wait_for(Duration::from_secs(10), || {
        client
            .list_content()
            .unwrap()
            .into_iter()
            .find(|e| e.name == "interrupted" && e.bytes > 0)
    });
    assert_eq!(entry.bytes, 70 * 1400);

    let out = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("interrupted", "tv", &[&out]).unwrap();
    let stream = play.streams[0];
    play.wait_end(Duration::from_secs(30)).unwrap();
    let stats = wait_for(Duration::from_secs(5), || {
        let s = out.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(stats.bytes, 70 * 1400);
    cluster.shutdown();
}

#[test]
fn msu_death_mid_stream_surfaces_to_the_client() {
    let mut cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "doomed", 4, 8).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("doomed", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });

    // Kill the MSU under the stream.
    let _id = cluster.kill_msu(0);
    // The client's group ends (shutdown notice or broken control
    // connection — either is a clean failure signal).
    // Either a shutdown notice or a broken control connection is a
    // clean failure signal.
    if let Ok(reason) = play.wait_end(Duration::from_secs(10)) {
        assert_ne!(reason, DoneReason::Completed);
    }
    // The Coordinator noticed the death too.
    wait_for(Duration::from_secs(5), || {
        (cluster.coord.msu_count() == 0).then_some(())
    });
    cluster.shutdown();
}

#[test]
fn concurrent_clients_do_not_interfere() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut setup = cluster.client("setup", false).unwrap();
    content::upload_mpeg(&mut setup, "shared", 2, 12).unwrap();
    let addr_holder = &cluster;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..4 {
            let cluster_ref = addr_holder;
            handles.push(scope.spawn(move || {
                let mut c = cluster_ref.client(&format!("viewer{w}"), false).unwrap();
                let port = c.open_port("tv", "mpeg1").unwrap();
                let mut play = c.play("shared", "tv", &[&port]).unwrap();
                let stream = play.streams[0];
                let reason = play.wait_end(Duration::from_secs(30)).unwrap();
                assert_eq!(reason, DoneReason::Completed);
                // All four viewers get the full clip.
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    let s = port.stats(stream);
                    if s.eos {
                        return s.bytes;
                    }
                    assert!(Instant::now() < deadline);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }));
        }
        let sizes: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    });
    cluster.shutdown();
}

#[test]
fn port_type_mismatch_is_rejected_cleanly() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "movie", 1, 1).unwrap();
    // A VAT-audio port cannot play MPEG content.
    let port = client.open_port("speaker", "vat-audio").unwrap();
    let err = client.play("movie", "speaker", &[&port]);
    assert!(err.is_err(), "type mismatch must be rejected");
    cluster.shutdown();
}

#[test]
fn pause_then_quit_releases_resources() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "movie", 3, 2).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("movie", "tv", &[&port]).unwrap();
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.active_streams() == 1).then_some(())
    });
    play.pause().unwrap();
    play.quit().unwrap();
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.active_streams() == 0).then_some(())
    });
    cluster.shutdown();
}

#[test]
fn replication_doubles_a_titles_stream_ceiling() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    content::upload_mpeg(&mut admin, "hit", 1, 77).unwrap();

    // One replica: the title's disk admits 12 × 1.5 Mbit/s.
    let mut viewer = cluster.client("crowd", false).unwrap();
    let mut ports = Vec::new();
    for i in 0..20 {
        ports.push(viewer.open_port(&format!("tv{i}"), "mpeg1").unwrap());
    }
    let mut plays = Vec::new();
    for (i, port) in ports.iter().enumerate().take(12) {
        plays.push(viewer.play("hit", &format!("tv{i}"), &[port]).unwrap());
    }
    // Non-admin replication is rejected; admin replication succeeds.
    assert!(viewer.replicate("hit").is_err());
    admin.replicate("hit").unwrap();

    // The second replica's disk admits more viewers immediately (no
    // queueing): pushing well past the single-disk ceiling.
    for (i, port) in ports.iter().enumerate().skip(12).take(6) {
        let started = Instant::now();
        plays.push(viewer.play("hit", &format!("tv{i}"), &[port]).unwrap());
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "replicated title must admit without queueing"
        );
    }
    assert_eq!(cluster.coord.active_streams(), 18);
    for mut p in plays {
        p.quit().ok();
    }
    cluster.shutdown();
}

#[test]
fn replicated_content_plays_identically_from_either_disk() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    let original = content::upload_mpeg(&mut admin, "dup", 1, 55).unwrap();
    admin.replicate("dup").unwrap();

    // Saturate the first disk so the second play lands on the replica,
    // then verify both deliveries byte-for-byte.
    let mut viewer = cluster.client("v", false).unwrap();
    let mut sizes = Vec::new();
    let mut holds = Vec::new();
    let mut hold_ports = Vec::new();
    for i in 0..12 {
        hold_ports.push(viewer.open_port(&format!("hold{i}"), "mpeg1").unwrap());
    }
    for (i, port) in hold_ports.iter().enumerate() {
        holds.push(viewer.play("dup", &format!("hold{i}"), &[port]).unwrap());
    }
    for run in 0..2 {
        let port = viewer.open_port(&format!("chk{run}"), "mpeg1").unwrap();
        let mut play = viewer.play("dup", &format!("chk{run}"), &[&port]).unwrap();
        let stream = play.streams[0];
        play.wait_end(Duration::from_secs(30)).unwrap();
        let stats = wait_for(Duration::from_secs(5), || {
            let s = port.stats(stream);
            s.eos.then_some(s)
        });
        sizes.push(stats.bytes);
    }
    assert_eq!(sizes, vec![original.len() as u64; 2]);
    for mut p in holds {
        p.quit().ok();
    }
    cluster.shutdown();
}

#[test]
fn server_status_reflects_load() {
    let cluster = Cluster::builder().msus(2).build().unwrap();
    let mut client = cluster.client("ops", false).unwrap();
    let (msus, streams) = client.server_status().unwrap();
    assert_eq!(msus.len(), 2);
    assert_eq!(streams, 0);
    assert!(msus.iter().all(|m| m.available));
    assert!(msus.iter().all(|m| m.disks.len() == 2));
    assert!(msus.iter().all(|m| m.net_used == 0));

    // Start a stream and watch the reservation appear.
    content::upload_mpeg(&mut client, "x", 2, 1).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("x", "tv", &[&port]).unwrap();
    let (msus, streams) = client.server_status().unwrap();
    assert_eq!(streams, 1);
    let net_used: u64 = msus.iter().map(|m| m.net_used).sum();
    assert_eq!(net_used, 187_500, "one 1.5 Mbit/s reservation");
    play.quit().unwrap();
    wait_for(Duration::from_secs(10), || {
        client
            .server_status()
            .ok()
            .filter(|(_, s)| *s == 0)
            .map(|_| ())
    });
    cluster.shutdown();
}

#[test]
fn rtcp_control_packets_interleave_through_recording_and_playback() {
    // Paper §2.3.2: "the RTP module interleaves the control messages
    // with the rest of the data stream before the data is given to the
    // disk process. On output, the opposite process is performed."
    use calliope_proto::rtp::RtpHeader;
    use calliope_types::wire::data::PacketKind;

    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let port = client.open_port("cam", "nv-video").unwrap();
    let mut rec = client
        .record("with-rtcp", "cam", "nv-video", 10, &[&port])
        .unwrap();

    // 30 RTP media packets (90 kHz timestamps, 33 ms apart) with an
    // RTCP report interleaved every 10th packet.
    let mut rtcp_sent = 0;
    for i in 0..30u32 {
        let header = RtpHeader {
            payload_type: 28,
            marker: true,
            seq: i as u16,
            timestamp: i * 3000,
            ssrc: 0x5EED,
        };
        let mut pkt = header.to_bytes().to_vec();
        pkt.extend_from_slice(&[i as u8; 200]);
        rec.send(0, PacketKind::Media, &pkt).unwrap();
        if i % 10 == 9 {
            rec.send(0, PacketKind::Control, b"rtcp sender report")
                .unwrap();
            rtcp_sent += 1;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    rec.finish(Duration::from_secs(20)).unwrap();
    wait_for(Duration::from_secs(10), || {
        client
            .list_content()
            .unwrap()
            .into_iter()
            .find(|e| e.name == "with-rtcp")
    });

    let out = client.open_port("screen", "nv-video").unwrap();
    let mut play = client.play("with-rtcp", "screen", &[&out]).unwrap();
    let stream = play.streams[0];
    play.wait_end(Duration::from_secs(30)).unwrap();
    let stats = wait_for(Duration::from_secs(5), || {
        let s = out.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(
        stats.packets,
        30 + rtcp_sent,
        "media + control all replayed"
    );
    assert_eq!(
        stats.control_packets, rtcp_sent,
        "RTCP came back as control"
    );
    cluster.shutdown();
}

#[test]
fn replication_needs_a_spare_disk() {
    // A single-disk MSU has nowhere to put a replica.
    let cluster = Cluster::builder().msus(1).disks_per_msu(1).build().unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    content::upload_mpeg(&mut admin, "solo", 1, 4).unwrap();
    let err = admin.replicate("solo");
    assert!(err.is_err(), "no spare disk must be a clean error");
    // The content is untouched and still plays.
    let port = admin.open_port("tv", "mpeg1").unwrap();
    let mut play = admin.play("solo", "tv", &[&port]).unwrap();
    play.wait_end(Duration::from_secs(30)).unwrap();
    cluster.shutdown();
}

#[test]
fn in_progress_recordings_are_not_playable() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let cam = client.open_port("cam", "mpeg1").unwrap();
    let mut rec = client.record("wip", "cam", "mpeg1", 30, &[&cam]).unwrap();
    rec.send_media(0, &[0u8; 1000]).unwrap();

    // Not in the table of contents, not playable (paper §2.2: content
    // finalizes when the recording session completes).
    assert!(client
        .list_content()
        .unwrap()
        .iter()
        .all(|e| e.name != "wip"));
    let tv = client.open_port("tv", "mpeg1").unwrap();
    assert!(client.play("wip", "tv", &[&tv]).is_err());

    rec.finish(Duration::from_secs(20)).unwrap();
    wait_for(Duration::from_secs(10), || {
        client
            .list_content()
            .unwrap()
            .into_iter()
            .find(|e| e.name == "wip")
    });
    cluster.shutdown();
}

#[test]
fn queued_request_is_abandoned_when_the_client_disconnects() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    // Long enough that nothing completes during the test.
    content::upload_mpeg(&mut client, "full", 60, 3).unwrap();
    // Saturate the title's disk.
    let mut ports = Vec::new();
    for i in 0..12 {
        ports.push(client.open_port(&format!("tv{i}"), "mpeg1").unwrap());
    }
    let mut plays = Vec::new();
    for (i, port) in ports.iter().enumerate() {
        plays.push(client.play("full", &format!("tv{i}"), &[port]).unwrap());
    }
    // A second client queues a play, then vanishes.
    {
        let mut ghost = cluster.client("ghost", false).unwrap();
        let port = ghost.open_port("tv", "mpeg1").unwrap();
        // Fire the request without waiting for the final reply, then drop
        // the session (closing the TCP connection).
        ghost
            .request_no_reply(calliope_types::wire::messages::ClientRequest::Play {
                content: "full".into(),
                port: "tv".into(),
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(300)); // let it queue
        drop(port);
    } // ghost dropped here
    std::thread::sleep(Duration::from_millis(500));

    // Freeing capacity must not schedule the dead client's stream: the
    // count drops to 11 and stays there.
    plays.pop().unwrap().quit().unwrap();
    std::thread::sleep(Duration::from_secs(2));
    assert_eq!(cluster.coord.active_streams(), 11);
    for mut p in plays {
        p.quit().ok();
    }
    cluster.shutdown();
}
