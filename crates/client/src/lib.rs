//! Client library for Calliope.
//!
//! "To begin using Calliope, a client establishes a session with the
//! Calliope coordinator. The client can then request a listing of
//! available content, play existing content, or record new content."
//! (paper §2.1)
//!
//! * [`session::CalliopeClient`] — the Coordinator session: table of
//!   contents, type table, display-port registration, play/record
//!   requests, administration.
//! * [`port::DisplayPort`] — a display port: "display ports associate a
//!   string name, a content type, and the socket's IP address and port
//!   number". Each port owns a UDP data socket (with a receiver thread
//!   measuring arrival statistics) and the TCP listener the MSU dials
//!   for VCR control.
//! * [`play::PlaySession`] — a playing stream group: VCR commands and
//!   end-of-stream tracking.
//! * [`record::RecordSession`] — a recording stream group: packet
//!   submission and termination.

pub mod play;
pub mod port;
pub mod record;
pub mod session;

pub use play::PlaySession;
pub use port::{DisplayPort, PortStats};
pub use record::RecordSession;
pub use session::CalliopeClient;
