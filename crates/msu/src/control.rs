//! The MSU's central control plane.
//!
//! "A central process handles RPCs from the Coordinator and from
//! clients." (paper §2.3) Three kinds of activity live here:
//!
//! * the **Coordinator connection**: the MSU dials the Coordinator,
//!   registers its disks, then executes `ScheduleRead`/`ScheduleWrite`
//!   requests and posts `StreamDone` notifications;
//! * the **client control connections**: "as soon as it is ready to
//!   deliver the content stream, the MSU establishes a control stream
//!   (TCP connection) with the client" (§2.2) — one per stream group,
//!   carrying VCR commands in and group status out;
//! * the **event loop**: reacts to disk/net events (group released,
//!   playback finished, recording finalized) by notifying the client
//!   and the Coordinator.

use crate::disk::DiskCmd;
use crate::metrics::MsuMetrics;
use crate::net::NetCmd;
use crate::stream::{GroupShared, StreamShared};
use crate::trick::TrickMode;
use calliope_obs::{FlightCode, FlightRecorder};
use calliope_types::error::{Error, Result};
use calliope_types::wire::messages::{
    ClientToMsu, DoneReason, MsuEnvelope, MsuToClient, MsuToCoord,
};
use calliope_types::wire::stats::{MetricEntry, MetricValue, StatsSnapshot};
use calliope_types::wire::{read_frame, write_frame};
use calliope_types::{GroupId, StreamId, VcrCommand};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long control-plane RPCs to the disk threads may take. Seeks
/// traverse the IB-tree on disk, so this is generous.
pub const DISK_RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything a stream needs at teardown time.
pub struct StreamInfo {
    /// Shared runtime state.
    pub shared: Arc<StreamShared>,
    /// Its group.
    pub group: Arc<GroupShared>,
    /// Local disk index.
    pub disk: usize,
    /// True for recordings.
    pub is_record: bool,
    /// Stop flag for the recording receiver thread.
    pub record_stop: Option<Arc<AtomicBool>>,
    /// Reason recorded when the control plane initiated a stop (used to
    /// label the eventual `StreamDone`).
    pub quit_reason: Mutex<Option<DoneReason>>,
    /// Set once `StreamDone` has been sent, so duplicate events are
    /// harmless.
    pub done_sent: AtomicBool,
}

impl std::fmt::Debug for StreamInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamInfo")
            .field("disk", &self.disk)
            .field("is_record", &self.is_record)
            .finish_non_exhaustive()
    }
}

/// Per-group control-plane state.
pub struct GroupInfo {
    /// Shared release state.
    pub shared: Arc<GroupShared>,
    /// The client's control listener (the MSU dials it).
    pub client_ctrl: SocketAddr,
    /// The established control connection, if any.
    pub conn: Mutex<Option<TcpStream>>,
}

impl std::fmt::Debug for GroupInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupInfo")
            .field("client_ctrl", &self.client_ctrl)
            .finish_non_exhaustive()
    }
}

/// Control-plane state shared by every MSU thread.
pub struct ServerShared {
    /// All live streams.
    pub registry: Mutex<HashMap<StreamId, Arc<StreamInfo>>>,
    /// All live groups.
    pub groups: Mutex<HashMap<GroupId, Arc<GroupInfo>>>,
    /// One command channel per disk thread.
    pub disk_txs: Vec<Sender<DiskCmd>>,
    /// The network thread's command channel.
    pub net_tx: Sender<NetCmd>,
    /// Write half of the Coordinator connection.
    pub coord_conn: Mutex<Option<TcpStream>>,
    /// MSU-wide metric handles.
    pub metrics: Arc<MsuMetrics>,
    /// Always-on flight recorder; dumped on I/O errors and panics.
    pub flight: Arc<FlightRecorder>,
    /// Set when the server is shutting down.
    pub stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("disks", &self.disk_txs.len())
            .finish_non_exhaustive()
    }
}

impl ServerShared {
    /// Sends one envelope to the Coordinator (no-op if disconnected —
    /// the Coordinator detects MSU failure by the broken TCP connection
    /// anyway, paper §2.2).
    pub fn send_to_coord(&self, env: &MsuEnvelope) {
        let mut guard = self.coord_conn.lock();
        if let Some(conn) = guard.as_mut() {
            if write_frame(conn, env).is_err() {
                *guard = None;
            }
        }
    }

    /// Issues a disk RPC and waits for the reply.
    pub fn disk_rpc<T: Send + 'static>(
        &self,
        disk: usize,
        make: impl FnOnce(Sender<T>) -> DiskCmd,
    ) -> Result<T> {
        let tx = self
            .disk_txs
            .get(disk)
            .ok_or_else(|| Error::internal(format!("no local disk {disk}")))?;
        let (rtx, rrx) = unbounded();
        tx.send(make(rtx))
            .map_err(|_| Error::internal("disk thread gone"))?;
        rrx.recv_timeout(DISK_RPC_TIMEOUT)
            .map_err(|_| Error::internal("disk thread did not reply"))
    }

    /// Snapshots the MSU-wide metrics plus per-stream delivery counters
    /// for every live stream, sorted by name.
    pub fn snapshot_stats(&self, source: &str) -> StatsSnapshot {
        let mut snap = self.metrics.registry.snapshot(source);
        {
            let reg = self.registry.lock();
            for (id, info) in reg.iter() {
                let s = &info.shared.stats;
                let prefix = format!("stream.{}", id.0);
                // relaxed: stats snapshots tolerate slightly stale
                // counters; the four loads below need no ordering
                // with respect to each other or the stream state.
                snap.metrics.push(MetricEntry {
                    name: format!("{prefix}.packets"),
                    value: MetricValue::Counter(s.packets.load(Ordering::Relaxed)),
                });
                snap.metrics.push(MetricEntry {
                    name: format!("{prefix}.bytes"),
                    value: MetricValue::Counter(s.bytes.load(Ordering::Relaxed)),
                });
                snap.metrics.push(MetricEntry {
                    name: format!("{prefix}.deadline_misses"),
                    value: MetricValue::Counter(s.deadline_misses.load(Ordering::Relaxed)),
                });
                snap.metrics.push(MetricEntry {
                    name: format!("{prefix}.max_late_us"),
                    value: MetricValue::Counter(s.max_late_us.load(Ordering::Relaxed)),
                });
            }
        }
        snap.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }

    /// Sends a message on a group's client control connection.
    pub fn send_to_client(&self, group: &GroupInfo, msg: &MsuToClient) {
        let mut guard = group.conn.lock();
        if let Some(conn) = guard.as_mut() {
            if write_frame(conn, msg).is_err() {
                *guard = None;
            }
        }
    }

    /// Tears one stream down and reports `StreamDone` with the given
    /// reason. Idempotent per stream.
    pub fn finish_stream(
        &self,
        info: &StreamInfo,
        reason: DoneReason,
        bytes: u64,
        duration_us: u64,
    ) {
        if info.done_sent.swap(true, Ordering::AcqRel) {
            return;
        }
        tracing::info!(
            "teardown: {} done ({reason:?}), {bytes} bytes in {duration_us} µs [{}]",
            info.shared.id,
            info.shared.trace
        );
        // Same tag scheme as the Coordinator's StreamDone flight events.
        let reason_tag = match &reason {
            DoneReason::Completed => 0,
            DoneReason::ClientQuit => 1,
            DoneReason::Cancelled => 2,
            DoneReason::MsuShutdown => 3,
            DoneReason::Error(_) => 4,
            DoneReason::IoError(_) => 5,
        };
        self.flight.record(
            info.shared.trace.id,
            FlightCode::StreamDone,
            info.shared.id.raw(),
            reason_tag,
        );
        info.shared.ctl.lock().phase = crate::stream::StreamPhase::Done;
        if let Some(stop) = &info.record_stop {
            stop.store(true, Ordering::Release);
        }
        if let Some(tx) = self.disk_txs.get(info.disk) {
            let _ = tx.send(DiskCmd::Remove {
                stream: info.shared.id,
            });
        }
        let _ = self.net_tx.send(NetCmd::Remove {
            stream: info.shared.id,
        });
        let live = {
            let mut reg = self.registry.lock();
            reg.remove(&info.shared.id);
            reg.len()
        };
        self.metrics.streams_active.set(live as u64);
        self.send_to_coord(&MsuEnvelope {
            req_id: 0,
            body: MsuToCoord::StreamDone {
                stream: info.shared.id,
                reason,
                bytes,
                duration_us,
                trace: info.shared.trace,
            },
        });
    }

    /// Ends a whole group: finishes every member and notifies the
    /// client.
    ///
    /// Recordings are *not* torn down synchronously: setting their stop
    /// flag makes the receiver exit, the ring close, and the disk
    /// process finalize the file; the eventual `RecordFinished` event
    /// sends the accurate `StreamDone`.
    pub fn finish_group(&self, group_id: GroupId, reason: DoneReason) {
        let members: Vec<Arc<StreamInfo>> = {
            let reg = self.registry.lock();
            reg.values()
                .filter(|i| i.shared.group == group_id)
                .cloned()
                .collect()
        };
        for info in &members {
            if info.is_record {
                *info.quit_reason.lock() = Some(reason.clone());
                if let Some(stop) = &info.record_stop {
                    stop.store(true, Ordering::Release);
                }
                continue;
            }
            // relaxed: progress polling; any recent value will do.
            let bytes = info.shared.stats.bytes.load(Ordering::Relaxed);
            self.finish_stream(info, reason.clone(), bytes, 0);
        }
        if let Some(group) = self.groups.lock().remove(&group_id) {
            self.send_to_client(
                &group,
                &MsuToClient::GroupEnded {
                    group: group_id,
                    reason,
                },
            );
        }
    }

    /// Applies one VCR command to every stream of a group — "all
    /// streams in a group are controlled by the same VCR commands"
    /// (paper §2.2).
    pub fn apply_vcr(&self, group_id: GroupId, cmd: VcrCommand) -> Result<()> {
        let members: Vec<Arc<StreamInfo>> = {
            let reg = self.registry.lock();
            reg.values()
                .filter(|i| i.shared.group == group_id)
                .cloned()
                .collect()
        };
        if members.is_empty() {
            return Err(Error::Internal {
                msg: format!("group {group_id} has no streams"),
            });
        }
        tracing::info!("vcr: {cmd} on {group_id} ({} streams)", members.len());
        let cmd_tag = match cmd {
            VcrCommand::Play => 0,
            VcrCommand::Pause => 1,
            VcrCommand::Seek(_) => 2,
            VcrCommand::FastForward => 3,
            VcrCommand::FastBackward => 4,
            VcrCommand::Quit => 5,
        };
        self.flight.record(
            members[0].shared.trace.id,
            FlightCode::Vcr,
            group_id.raw(),
            cmd_tag,
        );
        let now = std::time::Instant::now();
        match cmd {
            VcrCommand::Pause => {
                for m in &members {
                    m.shared.ctl.lock().pacer.pause(now);
                }
                Ok(())
            }
            VcrCommand::Play => {
                for m in &members {
                    m.shared.ctl.lock().pacer.resume(now);
                }
                Ok(())
            }
            VcrCommand::Seek(target) => {
                for m in &members {
                    let res: Result<()> = self.disk_rpc(m.disk, |reply| DiskCmd::Seek {
                        stream: m.shared.id,
                        target,
                        reply,
                    })?;
                    res?;
                }
                Ok(())
            }
            VcrCommand::FastForward | VcrCommand::FastBackward => {
                let mode = if cmd == VcrCommand::FastForward {
                    TrickMode::FastForward
                } else {
                    TrickMode::FastBackward
                };
                for m in &members {
                    let res: Result<()> = self.disk_rpc(m.disk, |reply| DiskCmd::Trick {
                        stream: m.shared.id,
                        mode,
                        reply,
                    })?;
                    res?;
                }
                Ok(())
            }
            VcrCommand::Quit => {
                self.finish_group(group_id, DoneReason::ClientQuit);
                Ok(())
            }
        }
    }
}

/// Dials the client's control listener for a group and runs the VCR
/// loop until the connection drops or the group ends.
///
/// Every teardown this loop triggers is guarded by *instance* identity,
/// not just group id: a replica failover re-admits the group under the
/// same id, so by the time this (now-stale) handler notices its
/// connection died, `shared.groups` may already hold the replacement.
/// Tearing down by id alone would kill the replacement's streams.
pub fn run_group_ctrl(shared: Arc<ServerShared>, group: Arc<GroupInfo>, group_id: GroupId) {
    let is_current = |s: &ServerShared| matches!(s.groups.lock().get(&group_id), Some(g) if Arc::ptr_eq(g, &group));
    let finish_ours = |s: &ServerShared, reason: DoneReason| {
        if is_current(s) {
            s.finish_group(group_id, reason);
        }
    };
    let conn = match TcpStream::connect(group.client_ctrl) {
        Ok(c) => c,
        Err(_) => {
            finish_ours(&shared, DoneReason::Error("client unreachable".into()));
            return;
        }
    };
    let mut read_half = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => {
            finish_ours(&shared, DoneReason::Error("socket clone failed".into()));
            return;
        }
    };
    read_half
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    *group.conn.lock() = Some(conn);

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // The group may have ended (playback completed) — or been
        // re-admitted as a new instance by a failover — while we waited.
        if !is_current(&shared) {
            return;
        }
        let msg: Option<ClientToMsu> = match read_frame(&mut read_half) {
            Ok(m) => m,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => None,
        };
        let Some(ClientToMsu::Vcr { group: g, cmd }) = msg else {
            // Client closed the control connection: treat as quit —
            // unless a failover already replaced this group instance
            // (the client drops the old connection when it adopts the
            // replacement; that must not kill the replacement).
            finish_ours(&shared, DoneReason::ClientQuit);
            return;
        };
        if g != group_id {
            shared.send_to_client(
                &group,
                &MsuToClient::VcrAck {
                    group: group_id,
                    error: Some(format!("connection controls {group_id}, not {g}")),
                },
            );
            continue;
        }
        let is_quit = cmd.is_terminal();
        let error = shared.apply_vcr(group_id, cmd).err().map(|e| e.to_string());
        if !is_quit {
            shared.send_to_client(
                &group,
                &MsuToClient::VcrAck {
                    group: group_id,
                    error,
                },
            );
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_rpc_to_missing_disk_errors() {
        let (net_tx, _net_rx) = unbounded();
        let shared = ServerShared {
            registry: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            disk_txs: Vec::new(),
            net_tx,
            coord_conn: Mutex::new(None),
            metrics: MsuMetrics::new(),
            flight: Arc::new(FlightRecorder::new(64)),
            stop: Arc::new(AtomicBool::new(false)),
        };
        let r: Result<u64> = shared.disk_rpc(0, |reply| DiskCmd::FreeBytes { reply });
        assert!(r.is_err());
    }

    #[test]
    fn vcr_on_unknown_group_errors() {
        let (net_tx, _net_rx) = unbounded();
        let shared = ServerShared {
            registry: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            disk_txs: Vec::new(),
            net_tx,
            coord_conn: Mutex::new(None),
            metrics: MsuMetrics::new(),
            flight: Arc::new(FlightRecorder::new(64)),
            stop: Arc::new(AtomicBool::new(false)),
        };
        assert!(shared.apply_vcr(GroupId(9), VcrCommand::Pause).is_err());
    }

    #[test]
    fn send_to_coord_without_connection_is_noop() {
        let (net_tx, _net_rx) = unbounded();
        let shared = ServerShared {
            registry: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            disk_txs: Vec::new(),
            net_tx,
            coord_conn: Mutex::new(None),
            metrics: MsuMetrics::new(),
            flight: Arc::new(FlightRecorder::new(64)),
            stop: Arc::new(AtomicBool::new(false)),
        };
        shared.send_to_coord(&MsuEnvelope {
            req_id: 0,
            body: MsuToCoord::Pong { snapshot: None },
        });
    }
}
