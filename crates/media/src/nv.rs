//! NV-like variable-rate video traces.
//!
//! The paper's Graph 2 used three files captured with NV, Ron
//! Frederick's network video tool: "the three different files used in
//! the test had average rates of 650, 635, and 877 KBit/sec", "most of
//! the packets in the streams are about one KByte long", and "NV
//! encodes a frame and then sends it out as quickly as possible,
//! resulting in bursts of back-to-back packets. Measured using a 50
//! millisecond sliding window, the peak rates of the files ranged from
//! 2.0 to 5.4 MBit/sec." (§3.2.2)
//!
//! [`generate`] reproduces those statistics: frames arrive at a steady
//! interval, each frame is a burst of back-to-back ~1 KB RTP packets,
//! frame sizes fluctuate around the target mean, and periodic
//! scene-change frames produce the 50 ms peaks.

use crate::TimedPacket;
use calliope_proto::rtp::{RtpHeader, VIDEO_CLOCK_HZ};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Payload bytes per NV packet (most packets "about one KByte").
pub const NV_PACKET_BYTES: usize = 1000;

/// Parameters describing one NV capture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NvParams {
    /// Human-readable file name for reports.
    pub name: &'static str,
    /// Target average rate in bits/second.
    pub avg_bps: u64,
    /// Frames per second.
    pub fps: u32,
    /// Scene-change frame size in bytes (sets the 50 ms-window peak:
    /// `peak ≈ burst_bytes · 8 / 0.05`).
    pub burst_bytes: usize,
    /// How often a scene change occurs, in frames.
    pub burst_every: u32,
}

/// The three files of the paper's Graph 2 experiment.
///
/// Burst sizes are chosen so the 50 ms-window peaks land in the paper's
/// 2.0–5.4 Mbit/s range: 13 KB → ~2.1 Mbit/s, 18 KB → ~2.9 Mbit/s,
/// 33 KB → ~5.3 Mbit/s.
pub fn paper_files() -> [NvParams; 3] {
    [
        NvParams {
            name: "nv-650",
            avg_bps: 650_000,
            fps: 10,
            burst_bytes: 13_000,
            burst_every: 40,
        },
        NvParams {
            name: "nv-635",
            avg_bps: 635_000,
            fps: 8,
            burst_bytes: 18_000,
            burst_every: 50,
        },
        NvParams {
            name: "nv-877",
            avg_bps: 877_000,
            fps: 12,
            burst_bytes: 33_000,
            burst_every: 60,
        },
    ]
}

/// Generates `seconds` of NV-like video as timed RTP packets.
///
/// Deterministic in `seed`. Packet times are the *sender's* times: all
/// packets of one frame share the frame's timestamp and leave
/// back-to-back (1 µs apart), reproducing NV's burstiness.
pub fn generate(params: &NvParams, seconds: u32, seed: u64) -> Vec<TimedPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let frames = (seconds * params.fps) as u64;
    let frame_interval_us = 1_000_000 / params.fps as u64;

    // Mean ordinary-frame size such that the long-run average hits
    // avg_bps given the periodic bursts.
    let bytes_per_frame_target = params.avg_bps as f64 / 8.0 / params.fps as f64;
    let burst_share = params.burst_bytes as f64 / params.burst_every as f64;
    let ordinary_mean = (bytes_per_frame_target - burst_share).max(200.0);

    let mut out = Vec::new();
    let mut seq: u16 = 0;
    let ssrc = rng.gen::<u32>();
    for n in 0..frames {
        let t_us = n * frame_interval_us;
        let is_burst = params.burst_every > 0
            && n % params.burst_every as u64 == params.burst_every as u64 - 1;
        let frame_bytes = if is_burst {
            params.burst_bytes
        } else {
            // Uniform in [0.4, 1.6] × mean keeps the average on target
            // while looking like real frame-to-frame variation.
            (ordinary_mean * rng.gen_range(0.4..1.6)) as usize
        };
        let timestamp = (t_us as u128 * VIDEO_CLOCK_HZ as u128 / 1_000_000) as u32;
        let mut remaining = frame_bytes.max(1);
        let mut burst_offset = 0u64;
        while remaining > 0 {
            let take = remaining.min(NV_PACKET_BYTES);
            remaining -= take;
            let header = RtpHeader {
                payload_type: 28, // NV's registered RTP payload type
                marker: remaining == 0,
                seq,
                timestamp,
                ssrc,
            };
            seq = seq.wrapping_add(1);
            let mut payload = header.to_bytes().to_vec();
            let mut body = vec![0u8; take];
            rng.fill(body.as_mut_slice());
            payload.extend_from_slice(&body);
            // Back-to-back: 1 µs apart within the frame burst.
            out.push(TimedPacket::new(t_us + burst_offset, payload));
            burst_offset += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn average_rates_match_paper_files() {
        for p in paper_files() {
            let pkts = generate(&p, 30, 1);
            let avg = measure::avg_bps(&pkts);
            let err = (avg as f64 - p.avg_bps as f64).abs() / p.avg_bps as f64;
            assert!(
                err < 0.15,
                "{}: avg {avg} vs target {} ({:.1}% off)",
                p.name,
                p.avg_bps,
                err * 100.0
            );
        }
    }

    #[test]
    fn peak_rates_land_in_paper_range() {
        let mut peaks = Vec::new();
        for p in paper_files() {
            let pkts = generate(&p, 30, 2);
            let peak = measure::peak_bps(&pkts, 50_000);
            peaks.push(peak);
            assert!(
                (1_800_000..6_500_000).contains(&peak),
                "{}: 50ms peak {peak}",
                p.name
            );
        }
        // The spread must cover roughly 2.0–5.4 Mbit/s as in the paper.
        let min = *peaks.iter().min().unwrap();
        let max = *peaks.iter().max().unwrap();
        assert!(min < 3_000_000, "least bursty file peaks at {min}");
        assert!(max > 4_500_000, "most bursty file peaks at {max}");
    }

    #[test]
    fn packets_are_about_one_kilobyte() {
        let p = paper_files()[0];
        let pkts = generate(&p, 5, 3);
        let full = pkts
            .iter()
            .filter(|pk| pk.payload.len() == NV_PACKET_BYTES + 12)
            .count();
        assert!(
            full * 2 > pkts.len(),
            "most packets should be full-size: {full}/{}",
            pkts.len()
        );
    }

    #[test]
    fn frames_are_bursts_of_back_to_back_packets() {
        let p = paper_files()[2];
        let pkts = generate(&p, 2, 4);
        // Find a burst: consecutive packets 1 µs apart.
        let bursty = pkts
            .windows(2)
            .filter(|w| w[1].time_us == w[0].time_us + 1)
            .count();
        assert!(bursty > pkts.len() / 2, "{bursty} of {}", pkts.len());
    }

    #[test]
    fn rtp_headers_are_valid_and_sequenced() {
        let p = paper_files()[1];
        let pkts = generate(&p, 1, 5);
        let mut prev_seq: Option<u16> = None;
        for pk in &pkts {
            let h = RtpHeader::parse(&pk.payload).unwrap();
            if let Some(prev) = prev_seq {
                assert_eq!(h.seq, prev.wrapping_add(1));
            }
            prev_seq = Some(h.seq);
        }
        // Last packet of each frame carries the marker bit.
        let markers = pkts
            .iter()
            .filter(|pk| RtpHeader::parse(&pk.payload).unwrap().marker)
            .count();
        assert_eq!(markers as u32, p.fps, "one marker per frame");
    }

    #[test]
    fn deterministic_in_seed() {
        let p = paper_files()[0];
        assert_eq!(generate(&p, 2, 7), generate(&p, 2, 7));
        assert_ne!(generate(&p, 2, 7), generate(&p, 2, 8));
    }

    #[test]
    fn times_are_monotone() {
        for p in paper_files() {
            let pkts = generate(&p, 3, 9);
            for w in pkts.windows(2) {
                assert!(w[1].time_us >= w[0].time_us);
            }
        }
    }
}
