//! Calliope: a distributed, scalable multimedia server.
//!
//! A from-scratch Rust reproduction of *"Calliope: A Distributed,
//! Scalable Multimedia Server"* (Heybey, Sullivan, England — USENIX
//! 1996). One Coordinator machine handles the non-real-time work
//! (catalog, admission control, scheduling); one or more Multimedia
//! Storage Units (MSUs) record and play real-time streams; clients
//! speak TCP for control and UDP for data.
//!
//! This crate is the facade: it re-exports the subsystem crates and
//! provides [`Cluster`], which brings up a whole installation —
//! Coordinator plus N MSUs on loopback — in one process, exactly the
//! "very small installation" deployment the paper describes
//! (Coordinator and MSU software on the same machine).
//!
//! ```no_run
//! use calliope::cluster::Cluster;
//! use calliope::content;
//!
//! let cluster = Cluster::builder().msus(1).build().unwrap();
//! let mut client = cluster.client("quickstart", false).unwrap();
//! // Record 2 seconds of synthetic MPEG-1, then play it back.
//! content::upload_mpeg(&mut client, "movie", 2, 42).unwrap();
//! let port = client.open_port("tv", "mpeg1").unwrap();
//! let mut play = client.play("movie", "tv", &[&port]).unwrap();
//! play.wait_end(std::time::Duration::from_secs(30)).unwrap();
//! cluster.shutdown();
//! ```

pub mod cluster;
pub mod content;

pub use calliope_client as client;
pub use calliope_coord as coord;
pub use calliope_media as media;
pub use calliope_msu as msu;
pub use calliope_proto as proto;
pub use calliope_sim as sim;
pub use calliope_storage as storage;
pub use calliope_types as types;

pub use cluster::Cluster;
