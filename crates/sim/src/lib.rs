//! Discrete-event simulation of the paper's 1996 testbed.
//!
//! The original evaluation ran on a 66 MHz Pentium under FreeBSD 2.0.5
//! with Buslogic EISA SCSI adapters, Seagate Barracuda disks, and a DEC
//! DEFPA FDDI interface. That hardware no longer exists, so this crate
//! models it — calibrated against the paper's own published component
//! rates (Table 1, §3.1, §3.2.3) — and regenerates every measurement in
//! the evaluation:
//!
//! * [`engine`] — the event queue and simulated clock.
//! * [`machine`] — the interacting resource model of one MSU PC: disks
//!   (seek/rotation/transfer), SCSI host bus adapters, the memory
//!   system (read 53 / write 25 / copy 18 MB/s), the CPU with the
//!   two-HBA I/O-port-stall bug, and the FDDI interface.
//! * [`baseline`] — the Table 1 experiments: ttcp-style UDP sends,
//!   random 256 KB raw reads, and both at once.
//! * [`msu_model`] — the full MSU data path of Graphs 1 and 2: duty-
//!   cycle disk scheduling, double buffering, a 10 ms-granularity
//!   network process, and per-packet lateness accounting.
//! * [`diskpolicy`] — the §2.3.3 elevator-vs-round-robin comparison.
//! * [`memory`] — the §3.2.3 memory-path bottleneck arithmetic.
//! * [`coord_model`] — the §3.3 Coordinator scalability projection.
//! * [`lateness`] — cumulative lateness distributions (the y-axis of
//!   Graphs 1 and 2).

pub mod baseline;
pub mod coord_model;
pub mod diskpolicy;
pub mod engine;
pub mod lateness;
pub mod machine;
pub mod memory;
pub mod msu_model;

pub use engine::{EventQueue, SimTime};
pub use lateness::LatenessCdf;
