//! The RTP protocol module.
//!
//! RTP (the Internet Real-time Transport Protocol, then draft-ietf-avt-
//! rtp-07) carries a sender timestamp in every data packet. "If there is
//! a timestamp in the protocol's header, then a protocol extension
//! function may derive delivery time from the timestamp. Using the
//! sender-generated protocol timestamp instead of the packet's arrival
//! time has the advantage that it does not include the effects of
//! network-induced jitter." (paper §2.3.2)
//!
//! "The RTP protocol uses two ports — one for control messages and one
//! for data. The RTP module for the MSU manages the control socket.
//! During recording, the RTP module interleaves the control messages
//! with the rest of the data stream before the data is given to the disk
//! process. On output, the opposite process is performed." In this
//! implementation both classes arrive on the Calliope data socket,
//! distinguished by the [`PacketKind`] in the Calliope data header; the
//! module interleaves control packets into the stored stream stamped
//! with the running media time, and [`ProtocolModule::on_play`] routes
//! them back to the control path.

use crate::module::{ProtocolModule, RecordedPacket};
use crate::record::PacketRecord;
use crate::schedule::ScheduleBuilder;
use calliope_types::content::ProtocolId;
use calliope_types::error::{Error, Result};
use calliope_types::wire::data::PacketKind;

/// RTP's fixed header length (no CSRCs, no extension).
pub const RTP_HEADER_LEN: usize = 12;

/// RTP protocol version encoded in the header.
pub const RTP_VERSION: u8 = 2;

/// The media clock rate for video payloads (RFC-standard 90 kHz).
pub const VIDEO_CLOCK_HZ: u32 = 90_000;

/// A parsed RTP fixed header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtpHeader {
    /// Payload type (7 bits).
    pub payload_type: u8,
    /// Marker bit (last packet of a frame for most video encodings).
    pub marker: bool,
    /// Sequence number.
    pub seq: u16,
    /// Media timestamp in clock-rate ticks.
    pub timestamp: u32,
    /// Synchronization source.
    pub ssrc: u32,
}

impl RtpHeader {
    /// Serializes the fixed 12-byte header (V=2, no padding, no
    /// extension, no CSRCs).
    pub fn to_bytes(&self) -> [u8; RTP_HEADER_LEN] {
        let mut b = [0u8; RTP_HEADER_LEN];
        b[0] = RTP_VERSION << 6;
        b[1] = (u8::from(self.marker) << 7) | (self.payload_type & 0x7F);
        b[2..4].copy_from_slice(&self.seq.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[8..12].copy_from_slice(&self.ssrc.to_be_bytes());
        b
    }

    /// Parses the fixed header from the front of an RTP packet.
    pub fn parse(buf: &[u8]) -> Result<RtpHeader> {
        if buf.len() < RTP_HEADER_LEN {
            return Err(Error::Protocol {
                msg: format!("rtp packet too short: {} bytes", buf.len()),
            });
        }
        let version = buf[0] >> 6;
        if version != RTP_VERSION {
            return Err(Error::Protocol {
                msg: format!("rtp version {version} unsupported"),
            });
        }
        Ok(RtpHeader {
            payload_type: buf[1] & 0x7F,
            marker: buf[1] & 0x80 != 0,
            seq: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        })
    }
}

/// Unwraps 32-bit RTP timestamps into a monotone 64-bit tick count.
///
/// RTP timestamps wrap every 2³²/90000 ≈ 13.25 hours at the video clock
/// rate; a long seminar recording crosses that. The unwrapper assumes
/// successive packets differ by less than half the wrap period.
#[derive(Debug, Default)]
pub struct TimestampUnwrapper {
    last: Option<u32>,
    high: u64,
}

impl TimestampUnwrapper {
    /// Creates an unwrapper with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends `ts` to 64 bits, detecting wraparound in either direction.
    pub fn unwrap(&mut self, ts: u32) -> u64 {
        if let Some(last) = self.last {
            let forward = ts.wrapping_sub(last);
            if forward < u32::MAX / 2 {
                // Moving forward; did we cross zero?
                if ts < last {
                    self.high += 1;
                }
            } else {
                // A small step backwards (reordered packet); did it cross
                // zero in reverse?
                if ts > last && self.high > 0 {
                    self.high -= 1;
                }
            }
        }
        self.last = Some(ts);
        (self.high << 32) | ts as u64
    }
}

/// The RTP protocol module.
pub struct RtpModule {
    clock_hz: u32,
    unwrapper: TimestampUnwrapper,
    schedule: ScheduleBuilder,
    /// Delivery offset of the most recent media packet, used to stamp
    /// interleaved control messages.
    last_offset_us: u64,
    dropped: u64,
}

impl RtpModule {
    /// Creates a module for a given media clock rate (90 kHz for video).
    pub fn new(clock_hz: u32) -> Self {
        assert!(clock_hz > 0, "clock rate must be non-zero");
        RtpModule {
            clock_hz,
            unwrapper: TimestampUnwrapper::new(),
            schedule: ScheduleBuilder::new(),
            last_offset_us: 0,
            dropped: 0,
        }
    }

    /// Packets dropped because their RTP header failed to parse.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn ticks_to_us(&self, ticks: u64) -> u64 {
        (ticks as u128 * 1_000_000 / self.clock_hz as u128) as u64
    }
}

impl ProtocolModule for RtpModule {
    fn id(&self) -> ProtocolId {
        ProtocolId::Rtp
    }

    fn on_record(
        &mut self,
        kind: PacketKind,
        payload: &[u8],
        _arrival_us: u64,
    ) -> Result<Option<RecordedPacket>> {
        match kind {
            PacketKind::Media => {
                let header = match RtpHeader::parse(payload) {
                    Ok(h) => h,
                    Err(_) => {
                        // One malformed packet must not kill the stream.
                        self.dropped += 1;
                        return Ok(None);
                    }
                };
                let ticks = self.unwrapper.unwrap(header.timestamp);
                let raw_us = self.ticks_to_us(ticks);
                let offset = self.schedule.push(raw_us);
                self.last_offset_us = offset.as_micros();
                Ok(Some(RecordedPacket {
                    record: PacketRecord::media(offset, payload.to_vec()),
                }))
            }
            PacketKind::Control => {
                // Interleave control messages into the stored stream at
                // the running media time (paper §2.3.2).
                Ok(Some(RecordedPacket {
                    record: PacketRecord::control(
                        calliope_types::time::MediaTime(self.last_offset_us),
                        payload.to_vec(),
                    ),
                }))
            }
            PacketKind::EndOfStream => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PlaybackClass;
    use proptest::prelude::*;

    fn rtp_packet(seq: u16, timestamp: u32, body: &[u8]) -> Vec<u8> {
        let header = RtpHeader {
            payload_type: 26,
            marker: false,
            seq,
            timestamp,
            ssrc: 0xDECAF,
        };
        let mut pkt = header.to_bytes().to_vec();
        pkt.extend_from_slice(body);
        pkt
    }

    #[test]
    fn header_round_trip() {
        let h = RtpHeader {
            payload_type: 96,
            marker: true,
            seq: 0xBEEF,
            timestamp: 0x01020304,
            ssrc: 0xA0B0C0D0,
        };
        assert_eq!(RtpHeader::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn short_or_bad_version_packets_fail_parse() {
        assert!(RtpHeader::parse(&[0u8; 5]).is_err());
        let mut b = rtp_packet(1, 1, b"x");
        b[0] = 0; // version 0
        assert!(RtpHeader::parse(&b).is_err());
    }

    #[test]
    fn delivery_time_comes_from_timestamp_not_arrival() {
        let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
        // Two packets 90000 ticks (1 s) apart in media time, but arriving
        // only 10 µs apart (burst): the schedule must span 1 s.
        let a = m
            .on_record(PacketKind::Media, &rtp_packet(0, 0, b"f0"), 1_000)
            .unwrap()
            .unwrap();
        let b = m
            .on_record(PacketKind::Media, &rtp_packet(1, 90_000, b"f1"), 1_010)
            .unwrap()
            .unwrap();
        assert_eq!(a.record.offset.as_micros(), 0);
        assert_eq!(b.record.offset.as_micros(), 1_000_000);
    }

    #[test]
    fn timestamp_wraparound_is_unwrapped() {
        let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
        let near_wrap = u32::MAX - 45_000;
        m.on_record(PacketKind::Media, &rtp_packet(0, near_wrap, b""), 0)
            .unwrap();
        let after = m
            .on_record(PacketKind::Media, &rtp_packet(1, 45_000, b""), 10)
            .unwrap()
            .unwrap();
        // 90_001 ticks elapsed ≈ 1.000011 s, despite the 32-bit wrap.
        let us = after.record.offset.as_micros();
        assert!((999_000..1_002_000).contains(&us), "{us}");
    }

    #[test]
    fn malformed_media_packet_is_dropped_not_fatal() {
        let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
        assert!(m
            .on_record(PacketKind::Media, &[1, 2, 3], 0)
            .unwrap()
            .is_none());
        assert_eq!(m.dropped(), 1);
        // Stream continues fine afterwards.
        assert!(m
            .on_record(PacketKind::Media, &rtp_packet(0, 0, b"ok"), 5)
            .unwrap()
            .is_some());
    }

    #[test]
    fn control_packets_interleave_at_running_media_time() {
        let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
        m.on_record(PacketKind::Media, &rtp_packet(0, 0, b""), 0)
            .unwrap();
        m.on_record(PacketKind::Media, &rtp_packet(1, 90_000, b""), 1)
            .unwrap();
        let ctrl = m
            .on_record(PacketKind::Control, b"rtcp report", 2)
            .unwrap()
            .unwrap();
        assert_eq!(ctrl.record.kind, PacketKind::Control);
        assert_eq!(ctrl.record.offset.as_micros(), 1_000_000);
        // And on playback it routes back to the control path.
        assert_eq!(m.on_play(&ctrl.record).unwrap(), PlaybackClass::Control);
    }

    #[test]
    fn end_of_stream_records_nothing() {
        let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
        assert!(m
            .on_record(PacketKind::EndOfStream, &[], 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn unwrapper_handles_reordering_across_wrap() {
        let mut u = TimestampUnwrapper::new();
        let a = u.unwrap(u32::MAX - 10);
        let b = u.unwrap(5); // wrapped forward
        let c = u.unwrap(u32::MAX - 2); // reordered packet from before the wrap
        assert!(b > a);
        assert!(c < b);
        assert_eq!(c, (u32::MAX - 2) as u64);
    }

    proptest! {
        #[test]
        fn prop_unwrapped_timestamps_preserve_small_deltas(start in any::<u32>(), deltas in proptest::collection::vec(0u32..1_000_000, 1..100)) {
            let mut u = TimestampUnwrapper::new();
            let mut ts = start;
            let mut prev = u.unwrap(ts);
            for d in deltas {
                ts = ts.wrapping_add(d);
                let cur = u.unwrap(ts);
                prop_assert_eq!(cur - prev, d as u64);
                prev = cur;
            }
        }

        #[test]
        fn prop_rtp_module_never_panics_on_garbage(pkts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..50)) {
            let mut m = RtpModule::new(VIDEO_CLOCK_HZ);
            for (i, p) in pkts.iter().enumerate() {
                let _ = m.on_record(PacketKind::Media, p, i as u64);
            }
        }
    }
}
