//! A command-line Calliope client.
//!
//! ```sh
//! calliope-cli --coordinator HOST:PORT [--admin] <command> [args…]
//!
//! commands:
//!   list                      table of contents
//!   types                     content-type table
//!   upload <name> <secs>      record <secs> s of synthetic MPEG-1
//!   upload-trick <name> <secs> also produce + attach FF/FB files (admin)
//!   play <name>               play to a local port, report quality
//!   delete <name>             delete content (admin)
//!   replicate <name>          copy content onto another disk (admin)
//!   status                    scheduler resource view
//!   stats [msu-N]             live metrics from the Coordinator and MSUs
//!   top [--watch]             merged cluster view from heartbeat snapshots
//! ```
//!
//! `play` accepts VCR commands on stdin while the stream runs:
//! `pause`, `play`, `seek <secs>`, `ff`, `fb`, `quit`.

use calliope::content;
use calliope_client::CalliopeClient;
use calliope_types::wire::stats::{MetricValue, StatsSnapshot};
use calliope_types::{MediaTime, MsuId, VcrCommand};
use std::io::BufRead;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: calliope-cli --coordinator HOST:PORT [--admin] \
         <list|types|upload|upload-trick|play|delete|replicate|status|stats|top> [args…]"
    );
    std::process::exit(2);
}

fn main() {
    calliope_obs::init_logging();
    let mut coordinator: Option<SocketAddr> = None;
    let mut admin = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--coordinator" => {
                let v = args.next().unwrap_or_else(|| usage());
                coordinator = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--admin" => admin = true,
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let Some(coordinator) = coordinator else {
        usage()
    };
    if rest.is_empty() {
        usage()
    }

    let bind = IpAddr::V4(Ipv4Addr::LOCALHOST);
    let mut client = match CalliopeClient::connect(coordinator, bind, "calliope-cli", admin) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("calliope-cli: connect: {e}");
            std::process::exit(1);
        }
    };

    let cmd_span = tracing::info_span!("cli", cmd = rest[0]);
    let _guard = cmd_span.enter();
    let result = match rest[0].as_str() {
        "list" => cmd_list(&mut client),
        "types" => cmd_types(&mut client),
        "upload" => {
            if rest.len() != 3 {
                usage()
            }
            let secs: u32 = rest[2].parse().unwrap_or_else(|_| usage());
            content::upload_mpeg(&mut client, &rest[1], secs, 42).map(|s| {
                println!("uploaded {} bytes as {:?}", s.len(), rest[1]);
            })
        }
        "upload-trick" => {
            if rest.len() != 3 {
                usage()
            }
            let secs: u32 = rest[2].parse().unwrap_or_else(|_| usage());
            content::upload_movie_with_trick(&mut client, &rest[1], secs, 42).map(|s| {
                println!(
                    "uploaded {} bytes as {:?} with FF/FB files attached",
                    s.len(),
                    rest[1]
                );
            })
        }
        "play" => {
            if rest.len() != 2 {
                usage()
            }
            cmd_play(&mut client, &rest[1])
        }
        "delete" => {
            if rest.len() != 2 {
                usage()
            }
            client
                .delete(&rest[1])
                .map(|()| println!("deleted {:?}", rest[1]))
        }
        "replicate" => {
            if rest.len() != 2 {
                usage()
            }
            client
                .replicate(&rest[1])
                .map(|()| println!("replicated {:?}", rest[1]))
        }
        "status" => client.server_status().map(|(msus, streams)| {
            println!("active streams: {streams}");
            for m in msus {
                println!(
                    "{}  {}  net {}/{} kB/s",
                    m.msu,
                    if m.available { "up  " } else { "DOWN" },
                    m.net_used / 1000,
                    m.net_capacity / 1000
                );
                for d in m.disks {
                    println!(
                        "  {}  free {}/{} MB   bw {}/{} kB/s",
                        d.disk,
                        d.free_bytes / 1_000_000,
                        d.capacity_bytes / 1_000_000,
                        d.bw_used / 1000,
                        d.bw_capacity / 1000
                    );
                }
            }
        }),
        "stats" => {
            let msu = match rest.get(1) {
                None => None,
                Some(arg) => {
                    let digits = arg.strip_prefix("msu-").unwrap_or(arg);
                    Some(MsuId(digits.parse().unwrap_or_else(|_| usage())))
                }
            };
            cmd_stats(&mut client, msu)
        }
        "top" => {
            let watch = match rest.get(1).map(String::as_str) {
                None => false,
                Some("--watch") => true,
                Some(_) => usage(),
            };
            cmd_top(&mut client, watch)
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("calliope-cli: {e}");
        std::process::exit(1);
    }
}

fn cmd_list(client: &mut CalliopeClient) -> calliope_types::Result<()> {
    let toc = client.list_content()?;
    if toc.is_empty() {
        println!("(no content)");
    }
    for e in toc {
        println!(
            "{:24} {:12} {:>12} bytes {:>8.1}s",
            e.name,
            e.type_name,
            e.bytes,
            e.duration_us as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_types(client: &mut CalliopeClient) -> calliope_types::Result<()> {
    for t in client.list_types()? {
        println!("{t:?}");
    }
    Ok(())
}

/// Formats a µs figure from a histogram bound; the overflow bucket's
/// `u64::MAX` bound prints as the catch-all it is.
fn fmt_us(v: u64) -> String {
    if v == u64::MAX {
        ">1s".into()
    } else {
        format!("{v}µs")
    }
}

/// Prints one snapshot's metrics, histograms as interpolated quantiles.
fn print_snapshot(snap: &StatsSnapshot) {
    println!(
        "=== {} (up {:.1}s) ===",
        snap.source,
        snap.uptime_us as f64 / 1e6
    );
    for m in &snap.metrics {
        match &m.value {
            MetricValue::Counter(v) => println!("  {:36} {v}", m.name),
            MetricValue::Gauge { value, high_water } => {
                println!("  {:36} {value} (high water {high_water})", m.name)
            }
            MetricValue::Histogram { count, .. } => {
                let q = |p: f64| {
                    m.value
                        .quantile(p)
                        .map(fmt_us)
                        .unwrap_or_else(|| "-".into())
                };
                let mean = m.value.mean().unwrap_or(0.0);
                println!(
                    "  {:36} n={count} mean={mean:.0}µs p50={} p95={} p99={}",
                    m.name,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
    }
}

fn cmd_stats(client: &mut CalliopeClient, msu: Option<MsuId>) -> calliope_types::Result<()> {
    let snaps = client.stats(msu)?;
    if snaps.is_empty() {
        println!("(no snapshots)");
    }
    for snap in &snaps {
        print_snapshot(snap);
    }
    Ok(())
}

/// One `top` summary row: uptime plus the send-lateness quantiles the
/// operator scans first.
fn top_row(snap: &StatsSnapshot) -> String {
    let q = |p: f64| {
        snap.get("net.send_lateness_us")
            .and_then(|v| v.quantile(p))
            .map(fmt_us)
            .unwrap_or_else(|| "-".into())
    };
    format!(
        "{:10} up {:>8.1}s  send lateness p50={} p95={} p99={}",
        snap.source,
        snap.uptime_us as f64 / 1e6,
        q(0.50),
        q(0.95),
        q(0.99)
    )
}

/// The cluster view: one summary row per MSU plus the merged aggregate,
/// assembled by the Coordinator from heartbeat-piggybacked snapshots.
/// `--watch` redraws once a second until interrupted.
fn cmd_top(client: &mut CalliopeClient, watch: bool) -> calliope_types::Result<()> {
    loop {
        let (cluster, msus) = client.cluster_stats()?;
        if watch {
            // ANSI clear + home, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        if msus.is_empty() {
            println!("(no MSU snapshots yet — first heartbeats pending)");
        }
        for snap in &msus {
            println!("{}", top_row(snap));
        }
        if !msus.is_empty() {
            println!("{}", top_row(&cluster));
            println!();
            print_snapshot(&cluster);
        }
        if !watch {
            return Ok(());
        }
        use std::io::Write;
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_secs(1));
    }
}

fn cmd_play(client: &mut CalliopeClient, name: &str) -> calliope_types::Result<()> {
    // Look the type up so the port matches the content.
    let toc = client.list_content()?;
    let entry = toc
        .iter()
        .find(|e| e.name == name)
        .ok_or_else(|| calliope_types::Error::NoSuchContent { name: name.into() })?;
    if entry.type_name != "mpeg1" {
        return Err(calliope_types::Error::Protocol {
            msg: format!(
                "calliope-cli play only supports atomic mpeg1 content (got {})",
                entry.type_name
            ),
        });
    }
    let port = client.open_port("cli", &entry.type_name)?;
    let mut play = client.play(name, "cli", &[&port])?;
    let stream = play.streams[0];
    println!(
        "playing {name:?} ({:.1}s); VCR commands on stdin: pause/play/seek <s>/ff/fb/quit",
        entry.duration_us as f64 / 1e6
    );

    // Stdin VCR loop on a side thread.
    let (tx, rx) = std::sync::mpsc::channel::<VcrCommand>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let parts: Vec<&str> = line.split_whitespace().collect();
            let cmd = match parts.as_slice() {
                ["pause"] => VcrCommand::Pause,
                ["play"] => VcrCommand::Play,
                ["ff"] => VcrCommand::FastForward,
                ["fb"] => VcrCommand::FastBackward,
                ["quit"] => VcrCommand::Quit,
                ["seek", s] => match s.parse::<f64>() {
                    Ok(v) => VcrCommand::Seek(MediaTime((v * 1e6) as u64)),
                    Err(_) => continue,
                },
                _ => continue,
            };
            let terminal = cmd.is_terminal();
            if tx.send(cmd).is_err() || terminal {
                break;
            }
        }
    });

    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(cmd) => {
                let terminal = cmd.is_terminal();
                match play.vcr(cmd) {
                    Ok(()) => println!("ok"),
                    Err(e) => println!("vcr error: {e}"),
                }
                if terminal {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if play.ended().is_some() {
                    break;
                }
                // Poll for natural end without blocking stdin.
                if let Ok(reason) = play.wait_end(Duration::from_millis(10)) {
                    println!("stream ended: {reason:?}");
                    break;
                }
            }
            Err(_) => break,
        }
    }
    std::thread::sleep(Duration::from_millis(200));
    let s = port.stats(stream);
    println!(
        "{} packets, {} bytes, {} lost, worst lateness {:.1} ms, {:.2}% within 50 ms",
        s.packets,
        s.bytes,
        s.lost,
        s.max_late_us as f64 / 1000.0,
        s.pct_within_50ms()
    );
    Ok(())
}
