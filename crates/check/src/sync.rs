//! Shimmed `sync` primitives: atomics, `Arc`, and a parking_lot-style
//! `Mutex`.
//!
//! In a normal build everything here is a plain re-export — code that
//! imports from `calliope_check::sync` compiles to exactly what it
//! would with `std`/`parking_lot`. Under `--cfg calliope_check` the
//! types carry a [`model`](crate::model) registration next to the real
//! primitive: inside a model run every operation routes through the
//! scheduler; outside one (ordinary tests built with the cfg, or drops
//! running while a panic unwinds) they fall through to the real
//! primitive.

#[cfg(not(calliope_check))]
pub use parking_lot::{Mutex, MutexGuard};
#[cfg(not(calliope_check))]
pub use std::sync::Arc;

#[cfg(not(calliope_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(calliope_check)]
pub use checked::{Arc, Mutex, MutexGuard};

#[cfg(calliope_check)]
pub mod atomic {
    pub use super::checked::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(calliope_check)]
mod checked {
    use crate::model::{cur_ctx, Ctx, Registration};
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::Ordering;

    /// The model context, unless none is active or the thread is
    /// unwinding — drops that run during a model teardown must not
    /// re-enter the scheduler.
    fn model_ctx() -> Option<Ctx> {
        if std::thread::panicking() {
            return None;
        }
        cur_ctx()
    }

    macro_rules! shim_atomic {
        ($name:ident, $real:ty, $prim:ty, $to:expr, $from:expr) => {
            /// Instrumented drop-in for the std atomic of the same name.
            pub struct $name {
                real: $real,
                reg: Registration,
            }

            impl $name {
                /// Creates the atomic (const, like std's).
                pub const fn new(v: $prim) -> Self {
                    Self {
                        real: <$real>::new(v),
                        reg: Registration::new(),
                    }
                }

                fn init(&self) -> u64 {
                    // relaxed: seeding a model location from the value
                    // the object was constructed with; the model
                    // serializes every subsequent access.
                    $to(self.real.load(Ordering::Relaxed))
                }

                /// See the std atomic's `load`.
                pub fn load(&self, ord: Ordering) -> $prim {
                    match model_ctx() {
                        Some(ctx) => {
                            $from(ctx.run.atomic_load(ctx.tid, &self.reg, self.init(), ord))
                        }
                        None => self.real.load(ord),
                    }
                }

                /// See the std atomic's `store`.
                pub fn store(&self, v: $prim, ord: Ordering) {
                    match model_ctx() {
                        Some(ctx) => ctx.run.atomic_store(
                            ctx.tid,
                            &self.reg,
                            self.init(),
                            $to(v),
                            ord,
                            |n| self.real.store($from(n), Ordering::SeqCst),
                        ),
                        None => self.real.store(v, ord),
                    }
                }

                /// See the std atomic's `swap`.
                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |_| $to(v), |r| r.swap(v, ord))
                }

                fn rmw(
                    &self,
                    ord: Ordering,
                    f: impl FnOnce(u64) -> u64,
                    real: impl FnOnce(&$real) -> $prim,
                ) -> $prim {
                    match model_ctx() {
                        Some(ctx) => $from(ctx.run.atomic_rmw(
                            ctx.tid,
                            &self.reg,
                            self.init(),
                            ord,
                            f,
                            |n| self.real.store($from(n), Ordering::SeqCst),
                        )),
                        None => real(&self.real),
                    }
                }

                /// Exclusive access to the value (like std's `get_mut`).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.real.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    // relaxed: Debug peeks at the mirror value; it is
                    // not part of any synchronization protocol.
                    fmt::Debug::fmt(&self.real.load(Ordering::Relaxed), f)
                }
            }
        };
    }

    shim_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        (|v: u64| v),
        (|v: u64| v)
    );
    shim_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        (|v: usize| v as u64),
        (|v: u64| v as usize)
    );
    shim_atomic!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        (|v: bool| v as u64),
        (|v: u64| v != 0)
    );

    macro_rules! shim_fetch {
        ($name:ident, $prim:ty, $($method:ident => $apply:expr),+ $(,)?) => {
            impl $name {
                $(
                    /// See the std atomic's method of the same name.
                    pub fn $method(&self, v: $prim, ord: Ordering) -> $prim {
                        #[allow(clippy::redundant_closure_call)]
                        self.rmw(
                            ord,
                            |old| {
                                let apply: fn($prim, $prim) -> $prim = $apply;
                                let conv_to = |x: $prim| x as u64;
                                conv_to(apply(old as $prim, v))
                            },
                            |r| r.$method(v, ord),
                        )
                    }
                )+
            }
        };
    }

    shim_fetch!(AtomicU64, u64,
        fetch_add => |a, b| a.wrapping_add(b),
        fetch_sub => |a, b| a.wrapping_sub(b),
        fetch_max => |a, b| a.max(b),
        fetch_min => |a, b| a.min(b),
    );
    shim_fetch!(AtomicUsize, usize,
        fetch_add => |a, b| a.wrapping_add(b),
        fetch_sub => |a, b| a.wrapping_sub(b),
        fetch_max => |a, b| a.max(b),
        fetch_min => |a, b| a.min(b),
    );

    struct ArcInner<T> {
        strong: AtomicUsize,
        data: T,
    }

    /// Instrumented `Arc`: the strong count is a shimmed atomic, so
    /// clone/drop ordering is part of the explored interleavings and a
    /// refcount protocol bug shows up as a model failure instead of a
    /// silent double-free.
    pub struct Arc<T> {
        ptr: std::ptr::NonNull<ArcInner<T>>,
    }

    // SAFETY: same bounds as std's Arc — the refcount serializes the
    // final drop, and shared access to T requires T: Sync.
    unsafe impl<T: Send + Sync> Send for Arc<T> {}
    // SAFETY: see above.
    unsafe impl<T: Send + Sync> Sync for Arc<T> {}

    impl<T> Arc<T> {
        /// Allocates a new refcounted value.
        pub fn new(data: T) -> Arc<T> {
            let inner = Box::new(ArcInner {
                strong: AtomicUsize::new(1),
                data,
            });
            Arc {
                ptr: std::ptr::NonNull::from(Box::leak(inner)),
            }
        }

        fn inner(&self) -> &ArcInner<T> {
            // SAFETY: the allocation lives until the strong count hits
            // zero, and holding &self proves the count is nonzero.
            unsafe { self.ptr.as_ref() }
        }
    }

    impl<T> Clone for Arc<T> {
        fn clone(&self) -> Arc<T> {
            // relaxed: matching std::sync::Arc — a clone only needs to
            // see a nonzero count, which holding &self guarantees; the
            // release/acquire pair lives in Drop.
            self.inner().strong.fetch_add(1, Ordering::Relaxed);
            Arc { ptr: self.ptr }
        }
    }

    impl<T> Deref for Arc<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner().data
        }
    }

    impl<T> Drop for Arc<T> {
        fn drop(&mut self) {
            if self.inner().strong.fetch_sub(1, Ordering::Release) != 1 {
                return;
            }
            // The acquire load pairs with every other clone's release
            // decrement, ordering their last use of the data before
            // the free (std's Arc uses an acquire fence here).
            self.inner().strong.load(Ordering::Acquire);
            // SAFETY: the count just went 1 -> 0, so this is the only
            // remaining handle and nobody can observe the allocation
            // again.
            unsafe { drop(Box::from_raw(self.ptr.as_ptr())) }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Arc<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    /// Instrumented parking_lot-style mutex (no poisoning, guard from
    /// plain `lock()`). Inside a model run, blocking is model-level:
    /// the scheduler parks the thread and explores who runs instead.
    pub struct Mutex<T> {
        reg: Registration,
        /// Real exclusion for passthrough use outside a model run.
        real: std::sync::Mutex<()>,
        data: std::cell::UnsafeCell<T>,
    }

    // SAFETY: the mutex hands out &mut T only under exclusion (model
    // scheduler inside a run, the real mutex outside).
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: see above.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Creates the mutex (const, like parking_lot's).
        pub const fn new(v: T) -> Mutex<T> {
            Mutex {
                reg: Registration::new(),
                real: std::sync::Mutex::new(()),
                data: std::cell::UnsafeCell::new(v),
            }
        }

        /// Acquires the lock, blocking (in model time inside a run)
        /// until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            match model_ctx() {
                Some(ctx) => {
                    ctx.run.mutex_lock(ctx.tid, &self.reg);
                    MutexGuard {
                        m: self,
                        real: None,
                        ctx: Some(ctx),
                    }
                }
                None => {
                    let g = self.real.lock().unwrap_or_else(|e| e.into_inner());
                    MutexGuard {
                        m: self,
                        real: Some(g),
                        ctx: None,
                    }
                }
            }
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut()
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Mutex(..)")
        }
    }

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T> {
        m: &'a Mutex<T>,
        real: Option<std::sync::MutexGuard<'a, ()>>,
        ctx: Option<Ctx>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard proves exclusion (model or real).
            unsafe { &*self.m.data.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: the guard proves exclusion (model or real).
            unsafe { &mut *self.m.data.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let _ = &self.real; // released by its own drop
            if let Some(ctx) = self.ctx.take() {
                if !std::thread::panicking() {
                    ctx.run.mutex_unlock(ctx.tid, &self.m.reg);
                }
                // While unwinding: the run is being torn down, so the
                // model-level lock state no longer matters.
            }
        }
    }
}
