//! Scaling out: multiple MSUs, many concurrent viewers, and queueing.
//!
//! ```sh
//! cargo run --example scale_out
//! ```
//!
//! "Larger Calliope installations still have a single coordinator, but
//! add more MSUs as storage requirements or user bandwidth requirements
//! increase." This example starts two MSUs, spreads content across
//! them, saturates one disk's bandwidth with viewers, and shows a
//! queued request completing the moment capacity frees (§2.2).

use calliope::cluster::Cluster;
use calliope::content;
use std::time::{Duration, Instant};

fn main() {
    println!("starting Coordinator + 2 MSUs…");
    let cluster = Cluster::builder().msus(2).build().expect("cluster start");
    let mut librarian = cluster.client("librarian", false).expect("session");

    println!("loading 3 titles…");
    for (i, name) in ["news", "lecture", "cartoon"].iter().enumerate() {
        content::upload_mpeg(&mut librarian, name, 2, i as u64).expect("upload");
    }

    // 12 viewers of one title saturate its disk (2.4 MB/s ÷ 187.5 kB/s).
    println!("admitting 12 viewers of \"news\" (the per-disk bandwidth ceiling)…");
    let mut viewer = cluster.client("audience", false).expect("session");
    let mut ports = Vec::new();
    for i in 0..12 {
        ports.push(viewer.open_port(&format!("tv{i}"), "mpeg1").expect("port"));
    }
    let mut plays = Vec::new();
    for (i, port) in ports.iter().enumerate() {
        plays.push(
            viewer
                .play("news", &format!("tv{i}"), &[port])
                .expect("play"),
        );
    }
    println!("  active streams: {}", cluster.coord.active_streams());

    println!("viewer 13 asks for \"news\": the Coordinator queues the request…");
    let extra = viewer.open_port("tv-extra", "mpeg1").expect("port");
    let mut one = plays.pop().expect("have 12");
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(800));
        println!("  (a seat frees: one viewer quits)");
        one.quit().expect("quit");
    });
    let started = Instant::now();
    let mut queued = viewer
        .play("news", "tv-extra", &[&extra])
        .expect("queued play");
    println!(
        "  queued request completed after {:?} (> 0.5 s of waiting)",
        started.elapsed()
    );
    t.join().unwrap();

    println!("other titles on the second disk/MSU admit instantly:");
    let lport = viewer.open_port("tv-lecture", "mpeg1").expect("port");
    let started = Instant::now();
    let mut lecture = viewer
        .play("lecture", "tv-lecture", &[&lport])
        .expect("play");
    println!("  \"lecture\" admitted in {:?}", started.elapsed());

    println!("tearing down…");
    queued.quit().ok();
    lecture.quit().ok();
    for mut p in plays {
        p.quit().ok();
    }
    cluster.shutdown();
    println!("done.");
}
