//! Synthetic media for the Calliope reproduction.
//!
//! The paper's evaluation used real MPEG-1 movies, NV (network video)
//! captures of MBone seminars, and VAT audio. None of those encoders or
//! traces are available here, so this crate generates synthetic streams
//! that preserve the properties the system actually depends on:
//!
//! * [`mpeg`] — an MPEG-1-*like* elementary stream: GOP structure with
//!   an intra-coded frame every 15th frame, constant 1.5 Mbit/s, and a
//!   byte stream the MSU treats as opaque (the paper stresses the MSU
//!   never parses MPEG in real time). Frame boundaries are parseable
//!   *offline*, which is exactly what the trick-play filter needs.
//! * [`nv`] — NV-like variable-rate video traces: frames emitted as
//!   bursts of back-to-back ~1 KB RTP packets, with average rates and
//!   50 ms-window peaks matching the three files in the paper's Graph 2
//!   (averages 635–877 Kbit/s, peaks 2.0–5.4 Mbit/s).
//! * [`vat`] — VAT-like audio: 160-byte packets every 20 ms (8 kHz PCM,
//!   64 Kbit/s).
//! * [`filter`] — the *offline* fast-forward / fast-backward filter of
//!   paper §2.3.1: select every 15th frame, reverse for FB.
//! * [`measure`] — average and sliding-window-peak bitrate measurement,
//!   used by tests and by the Graph 2 bench to report workload rates.

pub mod filter;
pub mod measure;
pub mod mpeg;
pub mod nv;
pub mod vat;

/// A packet with the (sender-side) time it should enter the network,
/// relative to the start of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedPacket {
    /// Send time in microseconds from stream start.
    pub time_us: u64,
    /// Packet bytes, protocol header included.
    pub payload: Vec<u8>,
}

impl TimedPacket {
    /// Convenience constructor.
    pub fn new(time_us: u64, payload: Vec<u8>) -> Self {
        TimedPacket { time_us, payload }
    }
}
