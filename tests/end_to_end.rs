//! End-to-end integration: Coordinator + MSUs + clients over real
//! sockets, exercising the full paper workflow — record, browse, play,
//! VCR control, trick play, composite groups, queueing, failure
//! recovery, and deletion.

use calliope::cluster::Cluster;
use calliope::content;
use calliope_media::mpeg;
use calliope_types::wire::messages::DoneReason;
use calliope_types::{MediaTime, StreamId};
use std::time::{Duration, Instant};

fn wait_for<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn record_then_play_round_trips_bytes() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();

    // Record 2 s of synthetic MPEG-1.
    let original = content::upload_mpeg(&mut client, "movie", 2, 42).unwrap();

    // It shows in the table of contents with a plausible duration.
    let toc = client.list_content().unwrap();
    let entry = toc.iter().find(|e| e.name == "movie").expect("cataloged");
    assert_eq!(entry.bytes, original.len() as u64);
    let dur_s = entry.duration_us as f64 / 1e6;
    assert!(
        (1.5..3.0).contains(&dur_s),
        "duration {dur_s}s for 2s content"
    );

    // Play it back and collect every byte.
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("movie", "tv", &[&port]).unwrap();
    assert_eq!(play.streams.len(), 1);
    let stream = play.streams[0];
    let reason = play.wait_end(Duration::from_secs(30)).unwrap();
    assert_eq!(reason, DoneReason::Completed);

    let stats = wait_for(Duration::from_secs(5), || {
        let s = port.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(stats.bytes, original.len() as u64, "every byte delivered");
    assert_eq!(stats.lost, 0);
    assert_eq!(stats.reordered, 0);
    // Soft real time on loopback: comfortably within the paper's 150 ms
    // worst case.
    assert!(
        stats.max_late_us < 150_000,
        "max late {}us",
        stats.max_late_us
    );

    cluster.shutdown();
}

#[test]
fn playback_is_paced_not_blasted() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "clip", 2, 7).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let started = Instant::now();
    let mut play = client.play("clip", "tv", &[&port]).unwrap();
    play.wait_end(Duration::from_secs(30)).unwrap();
    let took = started.elapsed();
    // 2 s of 1.5 Mbit/s content must take ≈2 s to deliver.
    assert!(took >= Duration::from_millis(1_500), "played in {took:?}");
    assert!(took <= Duration::from_secs(10), "played in {took:?}");
    cluster.shutdown();
}

#[test]
fn pause_stops_the_flow_and_resume_continues() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "long", 4, 9).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("long", "tv", &[&port]).unwrap();
    let stream = play.streams[0];

    // Let some packets flow, then pause.
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 5).then_some(())
    });
    play.pause().unwrap();
    std::thread::sleep(Duration::from_millis(150)); // drain in-flight
    let frozen = port.stats(stream).packets;
    std::thread::sleep(Duration::from_millis(500));
    let after = port.stats(stream).packets;
    assert!(
        after <= frozen + 2,
        "paused stream kept flowing: {frozen} -> {after}"
    );

    play.resume().unwrap();
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > after + 5).then_some(())
    });
    play.quit().unwrap();
    cluster.shutdown();
}

#[test]
fn seek_skips_content() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let original = content::upload_mpeg(&mut client, "movie", 4, 11).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("movie", "tv", &[&port]).unwrap();
    let stream = play.streams[0];

    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });
    // Jump near the end: the remainder plays out in well under the
    // full 4 s.
    play.seek(MediaTime::from_millis(3_500)).unwrap();
    let reason = play.wait_end(Duration::from_secs(15)).unwrap();
    assert_eq!(reason, DoneReason::Completed);
    let stats = port.stats(stream);
    // We received far less than the whole file (some head + the tail).
    assert!(
        stats.bytes < original.len() as u64 / 2,
        "seek should skip most bytes: got {} of {}",
        stats.bytes,
        original.len()
    );
    cluster.shutdown();
}

#[test]
fn trick_play_switches_files_and_survives_round_trip() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    content::upload_movie_with_trick(&mut admin, "film", 4, 13).unwrap();

    let mut client = cluster.client("bob", false).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("film", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });

    // Fast forward, then back to normal, then quit.
    play.vcr(calliope_types::VcrCommand::FastForward).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    play.vcr(calliope_types::VcrCommand::Play).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    play.vcr(calliope_types::VcrCommand::FastBackward).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    play.quit().unwrap();
    assert!(port.stats(stream).packets > 0);
    cluster.shutdown();
}

#[test]
fn trick_play_without_files_is_rejected() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "plain", 2, 5).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("plain", "tv", &[&port]).unwrap();
    let err = play.vcr(calliope_types::VcrCommand::FastForward);
    assert!(err.is_err(), "FF without trick files must fail");
    // The stream itself survives the failed command.
    play.quit().unwrap();
    cluster.shutdown();
}

#[test]
fn composite_seminar_plays_both_components_in_one_group() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let (video, audio) = content::upload_seminar(&mut client, "talk", 2, 21).unwrap();

    let vport = client.open_port("v", "nv-video").unwrap();
    let aport = client.open_port("a", "vat-audio").unwrap();
    client
        .register_composite("sem", "seminar", &[&vport, &aport])
        .unwrap();
    let mut play = client.play("talk", "sem", &[&vport, &aport]).unwrap();
    assert_eq!(play.streams.len(), 2, "one stream per component");
    let (vs, as_) = (play.streams[0], play.streams[1]);
    let reason = play.wait_end(Duration::from_secs(60)).unwrap();
    assert_eq!(reason, DoneReason::Completed);

    let vstats = wait_for(Duration::from_secs(5), || {
        let s = vport.stats(vs);
        s.eos.then_some(s)
    });
    let astats = wait_for(Duration::from_secs(5), || {
        let s = aport.stats(as_);
        s.eos.then_some(s)
    });
    let vbytes: u64 = video.iter().map(|p| p.payload.len() as u64).sum();
    let abytes: u64 = audio.iter().map(|p| p.payload.len() as u64).sum();
    assert_eq!(vstats.bytes, vbytes, "video bytes");
    assert_eq!(astats.bytes, abytes, "audio bytes");
    assert_eq!(vstats.lost + astats.lost, 0);
    cluster.shutdown();
}

#[test]
fn deletion_requires_admin_and_frees_the_name() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    content::upload_mpeg(&mut admin, "tmp", 1, 3).unwrap();

    let mut user = cluster.client("bob", false).unwrap();
    assert!(user.delete("tmp").is_err(), "non-admin delete must fail");
    admin.delete("tmp").unwrap();
    assert!(admin
        .list_content()
        .unwrap()
        .iter()
        .all(|e| e.name != "tmp"));
    // The name is reusable.
    content::upload_mpeg(&mut admin, "tmp", 1, 4).unwrap();
    cluster.shutdown();
}

#[test]
fn content_survives_msu_restart() {
    let mut cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let original = content::upload_mpeg(&mut client, "persist", 1, 17).unwrap();

    // Crash and restart the MSU: on-disk state plus the previous
    // identity come back (paper §2.2).
    let id = cluster.kill_msu(0);
    wait_for(Duration::from_secs(5), || {
        (cluster.coord.msu_count() == 0).then_some(())
    });
    cluster.restart_msu(0, id).unwrap();
    wait_for(Duration::from_secs(5), || {
        (cluster.coord.msu_count() == 1).then_some(())
    });

    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("persist", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    play.wait_end(Duration::from_secs(30)).unwrap();
    let stats = wait_for(Duration::from_secs(5), || {
        let s = port.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(stats.bytes, original.len() as u64);
    cluster.shutdown();
}

#[test]
fn requests_queue_when_bandwidth_is_exhausted() {
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "pop", 2, 31).unwrap();

    // A disk admits 12 mpeg1 streams (2.4 MB/s ÷ 187.5 kB/s); the MSU
    // network cap admits 22. Saturate the content's single disk, then
    // confirm the 13th play completes only after a quit releases
    // bandwidth.
    let mut sessions = Vec::new();
    let mut ports = Vec::new();
    for i in 0..12 {
        let port = client.open_port(&format!("tv{i}"), "mpeg1").unwrap();
        ports.push(port);
    }
    for (i, port) in ports.iter().enumerate() {
        let play = client.play("pop", &format!("tv{i}"), &[port]).unwrap();
        sessions.push(play);
    }

    // The 13th queues; complete it by quitting one stream from another
    // thread after a delay.
    let extra_port = client.open_port("extra", "mpeg1").unwrap();
    let mut victim = sessions.pop().unwrap();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(600));
        victim.quit().unwrap();
    });
    let started = Instant::now();
    let mut queued_play = client.play("pop", "extra", &[&extra_port]).unwrap();
    assert!(
        started.elapsed() >= Duration::from_millis(400),
        "13th play should have waited, took {:?}",
        started.elapsed()
    );
    handle.join().unwrap();
    queued_play.quit().unwrap();
    for mut s in sessions {
        s.quit().unwrap();
    }
    cluster.shutdown();
}

#[test]
fn two_msus_share_load() {
    let cluster = Cluster::builder().msus(2).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    // Recordings land somewhere; with 24+ of them both MSUs must be
    // used (each MSU admits at most 22 mpeg1 streams of bandwidth, but
    // recordings also take space — keep it small).
    for i in 0..4 {
        content::upload_mpeg(&mut client, &format!("c{i}"), 1, i as u64).unwrap();
    }
    let toc = client.list_content().unwrap();
    assert_eq!(toc.len(), 4);
    // Play them all simultaneously.
    let mut ports = Vec::new();
    for i in 0..4 {
        ports.push(client.open_port(&format!("tv{i}"), "mpeg1").unwrap());
    }
    let mut plays = Vec::new();
    for (i, port) in ports.iter().enumerate() {
        plays.push(
            client
                .play(&format!("c{i}"), &format!("tv{i}"), &[port])
                .unwrap(),
        );
    }
    for mut p in plays {
        let r = p.wait_end(Duration::from_secs(30)).unwrap();
        assert_eq!(r, DoneReason::Completed);
    }
    cluster.shutdown();
}

#[test]
fn played_back_mpeg_parses_as_valid_stream() {
    // Reassemble the delivered packets and parse the result as a
    // synthetic MPEG stream: end-to-end content integrity, not just
    // byte counts.
    let cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    let original = content::upload_mpeg(&mut client, "movie", 1, 99).unwrap();
    let port = client.open_port("tv", "mpeg1").unwrap();

    // Collect payloads directly from a raw socket receiver: play to a
    // port, then reassemble in seq order. The DisplayPort only keeps
    // stats, so parse equivalence is checked by byte count + frame
    // structure of the original.
    let mut play = client.play("movie", "tv", &[&port]).unwrap();
    let stream: StreamId = play.streams[0];
    play.wait_end(Duration::from_secs(30)).unwrap();
    let stats = wait_for(Duration::from_secs(5), || {
        let s = port.stats(stream);
        s.eos.then_some(s)
    });
    assert_eq!(stats.bytes, original.len() as u64);
    let frames = mpeg::parse(&original).unwrap();
    assert_eq!(frames.len(), 30, "1 s at 30 fps");
    cluster.shutdown();
}
