//! Model-checking suite for the flight-recorder MPSC ring. Compiled
//! only under `RUSTFLAGS="--cfg calliope_check"` — every atomic in the
//! ring is a `calliope_check` shim, so these tests explore every
//! interleaving (and weak-memory outcome) of concurrent writers and a
//! racing reader, including writers lapping each other on one slot.
//!
//! Run with: `RUSTFLAGS="--cfg calliope_check" cargo test -p calliope-obs --test model_flight`
#![cfg(calliope_check)]

use calliope_check::{model, thread};
use calliope_obs::flight::{FlightCode, FlightRecorder};
use std::sync::Arc;

/// Two concurrent writers into a roomy ring: both events land, with
/// distinct tickets and intact payloads, whatever the interleaving.
#[test]
fn concurrent_writes_both_land() {
    let report = model(|| {
        let rec = Arc::new(FlightRecorder::new(4));
        let r2 = rec.clone();
        let t = thread::spawn(move || r2.record(2, FlightCode::Schedule, 20, 200));
        rec.record(1, FlightCode::Admit, 10, 100);
        t.join().unwrap();
        let events = rec.snapshot();
        assert_eq!(events.len(), 2, "an event was lost");
        assert_ne!(events[0].ticket, events[1].ticket, "tickets must be unique");
        for e in &events {
            match e.trace {
                1 => {
                    assert_eq!(e.code, FlightCode::Admit);
                    assert_eq!((e.arg0, e.arg1), (10, 100), "torn payload");
                }
                2 => {
                    assert_eq!(e.code, FlightCode::Schedule);
                    assert_eq!((e.arg0, e.arg1), (20, 200), "torn payload");
                }
                other => panic!("event from nowhere: trace {other}"),
            }
        }
        assert_eq!(rec.dropped(), 0);
    });
    assert!(report.schedules > 1, "must explore multiple interleavings");
}

/// Two writers lapping each other on a one-slot ring: the snapshot
/// never invents an event — it returns at most one, and any event it
/// does return has the self-consistent payload of exactly one writer.
/// A torn mix of the two writers' words must be discarded.
#[test]
fn lapped_writers_never_surface_torn_events() {
    let report = model(|| {
        let rec = Arc::new(FlightRecorder::new(1));
        let r2 = rec.clone();
        let t = thread::spawn(move || r2.record(2, FlightCode::Schedule, 2, 2));
        rec.record(1, FlightCode::Admit, 1, 1);
        t.join().unwrap();
        // One of the two tickets was overwritten.
        assert_eq!(rec.dropped(), 1);
        let events = rec.snapshot();
        assert!(events.len() <= 1);
        for e in &events {
            assert!(e.trace == 1 || e.trace == 2);
            assert_eq!(e.arg0, e.trace, "torn payload");
            assert_eq!(e.arg1, e.trace, "torn payload");
            let expect = if e.trace == 1 {
                FlightCode::Admit
            } else {
                FlightCode::Schedule
            };
            assert_eq!(e.code, expect, "payload from the wrong ticket");
        }
    });
    assert!(report.schedules > 1);
}

/// A reader racing one writer: the snapshot sees either nothing or the
/// complete event, never a partial write.
#[test]
fn reader_racing_a_writer_sees_all_or_nothing() {
    let report = model(|| {
        let rec = Arc::new(FlightRecorder::new(2));
        let r2 = rec.clone();
        let t = thread::spawn(move || r2.record(7, FlightCode::IoError, 70, 700));
        let events = rec.snapshot();
        assert!(events.len() <= 1);
        if let Some(e) = events.first() {
            assert_eq!(e.trace, 7);
            assert_eq!(e.code, FlightCode::IoError);
            assert_eq!((e.arg0, e.arg1), (70, 700), "partial write surfaced");
        }
        t.join().unwrap();
        assert_eq!(rec.snapshot().len(), 1, "event visible after join");
    });
    assert!(report.schedules > 1);
}
