//! The Coordinator server.
//!
//! Two listeners: one for clients (sessions implementing the §2.1
//! interface) and one for MSUs (registration + scheduling RPCs).
//! "For very small installations, the Coordinator and MSU software may
//! run on the same machine" — both listeners bind loopback-friendly
//! ephemeral ports by default, so tests and examples run everything in
//! one process.

use crate::db::{AdminDb, Component, ContentRecord, ContentStatus, Location};
use crate::rpc::MsuConns;
use crate::sched::Scheduler;
use crate::stats::CoordStats;
use calliope_obs::{FlightCode, FlightRecorder};
use calliope_types::content::{ContentKind, ContentTypeSpec, TypeBody};
use calliope_types::error::{Error, Result};
use calliope_types::ids::IdAllocator;
use calliope_types::wire::messages::{
    ClientRequest, CoordReply, CoordToMsu, DiskStatus, DoneReason, MsuEnvelope, MsuStatus,
    MsuToCoord, PacingSpec, RecordStart, StreamStart, TrickFiles,
};
use calliope_types::wire::stats::{HistBucket, MetricEntry, MetricValue, StatsSnapshot};
use calliope_types::wire::{read_frame, write_frame, Wire};
use calliope_types::{DiskId, GroupId, MsuId, SessionId, SpanKind, StreamId, TraceCtx};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// IP to bind both listeners on.
    pub bind_ip: IpAddr,
    /// Client port (0 = ephemeral).
    pub client_port: u16,
    /// MSU (intra-server) port (0 = ephemeral).
    pub msu_port: u16,
    /// How often the heartbeat monitor pings each MSU. A TCP break
    /// still marks an MSU down instantly; the heartbeat catches the
    /// *wedged* MSU whose connection stays open but which stopped
    /// serving. [`Duration::ZERO`] disables the monitor.
    pub heartbeat_interval: Duration,
    /// Consecutive missed beats before an MSU is declared down.
    pub heartbeat_misses: u32,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            bind_ip: IpAddr::V4(Ipv4Addr::LOCALHOST),
            client_port: 0,
            msu_port: 0,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_misses: 3,
        }
    }
}

/// A display port registered in a session.
#[derive(Clone, Debug)]
enum Port {
    Atomic {
        type_name: String,
        data_addr: SocketAddr,
        ctrl_addr: SocketAddr,
    },
    Composite {
        type_name: String,
        components: Vec<String>,
    },
}

/// Tracks an in-progress recording component.
struct RecordTrack {
    content: String,
    component: usize,
}

/// Everything needed to re-admit a playback stream on a replica after
/// its disk or MSU fails.
#[derive(Clone)]
struct PlayTrack {
    content: String,
    component: usize,
    group: GroupId,
    client_data: SocketAddr,
    client_ctrl: SocketAddr,
    /// Bandwidth reserved for the stream, bytes/s.
    bw: u64,
    trick: Option<TrickFiles>,
    /// The trace minted at admission. A failover re-admission keeps the
    /// id (so one grep follows the stream across MSUs) but switches the
    /// span kind to [`SpanKind::Failover`].
    trace: TraceCtx,
    /// Locations that already failed for this stream; a `None` disk
    /// means the whole MSU. Never retried.
    failed: Vec<(MsuId, Option<DiskId>)>,
}

struct Inner {
    db: Mutex<AdminDb>,
    sched: Scheduler,
    conns: MsuConns,
    stats: CoordStats,
    ids: IdAllocator,
    recordings: Mutex<HashMap<StreamId, RecordTrack>>,
    /// Remaining components per recording content.
    record_remaining: Mutex<HashMap<String, usize>>,
    /// Live playback streams, kept so a failed one can be re-admitted
    /// on a replica (paper §2.2 fault tolerance).
    plays: Mutex<HashMap<StreamId, PlayTrack>>,
    /// Serializes grant retirement between the MSU reaper ([`fail_msu`])
    /// and the `StreamDone` teardown path: a late `StreamDone` must
    /// never release the grant of a stream the reaper already failed
    /// over (that grant belongs to the stream's new home).
    failures: Mutex<()>,
    /// Next trace id. Starts at 1: id 0 is the untraced sentinel.
    trace_ids: AtomicU64,
    /// Latest stats snapshot from each MSU, piggybacked on heartbeat
    /// `Pong`s. `ClusterStats` serves from this cache so it never
    /// blocks a client on an MSU round trip.
    cluster: Mutex<HashMap<MsuId, StatsSnapshot>>,
    /// Always-on flight recorder for the control plane; dumped on
    /// `fail_msu`, stream I/O errors, panics, and `SIGUSR1`.
    flight: Arc<FlightRecorder>,
    stop: AtomicBool,
}

/// Mints a fresh end-to-end trace context.
fn mint_trace(inner: &Inner, kind: SpanKind) -> TraceCtx {
    // relaxed: trace ids only need to be unique; they order nothing.
    TraceCtx::new(inner.trace_ids.fetch_add(1, Ordering::Relaxed), kind)
}

/// A running Coordinator.
pub struct CoordServer {
    inner: Arc<Inner>,
    /// Where clients connect.
    pub client_addr: SocketAddr,
    /// Where MSUs register.
    pub msu_addr: SocketAddr,
    handles: Vec<JoinHandle<()>>,
}

impl CoordServer {
    /// Starts the Coordinator and both listeners.
    pub fn start(cfg: CoordConfig) -> Result<CoordServer> {
        let client_listener = TcpListener::bind((cfg.bind_ip, cfg.client_port))?;
        let msu_listener = TcpListener::bind((cfg.bind_ip, cfg.msu_port))?;
        let client_addr = client_listener.local_addr()?;
        let msu_addr = msu_listener.local_addr()?;

        let stats = CoordStats::new();
        let flight = Arc::new(
            FlightRecorder::from_env()
                .with_dropped_counter(stats.registry.counter("obs.flight_dropped")),
        );
        calliope_obs::flight::register("coord", Arc::clone(&flight));
        let inner = Arc::new(Inner {
            db: Mutex::new(AdminDb::with_builtin_types()),
            sched: Scheduler::new(),
            conns: MsuConns::new(),
            stats,
            ids: IdAllocator::new(),
            recordings: Mutex::new(HashMap::new()),
            record_remaining: Mutex::new(HashMap::new()),
            plays: Mutex::new(HashMap::new()),
            failures: Mutex::new(()),
            trace_ids: AtomicU64::new(1),
            cluster: Mutex::new(HashMap::new()),
            flight,
            stop: AtomicBool::new(false),
        });

        let mut handles = Vec::new();
        {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || accept_msus(inner, msu_listener)));
        }
        {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || {
                accept_clients(inner, client_listener)
            }));
        }
        if cfg.heartbeat_interval > Duration::ZERO {
            let inner = Arc::clone(&inner);
            let (interval, misses) = (cfg.heartbeat_interval, cfg.heartbeat_misses.max(1));
            handles.push(std::thread::spawn(move || {
                heartbeat_loop(&inner, interval, misses)
            }));
        }

        Ok(CoordServer {
            inner,
            client_addr,
            msu_addr,
            handles,
        })
    }

    /// Load statistics (for the §3.3 experiment).
    pub fn stats(&self) -> &CoordStats {
        &self.inner.stats
    }

    /// The control plane's flight recorder (post-mortem assertions and
    /// operator dumps read it through here).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.inner.flight
    }

    /// Number of registered-and-reachable MSUs.
    pub fn msu_count(&self) -> usize {
        self.inner.conns.len()
    }

    /// Number of live resource grants (≈ active streams).
    pub fn active_streams(&self) -> usize {
        self.inner.sched.grant_count()
    }

    /// Stops the listeners (existing sessions drain on their own).
    pub fn shutdown(mut self) {
        calliope_obs::flight::unregister("coord");
        self.inner.stop.store(true, Ordering::Release);
        // Poke the listeners so `accept` returns.
        let _ = TcpStream::connect(self.client_addr);
        let _ = TcpStream::connect(self.msu_addr);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// MSU side
// ---------------------------------------------------------------------

fn accept_msus(inner: Arc<Inner>, listener: TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || msu_connection(inner, stream));
    }
}

fn msu_connection(inner: Arc<Inner>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    // First frame must be Register.
    let env: Option<MsuEnvelope> = match read_frame(&mut stream) {
        Ok(e) => e,
        Err(_) => return,
    };
    let Some(MsuEnvelope {
        body:
            MsuToCoord::Register {
                ctrl_addr,
                disks,
                previous,
            },
        ..
    }) = env
    else {
        return;
    };
    let started = Instant::now();

    // Identity: restore the previous one after a crash, else allocate.
    let msu: MsuId = match previous {
        Some(prev) if inner.sched.msu(prev).is_some() => prev,
        Some(_) | None => inner.ids.next(),
    };
    // Disk ids: reuse the prior assignment when the disk count matches.
    let prior = inner.sched.msu(msu).map(|m| m.disks).unwrap_or_default();
    let disk_ids: Vec<DiskId> = if prior.len() == disks.len() {
        prior
    } else {
        disks.iter().map(|_| inner.ids.next()).collect()
    };
    let reports: Vec<(DiskId, u64, u64, calliope_types::time::ByteRate)> = disk_ids
        .iter()
        .zip(&disks)
        .map(|(id, r)| (*id, r.capacity_bytes, r.free_bytes, r.bandwidth))
        .collect();
    inner.sched.register_msu(msu, ctrl_addr, &reports);

    let conn = match stream.try_clone() {
        Ok(w) => inner.conns.install(msu, w),
        Err(_) => return,
    };
    {
        let mut w = conn.writer.lock();
        if write_frame(
            &mut *w,
            &calliope_types::wire::messages::CoordEnvelope {
                req_id: 0,
                body: CoordToMsu::RegisterAck {
                    msu,
                    disk_ids: disk_ids.clone(),
                },
            },
        )
        .is_err()
        {
            fail_msu(&inner, msu);
            return;
        }
    }
    inner.stats.note_busy(started.elapsed());
    tracing::info!(
        "register: {msu} up with {} disks at {ctrl_addr}",
        disk_ids.len()
    );

    // Read loop.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let env: Option<MsuEnvelope> = match read_frame(&mut stream) {
            Ok(e) => e,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => None,
        };
        let Some(env) = env else {
            // "The Coordinator detects when one of the MSUs fails by a
            // break in the TCP connection." (§2.2)
            tracing::warn!("{msu} connection broke; marked down");
            fail_msu(&inner, msu);
            return;
        };
        inner.stats.note_bytes(env.to_bytes().len() + 4);
        if let Some(unsolicited) = inner.conns.route(msu, env.req_id, env.body) {
            // Handled off this thread: an `IoError` teardown may fail
            // the stream over with an RPC to this very MSU (its other
            // disk holds the replica), and only this reader thread can
            // route that RPC's reply.
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let t = Instant::now();
                handle_msu_notification(&inner, msu, unsolicited);
                inner.stats.note_busy(t.elapsed());
            });
        }
    }
}

/// The single failure path for an MSU: drop its connection (fast-
/// failing in-flight RPCs), reap every grant it held, abandon its
/// recordings, and try to move its playback streams to live replicas.
/// Idempotent — the TCP-break detector and the heartbeat monitor both
/// funnel through here.
fn fail_msu(inner: &Inner, msu: MsuId) {
    inner.conns.remove(msu);
    inner.cluster.lock().remove(&msu);
    let _order = inner.failures.lock();
    let reaped = inner.sched.mark_down(msu);
    inner
        .flight
        .record(0, FlightCode::FailMsu, msu.raw(), reaped.len() as u64);
    if reaped.is_empty() {
        return;
    }
    inner.stats.grants_reaped.add(reaped.len() as u64);
    tracing::warn!("{msu} down: reaped {} grant(s)", reaped.len());
    for (stream, _) in reaped {
        let rec = inner.recordings.lock().remove(&stream);
        if let Some(rec) = rec {
            // A partial recording is unrecoverable garbage: drop the
            // catalog entry so the name can be reused. (The blocks on
            // the dead MSU are reclaimed when it reformats or the
            // content name is re-recorded over them.)
            inner.record_remaining.lock().remove(&rec.content);
            let _ = inner.db.lock().remove_content(&rec.content);
            tracing::warn!("recording {:?} lost with {msu}", rec.content);
        } else if !fail_over(inner, stream, msu, None) {
            tracing::warn!("{stream} lost with {msu}");
        }
    }
    // The post-mortem: everything above (admissions, schedules, the
    // FailMsu event, any Failover re-admissions) in one dump, with no
    // logging configured.
    inner.flight.dump("coord", "fail_msu");
}

/// Pings every connected MSU once per `interval`; `max_misses`
/// consecutive unanswered probes fail the MSU. This is the detector for
/// *wedged* MSUs — process alive, TCP connection open, control loop
/// stuck — which the §2.2 TCP-break detector cannot see.
fn heartbeat_loop(inner: &Arc<Inner>, interval: Duration, max_misses: u32) {
    let mut misses: HashMap<MsuId, u32> = HashMap::new();
    loop {
        // Sleep one interval in small slices so shutdown stays prompt.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            let slice = Duration::from_millis(20).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        for msu in inner.conns.ids() {
            if inner.stop.load(Ordering::Acquire) {
                return;
            }
            match inner
                .conns
                .rpc_with_timeout(msu, CoordToMsu::Ping, interval)
            {
                Ok(reply) => {
                    misses.remove(&msu);
                    // An MSU piggybacks its stats snapshot on the Pong;
                    // fold it into the cluster view so `ClusterStats`
                    // answers without another round trip.
                    if let MsuToCoord::Pong {
                        snapshot: Some(snapshot),
                    } = reply
                    {
                        inner.stats.snapshots_merged.inc();
                        inner.flight.record(
                            0,
                            FlightCode::SnapshotMerged,
                            msu.raw(),
                            snapshot.metrics.len() as u64,
                        );
                        inner.cluster.lock().insert(msu, snapshot);
                    }
                }
                Err(_) => {
                    inner.stats.heartbeat_misses.inc();
                    let m = misses.entry(msu).or_insert(0);
                    *m += 1;
                    inner
                        .flight
                        .record(0, FlightCode::HeartbeatMiss, msu.raw(), *m as u64);
                    tracing::warn!("heartbeat: {msu} missed beat {m} of {max_misses}");
                    if *m >= max_misses {
                        misses.remove(&msu);
                        fail_msu(inner, msu);
                    }
                }
            }
        }
    }
}

/// Re-admits a playback stream on a live replica after its disk or MSU
/// failed (`failed_disk` of `None` condemns every disk of `failed_msu`).
/// The stream and group ids are reused, so the replacement MSU dials
/// the same client control listener and the client resumes on the new
/// connection; playback restarts from the beginning of the title (the
/// control protocol carries no resume offset). Returns true if a
/// replica took the stream over.
fn fail_over(
    inner: &Inner,
    stream: StreamId,
    failed_msu: MsuId,
    failed_disk: Option<DiskId>,
) -> bool {
    let track = {
        let mut plays = inner.plays.lock();
        let Some(t) = plays.get_mut(&stream) else {
            return false;
        };
        t.failed.push((failed_msu, failed_disk));
        t.clone()
    };
    let gone = |why: &str| {
        tracing::warn!("failover: {stream} ({:?}) abandoned: {why}", track.content);
        inner.plays.lock().remove(&stream);
        false
    };
    // Replicas still believed healthy.
    let (locations, spec) = {
        let db = inner.db.lock();
        let Ok(rec) = db.content(&track.content) else {
            return gone("content deleted");
        };
        let Some(comp) = rec.components.get(track.component) else {
            return gone("component vanished from the catalog");
        };
        let Ok(spec) = db.content_type(&comp.type_name) else {
            return gone("content type vanished");
        };
        (comp.locations.clone(), spec.clone())
    };
    let is_failed = |l: &Location| {
        track
            .failed
            .iter()
            .any(|(m, d)| *m == l.msu && d.is_none_or(|d| d == l.disk))
    };
    let live: Vec<Location> = locations.into_iter().filter(|l| !is_failed(l)).collect();
    if live.is_empty() {
        return gone("no live replica");
    }
    let (Ok(protocol), Ok(pacing)) = (spec.protocol(), pacing_of(&spec)) else {
        return gone("unusable type spec");
    };
    let wants: Vec<crate::sched::PlayWant> = vec![(
        stream,
        live.iter().map(|l| (l.msu, l.disk)).collect(),
        track.bw,
    )];
    // No queueing here: a failing stream either moves now or ends.
    let picks = match inner.sched.admit_play(&wants) {
        Ok(p) => p,
        Err(e) => return gone(&format!("no replica admitted ({e})")),
    };
    let (_, msu, disk) = picks[0];
    let loc = live
        .iter()
        .find(|l| l.msu == msu && l.disk == disk)
        .expect("pick came from the live-replica list");
    // Same trace id as the original admission — one grep follows the
    // stream from its first Play through the failure to the replica —
    // but the span kind flips so the re-admission is distinguishable.
    let trace = track.trace.into_failover();
    let result = inner.conns.rpc(
        msu,
        CoordToMsu::ScheduleRead {
            stream,
            group: track.group,
            // A fresh group entry on the new MSU must release without
            // waiting for siblings that are not moving with us; if the
            // old group entry survived (same-MSU disk failover), the
            // size is ignored.
            group_size: 1,
            disk,
            file: loc.file.clone(),
            protocol,
            pacing,
            client_data: track.client_data,
            client_ctrl: track.client_ctrl,
            trick: track.trick.clone(),
            trace,
        },
    );
    match result {
        Ok(MsuToCoord::ReadScheduled { error: None }) => {
            inner.stats.failovers.inc();
            inner.stats.note_stream_started();
            inner
                .flight
                .record(trace.id, FlightCode::Failover, stream.raw(), disk.raw());
            tracing::info!(
                "failover: {stream} ({:?}) resumed on {msu} disk {disk} [{trace}]",
                track.content
            );
            true
        }
        _ => {
            inner.sched.release(stream, 0);
            gone("replacement MSU refused the stream")
        }
    }
}

/// Handles an unsolicited message `from` one MSU's reader thread
/// (dispatched off that thread — see `msu_connection`).
fn handle_msu_notification(inner: &Inner, from: MsuId, msg: MsuToCoord) {
    let MsuToCoord::StreamDone {
        stream,
        reason,
        bytes,
        duration_us,
        trace,
    } = msg
    else {
        return;
    };
    let reason_tag = match &reason {
        DoneReason::Completed => 0,
        DoneReason::ClientQuit => 1,
        DoneReason::Cancelled => 2,
        DoneReason::MsuShutdown => 3,
        DoneReason::Error(_) => 4,
        DoneReason::IoError(_) => 5,
    };
    inner
        .flight
        .record(trace.id, FlightCode::StreamDone, stream.raw(), reason_tag);
    tracing::info!(
        "teardown: {stream} done ({reason:?}, {bytes} bytes, {duration_us} µs) [{trace}]"
    );
    // Recording? Finalize the catalog entry.
    let track = inner.recordings.lock().remove(&stream);
    if let Some(track) = track {
        inner.stats.note_stream_done();
        let mut db = inner.db.lock();
        if let Ok(rec) = db.content_mut(&track.content) {
            if let Some(c) = rec.components.get_mut(track.component) {
                c.bytes = bytes;
                c.duration_us = duration_us;
            }
        }
        drop(db);
        let mut remaining = inner.record_remaining.lock();
        if let Some(n) = remaining.get_mut(&track.content) {
            *n -= 1;
            if *n == 0 {
                remaining.remove(&track.content);
                if let Ok(rec) = inner.db.lock().content_mut(&track.content) {
                    rec.status = ContentStatus::Ready;
                }
            }
        }
        inner.sched.release(stream, bytes);
        return;
    }
    // Playback teardown, serialized against the MSU reaper.
    let _order = inner.failures.lock();
    let Some(res) = inner.sched.reservation_of(stream) else {
        // Already reaped by `fail_msu` (this report raced the reaper or
        // arrived from a wedged MSU after the heartbeat gave up on it).
        // The reaper owns the stream's fate — releasing here could take
        // down the grant of a successful failover.
        return;
    };
    if res.msu != from {
        // Stale report: this MSU lost the stream (the reaper already
        // moved it to a replica on another MSU while this notification
        // waited its turn). The grant belongs to the replacement now.
        tracing::debug!("{stream}: stale StreamDone from {from}; now on {}", res.msu);
        return;
    }
    inner.stats.note_stream_done();
    inner.sched.release(stream, 0);
    if let DoneReason::IoError(msg) = &reason {
        // The disk under the stream died. The grant is released; try a
        // replica before surfacing the error to the client.
        inner
            .flight
            .record(trace.id, FlightCode::IoError, stream.raw(), res.disk.raw());
        tracing::warn!("{stream} failed on {} disk {} ({msg})", res.msu, res.disk);
        let moved = fail_over(inner, stream, res.msu, Some(res.disk));
        // Dump after the failover attempt so the post-mortem includes
        // the Failover event (or its absence — the replicas ran out).
        inner.flight.dump("coord", "stream io error");
        if moved {
            return;
        }
    }
    inner.plays.lock().remove(&stream);
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

fn accept_clients(inner: Arc<Inner>, listener: TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || client_session(inner, stream));
    }
}

struct Session {
    id: SessionId,
    client_name: String,
    admin: bool,
    ports: HashMap<String, Port>,
}

fn client_session(inner: Arc<Inner>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut session: Option<Session> = None;
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let req: Option<ClientRequest> = match read_frame(&mut stream) {
            Ok(r) => r,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => None,
        };
        let Some(req) = req else {
            // Session drop: "when this session is dropped, the
            // Coordinator deallocates its local representation of the
            // ports" — ports die with `session`.
            return;
        };
        inner.stats.note_bytes(req.to_bytes().len() + 4);
        if matches!(req, ClientRequest::Bye) {
            let _ = write_frame(&mut stream, &CoordReply::Ok);
            return;
        }
        let t = Instant::now();
        let mut waits = Duration::ZERO;
        let reply = dispatch(&inner, &mut session, &mut stream, req, &mut waits);
        // Waiting on MSU RPCs or in the admission queue is not CPU.
        inner.stats.note_request(t.elapsed().saturating_sub(waits));
        inner.stats.note_bytes(reply.to_bytes().len() + 4);
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn err_reply(e: Error) -> CoordReply {
    CoordReply::Error {
        code: e.wire_code(),
        msg: e.to_string(),
    }
}

fn dispatch(
    inner: &Arc<Inner>,
    session: &mut Option<Session>,
    stream: &mut TcpStream,
    req: ClientRequest,
    waits: &mut Duration,
) -> CoordReply {
    // Hello establishes the session; everything else requires one.
    if let ClientRequest::Hello { client_name, admin } = &req {
        let id: SessionId = inner.ids.next();
        inner.db.lock().touch_customer(client_name, *admin);
        tracing::info!("hello: {id} opened for client {client_name:?} (admin={admin})");
        *session = Some(Session {
            id,
            client_name: client_name.clone(),
            admin: *admin,
            ports: HashMap::new(),
        });
        return CoordReply::Welcome { session: id };
    }
    let Some(sess) = session.as_mut() else {
        return err_reply(Error::SessionClosed);
    };
    match handle_request(inner, sess, stream, req, waits) {
        Ok(reply) => reply,
        Err(e) => err_reply(e),
    }
}

/// Runs an MSU RPC, charging the time to `waits` (the Coordinator's CPU
/// is idle while the MSU works).
fn timed_rpc(
    inner: &Inner,
    waits: &mut Duration,
    msu: MsuId,
    body: CoordToMsu,
) -> Result<MsuToCoord> {
    let t = Instant::now();
    let r = inner.conns.rpc(msu, body);
    *waits += t.elapsed();
    r
}

fn handle_request(
    inner: &Arc<Inner>,
    sess: &mut Session,
    stream: &mut TcpStream,
    req: ClientRequest,
    waits: &mut Duration,
) -> Result<CoordReply> {
    match req {
        ClientRequest::Hello { .. } | ClientRequest::Bye => unreachable!("handled by caller"),
        ClientRequest::ListContent => Ok(CoordReply::ContentList {
            entries: inner.db.lock().toc(),
        }),
        ClientRequest::ListTypes => Ok(CoordReply::TypeList {
            types: inner.db.lock().types(),
        }),
        ClientRequest::RegisterPort {
            name,
            type_name,
            data_addr,
            ctrl_addr,
        } => {
            let db = inner.db.lock();
            let spec = db.content_type(&type_name)?;
            if spec.is_composite() {
                return Err(Error::Protocol {
                    msg: format!("port {name:?} must use an atomic type"),
                });
            }
            drop(db);
            if sess.ports.contains_key(&name) {
                return Err(Error::AlreadyExists { kind: "port", name });
            }
            sess.ports.insert(
                name,
                Port::Atomic {
                    type_name,
                    data_addr,
                    ctrl_addr,
                },
            );
            Ok(CoordReply::Ok)
        }
        ClientRequest::RegisterCompositePort {
            name,
            type_name,
            components,
        } => {
            let db = inner.db.lock();
            let spec = db.content_type(&type_name)?.clone();
            let TypeBody::Composite {
                components: expect_types,
            } = &spec.body
            else {
                return Err(Error::Protocol {
                    msg: format!("{type_name:?} is not composite"),
                });
            };
            if expect_types.len() != components.len() {
                return Err(Error::Protocol {
                    msg: format!(
                        "{type_name:?} has {} components, {} given",
                        expect_types.len(),
                        components.len()
                    ),
                });
            }
            drop(db);
            // Each named port must exist, be atomic, and match the
            // composite's component type in order (§2.1).
            for (port_name, expect) in components.iter().zip(expect_types) {
                match sess.ports.get(port_name) {
                    Some(Port::Atomic { type_name, .. }) if type_name == expect => {}
                    Some(Port::Atomic { type_name, .. }) => {
                        return Err(Error::TypeMismatch {
                            content_type: expect.clone(),
                            port_type: type_name.clone(),
                        })
                    }
                    Some(Port::Composite { .. }) => {
                        return Err(Error::Protocol {
                            msg: format!("component port {port_name:?} is itself composite"),
                        })
                    }
                    None => {
                        return Err(Error::NoSuchPort {
                            name: port_name.clone(),
                        })
                    }
                }
            }
            if sess.ports.contains_key(&name) {
                return Err(Error::AlreadyExists { kind: "port", name });
            }
            sess.ports.insert(
                name,
                Port::Composite {
                    type_name,
                    components,
                },
            );
            Ok(CoordReply::Ok)
        }
        ClientRequest::UnregisterPort { name } => {
            sess.ports.remove(&name).ok_or(Error::NoSuchPort { name })?;
            Ok(CoordReply::Ok)
        }
        ClientRequest::Play { content, port } => {
            handle_play(inner, sess, stream, content, port, waits)
        }
        ClientRequest::Record {
            content,
            port,
            type_name,
            est_secs,
        } => handle_record(
            inner, sess, stream, content, port, type_name, est_secs, waits,
        ),
        ClientRequest::Delete { content } => {
            if !sess.admin {
                return Err(Error::PermissionDenied { op: "delete" });
            }
            let rec = inner.db.lock().remove_content(&content)?;
            for comp in &rec.components {
                for loc in &comp.locations {
                    // Best effort: a down MSU keeps the blocks until it
                    // returns; the catalog entry is gone regardless.
                    let _ = timed_rpc(
                        inner,
                        waits,
                        loc.msu,
                        CoordToMsu::DeleteFile {
                            disk: loc.disk,
                            file: loc.file.clone(),
                        },
                    );
                    inner.sched.return_space(loc.disk, comp.bytes);
                }
            }
            Ok(CoordReply::Ok)
        }
        ClientRequest::AddType { spec } => {
            if !sess.admin {
                return Err(Error::PermissionDenied { op: "add-type" });
            }
            inner.db.lock().add_type(spec)?;
            Ok(CoordReply::Ok)
        }
        ClientRequest::ServerStatus => {
            let msus = inner
                .sched
                .snapshot()
                .into_iter()
                .map(|(id, m, disks)| MsuStatus {
                    msu: id,
                    available: m.available,
                    net_used: m.net_used,
                    net_capacity: m.net_capacity,
                    disks: disks
                        .into_iter()
                        .map(|(d, ds)| DiskStatus {
                            disk: d,
                            free_bytes: ds.free_bytes,
                            capacity_bytes: ds.capacity,
                            bw_used: ds.bw_used,
                            bw_capacity: ds.bw_capacity,
                        })
                        .collect(),
                })
                .collect();
            Ok(CoordReply::Status {
                msus,
                active_streams: inner.sched.grant_count() as u32,
            })
        }
        ClientRequest::Replicate { content } => {
            if !sess.admin {
                return Err(Error::PermissionDenied { op: "replicate" });
            }
            handle_replicate(inner, &content, waits)
        }
        ClientRequest::Stats { msu } => {
            let mut snapshots = Vec::new();
            match msu {
                Some(id) => match timed_rpc(inner, waits, id, CoordToMsu::GetStats)? {
                    MsuToCoord::Stats { snapshot } => snapshots.push(snapshot),
                    other => return Err(Error::internal(format!("unexpected reply {other:?}"))),
                },
                None => {
                    snapshots.push(inner.stats.snapshot("coordinator"));
                    for (id, m, _) in inner.sched.snapshot() {
                        if !m.available {
                            continue;
                        }
                        // A down or slow MSU drops out of the report
                        // rather than failing the whole request.
                        if let Ok(MsuToCoord::Stats { snapshot }) =
                            timed_rpc(inner, waits, id, CoordToMsu::GetStats)
                        {
                            snapshots.push(snapshot);
                        }
                    }
                }
            }
            Ok(CoordReply::Stats { snapshots })
        }
        ClientRequest::ClusterStats => {
            // Served entirely from the heartbeat-fed cache: a client
            // polling `top --watch` never adds MSU round trips, and a
            // wedged MSU cannot stall the report (its last snapshot
            // simply goes stale until the reaper drops it).
            let mut msus: Vec<StatsSnapshot> = inner.cluster.lock().values().cloned().collect();
            msus.sort_by(|a, b| a.source.cmp(&b.source));
            Ok(CoordReply::ClusterStats {
                cluster: merge_snapshots(&msus),
                msus,
            })
        }
        ClientRequest::AttachTrick { content, files } => {
            if !sess.admin {
                return Err(Error::PermissionDenied { op: "attach-trick" });
            }
            let mut db = inner.db.lock();
            // Both filtered versions must be recorded content with a
            // single raw component.
            let ff = db.content(&files.fast_forward)?;
            let fb = db.content(&files.fast_backward)?;
            for t in [ff, fb] {
                if t.components.len() != 1 {
                    return Err(Error::Protocol {
                        msg: "trick files must be atomic content".into(),
                    });
                }
            }
            let ff_file = ff.components[0].locations[0].file.clone();
            let fb_file = fb.components[0].locations[0].file.clone();
            let rec = db.content_mut(&content)?;
            rec.trick = Some(TrickFiles {
                fast_forward: ff_file,
                fast_backward: fb_file,
            });
            Ok(CoordReply::Ok)
        }
    }
}

/// Folds per-MSU snapshots into one cluster-total snapshot tagged
/// `source == "cluster"`: counters sum, histograms merge bucket-wise
/// (so quantiles of the merged histogram reflect every MSU's samples),
/// and gauges sum both value and high-water mark — the sum of marks is
/// an upper bound on the cluster's true simultaneous high water, which
/// per-MSU sampling cannot reconstruct exactly. Uptime is the maximum,
/// the age of the longest-running MSU.
fn merge_snapshots(snaps: &[StatsSnapshot]) -> StatsSnapshot {
    use std::collections::btree_map::Entry;
    let mut merged: std::collections::BTreeMap<String, MetricValue> =
        std::collections::BTreeMap::new();
    let mut uptime_us = 0;
    for snap in snaps {
        uptime_us = uptime_us.max(snap.uptime_us);
        for m in &snap.metrics {
            match merged.entry(m.name.clone()) {
                Entry::Vacant(v) => {
                    v.insert(m.value.clone());
                }
                Entry::Occupied(mut o) => merge_value(o.get_mut(), &m.value),
            }
        }
    }
    StatsSnapshot {
        source: "cluster".into(),
        uptime_us,
        metrics: merged
            .into_iter()
            .map(|(name, value)| MetricEntry { name, value })
            .collect(),
    }
}

/// Accumulates one metric value into the cluster total. Mismatched
/// kinds under one name keep the first value seen.
fn merge_value(into: &mut MetricValue, from: &MetricValue) {
    match (into, from) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
        (
            MetricValue::Gauge { value, high_water },
            MetricValue::Gauge {
                value: v,
                high_water: h,
            },
        ) => {
            *value += v;
            *high_water += h;
        }
        (
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            },
            MetricValue::Histogram {
                buckets: b2,
                count: c2,
                sum: s2,
            },
        ) => {
            *count += c2;
            *sum += s2;
            if buckets.len() == b2.len() && buckets.iter().zip(b2).all(|(x, y)| x.le == y.le) {
                for (x, y) in buckets.iter_mut().zip(b2) {
                    x.count += y.count;
                }
            } else {
                // Mixed bucket layouts (components of different
                // versions): merge on the union of bounds. Both series
                // are cumulative step functions, so the merged count at
                // a bound is the sum of each series' value at or below
                // that bound.
                let mut bounds: Vec<u64> = buckets
                    .iter()
                    .map(|b| b.le)
                    .chain(b2.iter().map(|b| b.le))
                    .collect();
                bounds.sort_unstable();
                bounds.dedup();
                let at = |bs: &[HistBucket], le: u64| {
                    bs.iter().rev().find(|b| b.le <= le).map_or(0, |b| b.count)
                };
                let unioned: Vec<HistBucket> = bounds
                    .into_iter()
                    .map(|le| HistBucket {
                        le,
                        count: at(buckets, le) + at(b2, le),
                    })
                    .collect();
                *buckets = unioned;
            }
        }
        _ => {}
    }
}

/// Replicates every component of a content item onto another disk of
/// its MSU — "we can make copies of popular content on several disks"
/// (paper §2.3.3). Play admission can then use either replica, doubling
/// the title's bandwidth ceiling at the cost of disk space.
fn handle_replicate(inner: &Arc<Inner>, content: &str, waits: &mut Duration) -> Result<CoordReply> {
    let rec = inner.db.lock().content(content)?.clone();
    if rec.status != ContentStatus::Ready {
        return Err(Error::NoSuchContent {
            name: content.to_owned(),
        });
    }
    let mut new_locations: Vec<(usize, Location)> = Vec::new();
    for (ci, comp) in rec.components.iter().enumerate() {
        let src = comp
            .locations
            .first()
            .ok_or_else(|| Error::internal("component without a location"))?;
        let msu_state = inner
            .sched
            .msu(src.msu)
            .ok_or(Error::MsuUnavailable { msu: src.msu })?;
        // Pick a different disk on the same MSU with room for the copy,
        // not already holding a replica.
        let taken: Vec<DiskId> = comp.locations.iter().map(|l| l.disk).collect();
        let dst = msu_state
            .disks
            .iter()
            .copied()
            .find(|d| {
                !taken.contains(d)
                    && inner
                        .sched
                        .disk(*d)
                        .is_some_and(|ds| ds.free_bytes >= comp.bytes)
            })
            .ok_or(Error::ResourcesExhausted {
                what: format!("no spare disk on {} for a replica", src.msu),
            })?;
        let reply = timed_rpc(
            inner,
            waits,
            src.msu,
            CoordToMsu::CopyFile {
                src_disk: src.disk,
                dst_disk: dst,
                file: src.file.clone(),
            },
        )?;
        match reply {
            MsuToCoord::FileCopied { error: None } => {}
            MsuToCoord::FileCopied { error: Some(e) } => return Err(Error::Protocol { msg: e }),
            other => return Err(Error::internal(format!("unexpected reply {other:?}"))),
        }
        inner.sched.consume_space(dst, comp.bytes);
        new_locations.push((
            ci,
            Location {
                msu: src.msu,
                disk: dst,
                file: src.file.clone(),
            },
        ));
    }
    let mut db = inner.db.lock();
    let rec = db.content_mut(content)?;
    for (ci, loc) in new_locations {
        rec.components[ci].locations.push(loc);
    }
    Ok(CoordReply::Ok)
}

/// A resolved atomic component of a display port: its type name, data
/// address, and control address.
type PortAtom = (String, SocketAddr, SocketAddr);

/// Resolves a port into its atomic parts: `(type, data, ctrl)` per
/// component stream.
fn resolve_port(sess: &Session, port: &str) -> Result<(String, Vec<PortAtom>)> {
    match sess.ports.get(port) {
        None => Err(Error::NoSuchPort {
            name: port.to_owned(),
        }),
        Some(Port::Atomic {
            type_name,
            data_addr,
            ctrl_addr,
        }) => Ok((
            type_name.clone(),
            vec![(type_name.clone(), *data_addr, *ctrl_addr)],
        )),
        Some(Port::Composite {
            type_name,
            components,
        }) => {
            let mut out = Vec::new();
            for c in components {
                let Some(Port::Atomic {
                    type_name: t,
                    data_addr,
                    ctrl_addr,
                }) = sess.ports.get(c)
                else {
                    return Err(Error::NoSuchPort { name: c.clone() });
                };
                out.push((t.clone(), *data_addr, *ctrl_addr));
            }
            Ok((type_name.clone(), out))
        }
    }
}

/// Bandwidth (bytes/s) to reserve for one atomic type.
fn bandwidth_of(spec: &ContentTypeSpec) -> Result<u64> {
    Ok(spec.bandwidth()?.as_byte_rate().bytes_per_sec())
}

/// The pacing spec the MSU should use for one atomic type.
fn pacing_of(spec: &ContentTypeSpec) -> Result<PacingSpec> {
    match &spec.body {
        TypeBody::Atomic {
            kind: ContentKind::Constant { rate },
            ..
        } => Ok(PacingSpec::Constant {
            rate: *rate,
            packet_bytes: 4096,
        }),
        TypeBody::Atomic {
            kind: ContentKind::Variable { .. },
            ..
        } => Ok(PacingSpec::Stored),
        TypeBody::Composite { .. } => Err(Error::CompositeHasNoRate {
            type_name: spec.name.clone(),
        }),
    }
}

/// True if the session's peer has closed its connection. Clients are
/// strictly request/reply, so pending inbound bytes also mean the
/// session is out of sync and should end.
fn peer_closed(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    stream.set_nonblocking(true).ok();
    let closed = !matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    stream.set_nonblocking(false).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    closed
}

/// Admission with queueing: retries until granted, sending one interim
/// `Queued` to the client while waiting (§2.2: "the Coordinator queues
/// the request until an MSU with the necessary resources becomes
/// available"). A queued request whose client disconnects is abandoned
/// so the session thread does not wait forever.
fn admit_with_queue<T>(
    inner: &Inner,
    stream: &mut TcpStream,
    waits: &mut Duration,
    mut admit: impl FnMut() -> Result<T>,
) -> Result<T> {
    let arrived = Instant::now();
    let mut queued_sent = false;
    loop {
        match admit() {
            Ok(v) => {
                let waited = arrived.elapsed();
                inner.stats.admissions.inc();
                inner.stats.queue_wait_us.record(waited.as_micros() as u64);
                if queued_sent {
                    tracing::info!("admit: granted after queueing {waited:?}");
                }
                return Ok(v);
            }
            Err(Error::ResourcesExhausted { .. }) if !inner.stop.load(Ordering::Acquire) => {
                if !queued_sent {
                    queued_sent = true;
                    tracing::info!("admit: resources exhausted, request queued");
                    write_frame(stream, &CoordReply::Queued)?;
                }
                if peer_closed(stream) {
                    return Err(Error::SessionClosed);
                }
                let gen = inner.sched.generation();
                let t = Instant::now();
                inner.sched.wait_for_change(gen, Duration::from_millis(500));
                *waits += t.elapsed();
            }
            Err(e) => {
                inner.stats.rejections.inc();
                tracing::info!("admit: rejected ({e})");
                return Err(e);
            }
        }
    }
}

fn handle_play(
    inner: &Arc<Inner>,
    sess: &mut Session,
    stream: &mut TcpStream,
    content_name: String,
    port_name: String,
    waits: &mut Duration,
) -> Result<CoordReply> {
    let (port_type, atoms) = resolve_port(sess, &port_name)?;
    // Load everything we need from the catalog up front.
    let (components, specs, trick, content_type) = {
        let db = inner.db.lock();
        let rec = db.content(&content_name)?;
        if rec.status != ContentStatus::Ready {
            return Err(Error::NoSuchContent { name: content_name });
        }
        if rec.type_name != port_type {
            return Err(Error::TypeMismatch {
                content_type: rec.type_name.clone(),
                port_type,
            });
        }
        let specs: Vec<ContentTypeSpec> = rec
            .components
            .iter()
            .map(|c| db.content_type(&c.type_name).cloned())
            .collect::<Result<_>>()?;
        (
            rec.components.clone(),
            specs,
            rec.trick.clone(),
            rec.type_name.clone(),
        )
    };
    if components.len() != atoms.len() {
        return Err(Error::Protocol {
            msg: format!(
                "content {content_name:?} ({content_type}) has {} components, port {port_name:?} offers {}",
                components.len(),
                atoms.len()
            ),
        });
    }

    // Allocate ids and build the admission request. The trace minted
    // here rides every wire message the stream's life touches.
    let group: GroupId = inner.ids.next();
    let trace = mint_trace(inner, SpanKind::Play);
    let streams: Vec<StreamId> = components.iter().map(|_| inner.ids.next()).collect();
    let wants: Vec<crate::sched::PlayWant> = components
        .iter()
        .zip(&streams)
        .zip(&specs)
        .map(|((c, s), spec)| {
            let locs = c.locations.iter().map(|l| (l.msu, l.disk)).collect();
            Ok((*s, locs, bandwidth_of(spec)?))
        })
        .collect::<Result<_>>()?;

    let picks = admit_with_queue(inner, stream, waits, || inner.sched.admit_play(&wants))?;
    inner
        .flight
        .record(trace.id, FlightCode::Admit, group.raw(), picks.len() as u64);
    // The whole group shares one control connection: the first
    // component port's control listener.
    let group_ctrl = atoms[0].2;

    // Schedule each component on its MSU; roll back everything on any
    // failure.
    let mut scheduled: Vec<StreamStart> = Vec::new();
    let mut tracks: Vec<(StreamId, PlayTrack)> = Vec::new();
    for (i, (stream_id, msu, disk)) in picks.iter().enumerate() {
        let comp = &components[i];
        let loc = comp
            .locations
            .iter()
            .find(|l| l.msu == *msu && l.disk == *disk)
            .ok_or_else(|| Error::internal("admitted replica vanished"))?;
        let pacing = pacing_of(&specs[i])?;
        let send_trick = if components.len() == 1 {
            trick.clone()
        } else {
            None
        };
        let result = timed_rpc(
            inner,
            waits,
            *msu,
            CoordToMsu::ScheduleRead {
                stream: *stream_id,
                group,
                group_size: picks.len() as u32,
                disk: *disk,
                file: loc.file.clone(),
                protocol: specs[i].protocol()?,
                pacing,
                client_data: atoms[i].1,
                client_ctrl: group_ctrl,
                trick: send_trick.clone(),
                trace,
            },
        );
        let err = match result {
            Ok(MsuToCoord::ReadScheduled { error: None }) => None,
            Ok(MsuToCoord::ReadScheduled { error: Some(e) }) => Some(Error::Protocol { msg: e }),
            Ok(other) => Some(Error::internal(format!("unexpected reply {other:?}"))),
            Err(e) => Some(e),
        };
        if let Some(e) = err {
            for s in &streams {
                inner.sched.release(*s, 0);
            }
            for done in &scheduled {
                let _ = inner.conns.notify(
                    *msu,
                    CoordToMsu::Cancel {
                        stream: done.stream,
                    },
                );
            }
            return Err(e);
        }
        inner.stats.note_stream_started();
        inner
            .flight
            .record(trace.id, FlightCode::Schedule, stream_id.raw(), disk.raw());
        tracks.push((
            *stream_id,
            PlayTrack {
                content: content_name.clone(),
                component: i,
                group,
                client_data: atoms[i].1,
                client_ctrl: group_ctrl,
                bw: wants[i].2,
                trick: send_trick,
                trace,
                failed: Vec::new(),
            },
        ));
        scheduled.push(StreamStart {
            stream: *stream_id,
            port_name: port_name.clone(),
            msu: *msu,
            trace,
        });
    }
    // Only fully scheduled groups become failover candidates.
    inner.plays.lock().extend(tracks);
    let _ = sess.id; // sessions own ports; streams outlive the check
    tracing::info!(
        "play: {content_name:?} admitted as {group} ({} streams) [{trace}]",
        scheduled.len()
    );
    Ok(CoordReply::PlayStarted {
        group,
        streams: scheduled,
    })
}

#[allow(clippy::too_many_arguments)]
fn handle_record(
    inner: &Arc<Inner>,
    sess: &mut Session,
    stream: &mut TcpStream,
    content_name: String,
    port_name: String,
    type_name: String,
    est_secs: u32,
    waits: &mut Duration,
) -> Result<CoordReply> {
    let (port_type, atoms) = resolve_port(sess, &port_name)?;
    if port_type != type_name {
        return Err(Error::TypeMismatch {
            content_type: type_name,
            port_type,
        });
    }
    let specs = inner.db.lock().atomic_components(&type_name)?;
    if inner.db.lock().content(&content_name).is_ok() {
        return Err(Error::AlreadyExists {
            kind: "content",
            name: content_name,
        });
    }
    if specs.len() != atoms.len() {
        return Err(Error::Protocol {
            msg: "port does not match the type's component count".into(),
        });
    }

    let group: GroupId = inner.ids.next();
    let trace = mint_trace(inner, SpanKind::Record);
    let streams: Vec<StreamId> = specs.iter().map(|_| inner.ids.next()).collect();
    let wants: Vec<(StreamId, u64, u64)> = specs
        .iter()
        .zip(&streams)
        .map(|(spec, s)| {
            let bw = bandwidth_of(spec)?;
            let space = spec.storage_rate()?.bytes_for_secs(est_secs as u64);
            Ok((*s, bw, space))
        })
        .collect::<Result<_>>()?;

    let picks = admit_with_queue(inner, stream, waits, || inner.sched.admit_record(&wants))?;
    inner
        .flight
        .record(trace.id, FlightCode::Admit, group.raw(), picks.len() as u64);
    let group_ctrl = atoms[0].2;

    let mut starts: Vec<RecordStart> = Vec::new();
    let mut components: Vec<Component> = Vec::new();
    for (i, (stream_id, msu, disk)) in picks.iter().enumerate() {
        let spec = &specs[i];
        let file = if specs.len() == 1 {
            content_name.clone()
        } else {
            format!("{content_name}.{}", spec.name)
        };
        let cbr_rate = match &spec.body {
            TypeBody::Atomic {
                kind: ContentKind::Constant { rate },
                ..
            } => Some(*rate),
            _ => None,
        };
        let result = timed_rpc(
            inner,
            waits,
            *msu,
            CoordToMsu::ScheduleWrite {
                stream: *stream_id,
                group,
                group_size: picks.len() as u32,
                disk: *disk,
                file: file.clone(),
                protocol: spec.protocol()?,
                est_bytes: wants[i].2,
                stores_schedule: spec.stores_schedule(),
                cbr_rate,
                client_ctrl: group_ctrl,
                trace,
            },
        );
        let (sink, err) = match result {
            Ok(MsuToCoord::WriteScheduled {
                udp_sink: Some(sink),
                error: None,
            }) => (Some(sink), None),
            Ok(MsuToCoord::WriteScheduled { error: Some(e), .. }) => {
                (None, Some(Error::Protocol { msg: e }))
            }
            Ok(other) => (
                None,
                Some(Error::internal(format!("unexpected reply {other:?}"))),
            ),
            Err(e) => (None, Some(e)),
        };
        if let Some(e) = err {
            for s in &streams {
                inner.sched.release(*s, 0);
                inner.recordings.lock().remove(s);
            }
            for done in &starts {
                let _ = inner.conns.notify(
                    *msu,
                    CoordToMsu::Cancel {
                        stream: done.stream,
                    },
                );
            }
            return Err(e);
        }
        inner.stats.note_stream_started();
        inner
            .flight
            .record(trace.id, FlightCode::Schedule, stream_id.raw(), disk.raw());
        inner.recordings.lock().insert(
            *stream_id,
            RecordTrack {
                content: content_name.clone(),
                component: i,
            },
        );
        components.push(Component {
            type_name: spec.name.clone(),
            locations: vec![Location {
                msu: *msu,
                disk: *disk,
                file,
            }],
            bytes: 0,
            duration_us: 0,
        });
        starts.push(RecordStart {
            stream: *stream_id,
            port_name: port_name.clone(),
            msu: *msu,
            udp_sink: sink.expect("error handled above"),
            trace,
        });
    }

    inner
        .record_remaining
        .lock()
        .insert(content_name.clone(), picks.len());
    inner.db.lock().insert_content(ContentRecord {
        name: content_name.clone(),
        type_name,
        components,
        status: ContentStatus::Recording,
        trick: None,
    })?;
    let _ = &sess.client_name;
    tracing::info!(
        "record: {content_name:?} admitted as {group} ({} streams) [{trace}]",
        starts.len()
    );
    Ok(CoordReply::RecordStarted {
        group,
        streams: starts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake_msu::FakeMsu;

    fn start_coord() -> CoordServer {
        CoordServer::start(CoordConfig::default()).unwrap()
    }

    struct TestClient {
        conn: TcpStream,
    }

    impl TestClient {
        fn connect(addr: SocketAddr, name: &str, admin: bool) -> TestClient {
            let conn = TcpStream::connect(addr).unwrap();
            let mut c = TestClient { conn };
            let reply = c.request(ClientRequest::Hello {
                client_name: name.into(),
                admin,
            });
            assert!(matches!(reply, CoordReply::Welcome { .. }));
            c
        }

        fn request(&mut self, req: ClientRequest) -> CoordReply {
            write_frame(&mut self.conn, &req).unwrap();
            loop {
                let r: Option<CoordReply> = read_frame(&mut self.conn).unwrap();
                match r.unwrap() {
                    CoordReply::Queued => continue, // interim
                    other => return other,
                }
            }
        }
    }

    #[test]
    fn msu_registration_and_failure_detection() {
        let coord = start_coord();
        let fake = FakeMsu::start(coord.msu_addr, 2, Duration::from_millis(1)).unwrap();
        // Wait for registration to settle.
        for _ in 0..100 {
            if coord.msu_count() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(coord.msu_count(), 1);
        let id = fake.id;
        assert!(coord.inner.sched.is_available(id));
        fake.stop();
        for _ in 0..100 {
            if !coord.inner.sched.is_available(id) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            !coord.inner.sched.is_available(id),
            "TCP break marks it down"
        );
        coord.shutdown();
    }

    #[test]
    fn session_lists_types_and_content() {
        let coord = start_coord();
        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        match client.request(ClientRequest::ListTypes) {
            CoordReply::TypeList { types } => {
                assert!(types.iter().any(|t| t.name == "mpeg1"));
            }
            other => panic!("{other:?}"),
        }
        match client.request(ClientRequest::ListContent) {
            CoordReply::ContentList { entries } => assert!(entries.is_empty()),
            other => panic!("{other:?}"),
        }
        coord.shutdown();
    }

    #[test]
    fn requests_before_hello_are_rejected() {
        let coord = start_coord();
        let mut conn = TcpStream::connect(coord.client_addr).unwrap();
        write_frame(&mut conn, &ClientRequest::ListTypes).unwrap();
        let r: Option<CoordReply> = read_frame(&mut conn).unwrap();
        assert!(matches!(r.unwrap(), CoordReply::Error { .. }));
        coord.shutdown();
    }

    #[test]
    fn port_registration_validates_types() {
        let coord = start_coord();
        let mut client = TestClient::connect(coord.client_addr, "bob", false);
        let data: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        let ctrl: SocketAddr = "127.0.0.1:5001".parse().unwrap();
        // Unknown type.
        assert!(matches!(
            client.request(ClientRequest::RegisterPort {
                name: "p".into(),
                type_name: "ghost".into(),
                data_addr: data,
                ctrl_addr: ctrl,
            }),
            CoordReply::Error { .. }
        ));
        // Composite type on an atomic port.
        assert!(matches!(
            client.request(ClientRequest::RegisterPort {
                name: "p".into(),
                type_name: "seminar".into(),
                data_addr: data,
                ctrl_addr: ctrl,
            }),
            CoordReply::Error { .. }
        ));
        // Good atomic ports.
        for (name, ty) in [("v", "nv-video"), ("a", "vat-audio")] {
            assert!(matches!(
                client.request(ClientRequest::RegisterPort {
                    name: name.into(),
                    type_name: ty.into(),
                    data_addr: data,
                    ctrl_addr: ctrl,
                }),
                CoordReply::Ok
            ));
        }
        // Duplicate name.
        assert!(matches!(
            client.request(ClientRequest::RegisterPort {
                name: "v".into(),
                type_name: "nv-video".into(),
                data_addr: data,
                ctrl_addr: ctrl,
            }),
            CoordReply::Error { .. }
        ));
        // Composite port out of them, wrong order first.
        assert!(matches!(
            client.request(ClientRequest::RegisterCompositePort {
                name: "sem".into(),
                type_name: "seminar".into(),
                components: vec!["a".into(), "v".into()],
            }),
            CoordReply::Error { .. }
        ));
        assert!(matches!(
            client.request(ClientRequest::RegisterCompositePort {
                name: "sem".into(),
                type_name: "seminar".into(),
                components: vec!["v".into(), "a".into()],
            }),
            CoordReply::Ok
        ));
        // Unregister.
        assert!(matches!(
            client.request(ClientRequest::UnregisterPort { name: "sem".into() }),
            CoordReply::Ok
        ));
        assert!(matches!(
            client.request(ClientRequest::UnregisterPort { name: "sem".into() }),
            CoordReply::Error { .. }
        ));
        coord.shutdown();
    }

    #[test]
    fn admin_operations_require_admin() {
        let coord = start_coord();
        let mut user = TestClient::connect(coord.client_addr, "mallory", false);
        assert!(matches!(
            user.request(ClientRequest::Delete {
                content: "x".into()
            }),
            CoordReply::Error { code, .. } if code == Error::PermissionDenied { op: "" }.wire_code()
        ));
        assert!(matches!(
            user.request(ClientRequest::AddType {
                spec: ContentTypeSpec::constant(
                    "new",
                    calliope_types::content::ProtocolId::ConstantRate,
                    calliope_types::time::BitRate::from_mbps(1)
                )
            }),
            CoordReply::Error { .. }
        ));
        let mut admin = TestClient::connect(coord.client_addr, "root", true);
        assert!(matches!(
            admin.request(ClientRequest::AddType {
                spec: ContentTypeSpec::constant(
                    "new",
                    calliope_types::content::ProtocolId::ConstantRate,
                    calliope_types::time::BitRate::from_mbps(1)
                )
            }),
            CoordReply::Ok
        ));
        coord.shutdown();
    }

    #[test]
    fn play_without_content_errors() {
        let coord = start_coord();
        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        let data: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        client.request(ClientRequest::RegisterPort {
            name: "p".into(),
            type_name: "mpeg1".into(),
            data_addr: data,
            ctrl_addr: data,
        });
        assert!(matches!(
            client.request(ClientRequest::Play {
                content: "ghost".into(),
                port: "p".into()
            }),
            CoordReply::Error { .. }
        ));
        coord.shutdown();
    }

    #[test]
    fn record_via_fake_msu_reserves_and_releases() {
        let coord = start_coord();
        let _fake = FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(5)).unwrap();
        for _ in 0..100 {
            if coord.msu_count() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        let data: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        client.request(ClientRequest::RegisterPort {
            name: "p".into(),
            type_name: "mpeg1".into(),
            data_addr: data,
            ctrl_addr: data,
        });
        let reply = client.request(ClientRequest::Record {
            content: "talk".into(),
            port: "p".into(),
            type_name: "mpeg1".into(),
            est_secs: 60,
        });
        match reply {
            CoordReply::RecordStarted { streams, .. } => {
                assert_eq!(streams.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // The fake MSU reports immediate termination: the grant clears
        // and the content finalizes (zero-length, but Ready).
        for _ in 0..100 {
            if coord.active_streams() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(coord.active_streams(), 0);
        // Duplicate content name is rejected.
        assert!(matches!(
            client.request(ClientRequest::Record {
                content: "talk".into(),
                port: "p".into(),
                type_name: "mpeg1".into(),
                est_secs: 60,
            }),
            CoordReply::Error { .. }
        ));
        coord.shutdown();
    }

    #[test]
    fn queued_request_completes_when_capacity_frees() {
        let coord = start_coord();
        let _fake = FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(5)).unwrap();
        for _ in 0..100 {
            if coord.msu_count() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Exhaust the single disk's space with one huge reservation...
        // actually exhaust *bandwidth*: 12 recordings of mpeg1 fill a
        // 2.4 MB/s disk. The 13th parks in the queue; the fake MSU's
        // instant terminations then free capacity and it completes.
        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        let data: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        client.request(ClientRequest::RegisterPort {
            name: "p".into(),
            type_name: "mpeg1".into(),
            data_addr: data,
            ctrl_addr: data,
        });
        for i in 0..14 {
            let reply = client.request(ClientRequest::Record {
                content: format!("c{i}"),
                port: "p".into(),
                type_name: "mpeg1".into(),
                est_secs: 1,
            });
            assert!(
                matches!(reply, CoordReply::RecordStarted { .. }),
                "request {i}: {reply:?}"
            );
        }
        coord.shutdown();
    }

    /// Polls until `f` holds or the timeout elapses.
    fn wait_for(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        f()
    }

    /// Inserts a ready one-component mpeg1 title with a replica at each
    /// given location, as if recorded and replicated.
    fn insert_replicated_content(coord: &CoordServer, name: &str, locations: Vec<Location>) {
        coord
            .inner
            .db
            .lock()
            .insert_content(ContentRecord {
                name: name.into(),
                type_name: "mpeg1".into(),
                components: vec![Component {
                    type_name: "mpeg1".into(),
                    locations,
                    bytes: 1_000_000,
                    duration_us: 5_000_000,
                }],
                status: ContentStatus::Ready,
                trick: None,
            })
            .unwrap();
    }

    fn register_port(client: &mut TestClient) {
        let data: SocketAddr = "127.0.0.1:5000".parse().unwrap();
        assert!(matches!(
            client.request(ClientRequest::RegisterPort {
                name: "p".into(),
                type_name: "mpeg1".into(),
                data_addr: data,
                ctrl_addr: data,
            }),
            CoordReply::Ok
        ));
    }

    #[test]
    fn heartbeat_marks_a_wedged_msu_down() {
        let coord = CoordServer::start(CoordConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_misses: 2,
            ..CoordConfig::default()
        })
        .unwrap();
        let fake = FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(1)).unwrap();
        assert!(wait_for(Duration::from_secs(2), || coord.msu_count() == 1));
        let id = fake.id;
        // Healthy: beats are answered, the MSU stays available.
        std::thread::sleep(Duration::from_millis(300));
        assert!(coord.inner.sched.is_available(id));
        // Wedge it: the TCP connection stays open but nothing answers.
        // The §2.2 TCP-break detector never fires; the heartbeat must.
        fake.wedge();
        assert!(
            wait_for(Duration::from_secs(5), || !coord
                .inner
                .sched
                .is_available(id)),
            "heartbeat did not mark the wedged MSU down"
        );
        assert!(coord.stats().heartbeat_misses.get() >= 2);
        fake.stop();
        coord.shutdown();
    }

    /// The §2.2 recovery path end to end at the control-plane level:
    /// an MSU dies mid-play, the reaper reclaims its grant, and the
    /// stream is re-admitted on the MSU holding the replica.
    #[test]
    fn msu_death_fails_playback_over_to_a_replica() {
        let coord = start_coord();
        let fakes = [
            FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(5)).unwrap(),
            FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(5)).unwrap(),
        ];
        for f in &fakes {
            f.set_linger();
        }
        assert!(wait_for(Duration::from_secs(2), || coord.msu_count() == 2));
        let locations: Vec<Location> = fakes
            .iter()
            .map(|f| Location {
                msu: f.id,
                disk: coord.inner.sched.msu(f.id).unwrap().disks[0],
                file: "movie".into(),
            })
            .collect();
        insert_replicated_content(&coord, "movie", locations);

        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        register_port(&mut client);
        let (victim, stream) = match client.request(ClientRequest::Play {
            content: "movie".into(),
            port: "p".into(),
        }) {
            CoordReply::PlayStarted { streams, .. } => (streams[0].msu, streams[0].stream),
            other => panic!("{other:?}"),
        };
        assert_eq!(coord.active_streams(), 1);

        let mut fakes = Vec::from(fakes);
        let idx = fakes.iter().position(|f| f.id == victim).unwrap();
        let survivor = fakes[1 - idx].id;
        fakes.remove(idx).stop();

        assert!(
            wait_for(Duration::from_secs(5), || coord.stats().failovers.get()
                == 1),
            "stream did not fail over to the replica"
        );
        assert_eq!(coord.stats().grants_reaped.get(), 1);
        let res = coord
            .inner
            .sched
            .reservation_of(stream)
            .expect("grant moved, not dropped");
        assert_eq!(res.msu, survivor);
        assert_eq!(coord.active_streams(), 1, "exactly the moved grant remains");
        coord.shutdown();
    }

    /// Disk-level failover: the MSU reports `StreamDone(IoError)` and
    /// the Coordinator re-admits the stream on the replica disk of the
    /// same MSU. A second I/O error exhausts the replicas and the
    /// stream ends with nothing stranded.
    #[test]
    fn disk_io_error_fails_over_to_the_replica_disk() {
        let coord = start_coord();
        let fake = FakeMsu::start(coord.msu_addr, 2, Duration::from_millis(5)).unwrap();
        fake.set_linger();
        assert!(wait_for(Duration::from_secs(2), || coord.msu_count() == 1));
        let locations: Vec<Location> = coord
            .inner
            .sched
            .msu(fake.id)
            .unwrap()
            .disks
            .iter()
            .map(|d| Location {
                msu: fake.id,
                disk: *d,
                file: "movie".into(),
            })
            .collect();
        insert_replicated_content(&coord, "movie", locations);

        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        register_port(&mut client);
        let (stream, trace) = match client.request(ClientRequest::Play {
            content: "movie".into(),
            port: "p".into(),
        }) {
            CoordReply::PlayStarted { streams, .. } => (streams[0].stream, streams[0].trace),
            other => panic!("{other:?}"),
        };
        assert!(trace.is_traced(), "admission must mint a trace");
        assert_eq!(trace.kind, SpanKind::Play);
        let first = coord.inner.sched.reservation_of(stream).unwrap().disk;

        handle_msu_notification(
            &coord.inner,
            fake.id,
            MsuToCoord::StreamDone {
                stream,
                reason: DoneReason::IoError("injected: read failed".into()),
                bytes: 0,
                duration_us: 0,
                trace,
            },
        );
        assert_eq!(coord.stats().failovers.get(), 1);
        // The flight recorder holds the whole story under one trace id:
        // admission, scheduling, the I/O error, and the re-admission.
        let events = coord.flight().snapshot();
        for code in [
            calliope_obs::FlightCode::Admit,
            calliope_obs::FlightCode::Schedule,
            calliope_obs::FlightCode::IoError,
            calliope_obs::FlightCode::Failover,
        ] {
            assert!(
                events.iter().any(|e| e.code == code && e.trace == trace.id),
                "missing {} for {trace} in {events:?}",
                code.name()
            );
        }
        let second = coord
            .inner
            .sched
            .reservation_of(stream)
            .expect("grant moved, not dropped")
            .disk;
        assert_ne!(second, first, "failover must pick the other disk");

        handle_msu_notification(
            &coord.inner,
            fake.id,
            MsuToCoord::StreamDone {
                stream,
                reason: DoneReason::IoError("injected: read failed".into()),
                bytes: 0,
                duration_us: 0,
                trace: trace.into_failover(),
            },
        );
        assert_eq!(
            coord.stats().failovers.get(),
            1,
            "no third replica to move to"
        );
        assert_eq!(coord.active_streams(), 0, "no stranded reservation");
        assert!(
            coord.inner.plays.lock().is_empty(),
            "no stranded play track"
        );
        fake.stop();
        coord.shutdown();
    }

    /// The cluster-total merge: counters sum, same-layout histograms
    /// merge bucket-wise, mixed layouts merge on the union of bounds,
    /// and gauges sum value and high-water.
    #[test]
    fn merge_snapshots_sums_counters_and_histograms() {
        let h = |bounds: &[(u64, u64)], count, sum| MetricValue::Histogram {
            buckets: bounds
                .iter()
                .map(|&(le, count)| HistBucket { le, count })
                .collect(),
            count,
            sum,
        };
        let snap = |source: &str, uptime_us, metrics: Vec<(&str, MetricValue)>| StatsSnapshot {
            source: source.into(),
            uptime_us,
            metrics: metrics
                .into_iter()
                .map(|(name, value)| MetricEntry {
                    name: name.into(),
                    value,
                })
                .collect(),
        };
        let a = snap(
            "msu-1",
            500,
            vec![
                ("net.packets_sent", MetricValue::Counter(10)),
                (
                    "net.send_lateness_us",
                    h(&[(100, 4), (1000, 9), (u64::MAX, 10)], 10, 2_000),
                ),
                (
                    "spsc.depth",
                    MetricValue::Gauge {
                        value: 2,
                        high_water: 5,
                    },
                ),
            ],
        );
        let b = snap(
            "msu-2",
            900,
            vec![
                ("net.packets_sent", MetricValue::Counter(32)),
                (
                    "net.send_lateness_us",
                    h(&[(100, 1), (1000, 2), (u64::MAX, 3)], 3, 900),
                ),
                ("disk.reads", MetricValue::Counter(7)),
            ],
        );
        let merged = merge_snapshots(&[a, b]);
        assert_eq!(merged.source, "cluster");
        assert_eq!(merged.uptime_us, 900);
        assert_eq!(merged.counter("net.packets_sent"), 42);
        assert_eq!(merged.counter("disk.reads"), 7);
        match merged.get("net.send_lateness_us").unwrap() {
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                assert_eq!(*count, 13);
                assert_eq!(*sum, 2_900);
                assert_eq!(buckets[0], HistBucket { le: 100, count: 5 });
                assert_eq!(
                    buckets[1],
                    HistBucket {
                        le: 1000,
                        count: 11
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        match merged.get("spsc.depth").unwrap() {
            MetricValue::Gauge { value, high_water } => {
                assert_eq!((*value, *high_water), (2, 5));
            }
            other => panic!("{other:?}"),
        }
        // Mixed bucket layouts take the union-of-bounds path.
        let c = snap(
            "msu-3",
            1,
            vec![("net.send_lateness_us", h(&[(50, 2), (u64::MAX, 2)], 2, 60))],
        );
        let d = snap(
            "msu-4",
            1,
            vec![(
                "net.send_lateness_us",
                h(&[(100, 3), (u64::MAX, 4)], 4, 500),
            )],
        );
        match merge_snapshots(&[c, d])
            .get("net.send_lateness_us")
            .unwrap()
        {
            MetricValue::Histogram { buckets, count, .. } => {
                assert_eq!(*count, 6);
                assert_eq!(buckets[0], HistBucket { le: 50, count: 2 });
                assert_eq!(buckets[1], HistBucket { le: 100, count: 5 });
                assert_eq!(
                    buckets[2],
                    HistBucket {
                        le: u64::MAX,
                        count: 6
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        // The empty cluster is a valid, empty snapshot.
        assert!(merge_snapshots(&[]).metrics.is_empty());
    }

    /// A recording has no replica to move to: reaping its MSU abandons
    /// the partial recording and scrubs every table it touched.
    #[test]
    fn reaped_recordings_are_abandoned_cleanly() {
        let coord = start_coord();
        let fake = FakeMsu::start(coord.msu_addr, 1, Duration::from_millis(5)).unwrap();
        fake.set_linger();
        assert!(wait_for(Duration::from_secs(2), || coord.msu_count() == 1));
        let mut client = TestClient::connect(coord.client_addr, "alice", false);
        register_port(&mut client);
        assert!(matches!(
            client.request(ClientRequest::Record {
                content: "talk".into(),
                port: "p".into(),
                type_name: "mpeg1".into(),
                est_secs: 60,
            }),
            CoordReply::RecordStarted { .. }
        ));
        assert_eq!(coord.active_streams(), 1);
        assert!(coord.inner.db.lock().content("talk").is_ok());

        fake.stop();
        assert!(
            wait_for(Duration::from_secs(5), || coord.active_streams() == 0),
            "reaper did not reclaim the recording grant"
        );
        assert!(
            coord.inner.db.lock().content("talk").is_err(),
            "partial recording must leave the catalog"
        );
        assert!(coord.inner.recordings.lock().is_empty());
        assert!(coord.inner.record_remaining.lock().is_empty());
        assert_eq!(coord.stats().grants_reaped.get(), 1);
        coord.shutdown();
    }
}
