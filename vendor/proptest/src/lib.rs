//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! the [`strategy::Strategy`] trait with `prop_map`/`boxed`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range and regex-literal
//! strategies, `collection::vec`, `option::of`, and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test seed and are NOT
//! shrunk on failure — the failing values are reported as-is via the
//! panic message of the underlying assert.

pub mod test_runner {
    /// Per-test configuration (case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator driving case generation (SplitMix64
    /// seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test's name: every run of a
        /// given test sees the same case sequence.
        pub fn deterministic(name: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for a type.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let r = rng.next_u64() as u128;
                    self.start + ((r * span.min(u64::MAX as u128 + 1)) >> 64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    let r = rng.next_u64() as u128;
                    start + ((r * span) >> 64) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` literals act as simplified regex strategies: `".*"`
    /// produces arbitrary strings, and single-character-class patterns
    /// of the form `"[chars]{m,n}"` produce strings over that class.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// The canonical strategy for a type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types with a canonical random generator.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards edge values: proptest's generators
                    // overweight boundaries, which is where codec bugs
                    // live.
                    match rng.below(8) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with occasional multi-byte code points, so
            // UTF-8 length handling gets exercised.
            match rng.below(4) {
                0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('é'),
                _ => (0x20 + rng.below(0x5F) as u8) as char,
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.below(33);
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! arb_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub(crate) mod string {
    use super::test_runner::TestRng;

    /// Samples a string from a simplified regex pattern. Supported
    /// shapes: `.*` (arbitrary string), `[class]{m,n}`, `[class]{n}`,
    /// `[class]+`, `[class]*`; anything else falls back to a random
    /// ASCII string.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == ".*" {
            let len = rng.below(40);
            return (0..len)
                .map(|_| <char as super::arbitrary::Arbitrary>::arbitrary(rng))
                .collect();
        }
        if let Some(rest) = pattern.strip_prefix('[') {
            if let Some(end) = rest.find(']') {
                let class = expand_class(&rest[..end]);
                let quant = &rest[end + 1..];
                let (min, max) = parse_quantifier(quant);
                if !class.is_empty() {
                    let span = (max - min + 1) as u64;
                    let len = min + rng.below(span) as usize;
                    return (0..len)
                        .map(|_| class[rng.below(class.len() as u64) as usize])
                        .collect();
                }
            }
        }
        let len = rng.below(24);
        (0..len)
            .map(|_| (0x20 + rng.below(0x5F) as u8) as char)
            .collect()
    }

    /// Expands a character class body (`a-z0-9._-`) into its members.
    fn expand_class(body: &str) -> Vec<char> {
        let chars: Vec<char> = body.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    /// Parses `{m,n}` / `{n}` / `+` / `*` / `` into length bounds.
    fn parse_quantifier(q: &str) -> (usize, usize) {
        match q {
            "" => (1, 1),
            "+" => (1, 16),
            "*" => (0, 16),
            _ => {
                let inner = q.trim_start_matches('{').trim_end_matches('}');
                if let Some((m, n)) = inner.split_once(',') {
                    let m = m.trim().parse().unwrap_or(0);
                    let n = n.trim().parse().unwrap_or(m + 16);
                    (m, n.max(m))
                } else if let Ok(n) = inner.trim().parse() {
                    (n, n)
                } else {
                    (0, 16)
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 10u64..20, f in 0.0f64..1.0, i in 1u8..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!((1..=3).contains(&i));
        }

        #[test]
        fn class_patterns_respect_class(s in "[a-z0-9/_-]{0,64}") {
            prop_assert!(s.len() <= 64);
            prop_assert!(s.chars().all(|c| {
                c.is_ascii_lowercase() || c.is_ascii_digit() || "/_-".contains(c)
            }));
        }

        #[test]
        fn oneof_map_and_collections(
            v in crate::collection::vec(any::<u8>(), 0..10),
            o in crate::option::of(0u32..5),
            e in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)],
        ) {
            prop_assert!(v.len() < 10);
            if let Some(x) = o { prop_assert!(x < 5); }
            prop_assert!((1..4).contains(&e));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honored(x in any::<u64>()) {
            let _ = x;
        }
    }
}
