//! Chaos tests: injected disk faults, abrupt MSU crashes, and wedged
//! control loops, driven through the public cluster API. The
//! Coordinator must detect each failure (heartbeat or broken
//! connection), reap the dead party's grants, and — when a replica
//! exists — fail playback over without the client doing anything.

use calliope::cluster::Cluster;
use calliope::content;
use calliope_obs::FlightCode;
use calliope_storage::FaultPlan;
use calliope_types::error::Error;
use calliope_types::wire::messages::DoneReason;
use std::time::{Duration, Instant};

/// Scenario narration rides the `chaos` tracing target: set
/// `RUST_LOG=chaos=info` to watch a run unfold (silent otherwise).
macro_rules! narrate {
    ($($arg:tt)+) => { tracing::info!(target: "chaos", $($arg)+) };
}

fn wait_for<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A disk dies mid-playback but the title has a replica on the sibling
/// disk: the MSU reports `StreamDone { IoError }`, the Coordinator
/// re-admits the stream on the replica, the MSU dials the client's
/// control listener again, and playback completes — the viewer never
/// sees an error.
#[test]
fn disk_death_fails_over_to_the_replica_disk() {
    calliope_obs::init_logging();
    // The MSU reads ahead as fast as the disk allows (delivery, not
    // reading, is what gets paced), so a healthy disk would hand over
    // the whole clip before the kill switch lands. 300 ms per transfer
    // keeps reads outstanding past the kill, deterministically.
    let slow = FaultPlan {
        read_latency: Duration::from_millis(300),
        ..FaultPlan::default()
    };
    let cluster = Cluster::builder()
        .msus(1)
        .disks_per_msu(2)
        .fault(0, 0, slow.clone())
        .fault(0, 1, slow)
        .build()
        .unwrap();
    let mut admin = cluster.client("root", true).unwrap();
    let original = content::upload_mpeg(&mut admin, "movie", 8, 11).unwrap();
    admin.replicate("movie").unwrap();

    let port = admin.open_port("tv", "mpeg1").unwrap();
    let mut play = admin.play("movie", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    let trace = play.traces[0];
    assert!(trace.is_traced(), "admission must mint a trace id");
    narrate!("playing {stream} [{trace}]; waiting for first packets");
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });

    // Kill the disk actually serving the stream (registration order in
    // the status matches the builder's disk order).
    let (msus, _) = admin.server_status().unwrap();
    let victim = msus[0]
        .disks
        .iter()
        .position(|d| d.bw_used > 0)
        .expect("one disk holds the stream's bandwidth grant");
    narrate!("killing disk {victim} under {stream}");
    cluster.fail_disk(0, victim).expect("disk is fault-armed");

    // The client blocks straight through the failover; playback
    // restarts from the beginning on the replica and completes.
    let reason = play.wait_end(Duration::from_secs(60)).unwrap();
    narrate!("playback ended: {reason:?}");
    assert_eq!(reason, DoneReason::Completed);
    assert_eq!(cluster.coord.stats().failovers.get(), 1);

    // The always-on flight recorder (no env vars set here) traced the
    // whole life of the stream under one id: admission, the grant, the
    // disk death, and the replica re-admission. The I/O error also
    // dumped both recorders to stderr unconditionally.
    let events = cluster.coord.flight().snapshot();
    for code in [
        FlightCode::Admit,
        FlightCode::Schedule,
        FlightCode::IoError,
        FlightCode::Failover,
    ] {
        assert!(
            events.iter().any(|e| e.code == code && e.trace == trace.id),
            "coordinator flight recorder missing {code:?} for [{trace}]: {events:#?}"
        );
    }
    let msu_events = cluster.msus[0].flight().snapshot();
    assert!(
        msu_events
            .iter()
            .filter(|e| e.code == FlightCode::Schedule && e.trace == trace.id)
            .count()
            >= 2,
        "MSU must have scheduled the stream twice (original + failover) \
         under one trace id: {msu_events:#?}"
    );
    assert!(
        msu_events
            .iter()
            .any(|e| e.code == FlightCode::IoError && e.trace == trace.id),
        "MSU flight recorder missing the disk failure: {msu_events:#?}"
    );

    // The full clip arrived after the restart (plus whatever the first
    // attempt delivered before the disk died).
    let stats = wait_for(Duration::from_secs(5), || {
        let s = port.stats(stream);
        s.eos.then_some(s)
    });
    assert!(
        stats.bytes >= original.len() as u64,
        "replayed clip shorter than the original: {} < {}",
        stats.bytes,
        original.len()
    );
    // Everything drains: no stranded grants.
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.active_streams() == 0).then_some(())
    });
    cluster.shutdown();
}

/// The only copy's disk dies: no replica to move to, so the failure
/// surfaces to the client as a clean I/O error — after the failover
/// grace expires — and the Coordinator releases every grant.
#[test]
fn disk_death_without_a_replica_is_a_clean_error() {
    calliope_obs::init_logging();
    let cluster = Cluster::builder()
        .msus(1)
        .disks_per_msu(1)
        // Slow reads down so the clip is still being read — not already
        // fully buffered — when the kill switch lands.
        .fault(
            0,
            0,
            FaultPlan {
                read_latency: Duration::from_millis(300),
                ..FaultPlan::default()
            },
        )
        .build()
        .unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "solo", 8, 12).unwrap();

    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("solo", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });
    narrate!("killing the only disk under {stream}");
    cluster.fail_disk(0, 0).expect("disk is fault-armed");

    let reason = play.wait_end(Duration::from_secs(30)).unwrap();
    narrate!("playback ended: {reason:?}");
    assert!(
        matches!(reason, DoneReason::IoError(_)),
        "expected an I/O error, got {reason:?}"
    );
    assert_eq!(cluster.coord.stats().failovers.get(), 0);
    assert_eq!(
        cluster.msus[0].metrics().io_errors.get(),
        1,
        "msu.io_errors"
    );

    // No stranded grants: the stream's bandwidth came back.
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.active_streams() == 0).then_some(())
    });
    let (msus, _) = client.server_status().unwrap();
    assert_eq!(msus[0].net_used, 0);
    assert!(msus[0].available, "an MSU survives its disk");
    cluster.shutdown();
}

/// An MSU crashes abruptly — no farewell to anyone. The Coordinator
/// notices the broken connection, reaps the grant, finds no replica,
/// and the client's session closes after the failover grace.
#[test]
fn msu_crash_without_a_replica_reaps_the_grants() {
    calliope_obs::init_logging();
    let mut cluster = Cluster::builder().msus(1).build().unwrap();
    let mut client = cluster.client("alice", false).unwrap();
    content::upload_mpeg(&mut client, "doomed", 4, 13).unwrap();

    let port = client.open_port("tv", "mpeg1").unwrap();
    let mut play = client.play("doomed", "tv", &[&port]).unwrap();
    let stream = play.streams[0];
    wait_for(Duration::from_secs(10), || {
        (port.stats(stream).packets > 2).then_some(())
    });

    let id = cluster.crash_msu(0);
    narrate!("crashed {id}; expecting the session to close");
    let err = play.wait_end(Duration::from_secs(30));
    assert!(
        matches!(err, Err(Error::SessionClosed)),
        "expected SessionClosed, got {err:?}"
    );
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.msu_count() == 0).then_some(())
    });
    assert_eq!(cluster.coord.stats().grants_reaped.get(), 1);
    assert_eq!(cluster.coord.active_streams(), 0, "no stranded grants");
    // `fail_msu` dumped the flight recorder; its event names the victim.
    let events = cluster.coord.flight().snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.code == FlightCode::FailMsu && e.arg0 == id.raw()),
        "coordinator flight recorder missing FailMsu for {id}: {events:#?}"
    );
    cluster.shutdown();
}

/// A wedged MSU answers nothing but keeps its TCP connection open — a
/// failure mode only the heartbeat can see. With a fast heartbeat the
/// Coordinator marks it down within a few intervals.
#[test]
fn heartbeat_reaps_a_wedged_msu() {
    calliope_obs::init_logging();
    let cluster = Cluster::builder()
        .msus(2)
        .heartbeat(Duration::from_millis(50), 2)
        .build()
        .unwrap();
    assert_eq!(cluster.coord.msu_count(), 2);

    narrate!("wedging MSU #1; only the heartbeat can notice");
    cluster.wedge_msu(1);
    wait_for(Duration::from_secs(10), || {
        (cluster.coord.msu_count() == 1).then_some(())
    });
    assert!(cluster.coord.stats().heartbeat_misses.get() >= 2);
    // The misses and the eventual reap are both on the flight record.
    let events = cluster.coord.flight().snapshot();
    assert!(
        events.iter().any(|e| e.code == FlightCode::HeartbeatMiss),
        "missing HeartbeatMiss events: {events:#?}"
    );
    assert!(
        events.iter().any(|e| e.code == FlightCode::FailMsu),
        "missing the FailMsu reap: {events:#?}"
    );
    cluster.shutdown();
}
