//! Coordinator load accounting — the instrumentation behind §3.3.
//!
//! "We measured the Coordinator's CPU utilization at 14% and the
//! network utilization at 6%." The Coordinator tallies the CPU time it
//! spends processing requests and the intra-server bytes it moves;
//! utilization is busy time (or bytes) over wall-clock elapsed.
//!
//! All counters live in a [`calliope_obs::Registry`], so the same
//! figures the §3.3 benchmark reads are exported over the wire by
//! `ClientRequest::Stats` alongside the admission-control metrics
//! (grants, rejections, and queue-wait histogram).

use calliope_obs::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};
use calliope_types::wire::stats::StatsSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The intra-server network modeled for utilization reporting:
/// 10 Mbit/s Ethernet, as in the paper.
pub const INTRA_SERVER_BYTES_PER_SEC: f64 = 1.25e6;

/// The three §3.3 load figures, derived together from one elapsed
/// reading so they are mutually consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Rates {
    /// CPU utilization: busy time / elapsed time.
    pub cpu_utilization: f64,
    /// Network utilization against the modeled 10 Mbit/s intra-server
    /// Ethernet.
    pub network_utilization: f64,
    /// Offered request rate, requests/second.
    pub request_rate: f64,
}

/// Accumulates Coordinator load figures.
pub struct CoordStats {
    /// The registry every figure is registered in; snapshotted by the
    /// `Stats` wire request.
    pub registry: Registry,
    started: Mutex<Instant>,
    /// Nanosecond resolution: individual requests are far shorter than
    /// a microsecond of CPU, so a µs counter would round them all to 0.
    busy_ns: AtomicU64,
    bytes: Arc<Counter>,
    requests: Arc<Counter>,
    streams_started: Arc<Counter>,
    streams_done: Arc<Counter>,
    /// Admission groups granted (one per Play/Record that got through).
    pub admissions: Arc<Counter>,
    /// Admission requests that failed outright (bad request, MSU gone).
    pub rejections: Arc<Counter>,
    /// Time spent parked in the §2.2 admission queue, µs, including the
    /// zero-wait fast path so percentiles reflect real client latency.
    pub queue_wait_us: Arc<Histogram>,
    /// Heartbeat probes that went unanswered (one per missed beat, not
    /// per downed MSU).
    pub heartbeat_misses: Arc<Counter>,
    /// Playback streams successfully re-admitted on a replica after
    /// their disk or MSU failed.
    pub failovers: Arc<Counter>,
    /// Reservations reaped from downed MSUs by `mark_down`.
    pub grants_reaped: Arc<Counter>,
    /// MSU stats snapshots folded into the cluster view (one per
    /// heartbeat `Pong` that piggybacked a snapshot).
    pub snapshots_merged: Arc<Counter>,
}

impl Default for CoordStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordStats {
    /// Creates zeroed statistics starting now.
    pub fn new() -> CoordStats {
        let registry = Registry::new();
        let bytes = registry.counter("coord.intra_net_bytes");
        let requests = registry.counter("coord.requests");
        let streams_started = registry.counter("coord.streams_started");
        let streams_done = registry.counter("coord.streams_done");
        let admissions = registry.counter("admission.granted");
        let rejections = registry.counter("admission.rejected");
        let queue_wait_us = registry.histogram("admission.queue_wait_us", LATENCY_US_BUCKETS);
        let heartbeat_misses = registry.counter("coord.heartbeat_misses");
        let failovers = registry.counter("coord.failovers");
        let grants_reaped = registry.counter("coord.grants_reaped");
        let snapshots_merged = registry.counter("coord.snapshots_merged");
        CoordStats {
            registry,
            started: Mutex::new(Instant::now()),
            busy_ns: AtomicU64::new(0),
            bytes,
            requests,
            streams_started,
            streams_done,
            admissions,
            rejections,
            queue_wait_us,
            heartbeat_misses,
            failovers,
            grants_reaped,
            snapshots_merged,
        }
    }

    /// Resets every counter and restarts the clock (benchmarks call
    /// this after warmup).
    pub fn reset(&self) {
        *self.started.lock() = Instant::now();
        // The registry's snapshot derives rates from its own uptime
        // clock; restart it too, or post-reset rates are computed over
        // the pre-reset elapsed time.
        self.registry.reset_epoch();
        // relaxed: a utilization accumulator; readers tolerate tearing
        // between reset and the first accumulation.
        self.busy_ns.store(0, Ordering::Relaxed);
        self.bytes.reset();
        self.requests.reset();
        self.streams_started.reset();
        self.streams_done.reset();
        self.admissions.reset();
        self.rejections.reset();
        self.queue_wait_us.reset();
        self.heartbeat_misses.reset();
        self.failovers.reset();
        self.grants_reaped.reset();
        self.snapshots_merged.reset();
    }

    /// Records one processed request and the CPU time it took.
    pub fn note_request(&self, busy: Duration) {
        self.requests.inc();
        self.note_busy(busy);
    }

    /// Records CPU time outside the request path (e.g. notification
    /// handling).
    pub fn note_busy(&self, busy: Duration) {
        // relaxed: a utilization accumulator read only for reporting.
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records intra-server bytes moved (both directions).
    pub fn note_bytes(&self, n: usize) {
        self.bytes.add(n as u64);
    }

    /// Records a stream admission.
    pub fn note_stream_started(&self) {
        self.streams_started.inc();
    }

    /// Records a stream termination.
    pub fn note_stream_done(&self) {
        self.streams_done.inc();
    }

    /// Total requests processed.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Streams started.
    pub fn streams_started(&self) -> u64 {
        self.streams_started.get()
    }

    /// Streams terminated.
    pub fn streams_done(&self) -> u64 {
        self.streams_done.get()
    }

    /// Wall-clock time since the last reset.
    pub fn elapsed(&self) -> Duration {
        self.started.lock().elapsed()
    }

    /// The §3.3 figures over the wall clock since the last reset.
    pub fn rates(&self) -> Rates {
        self.rates_over(self.elapsed())
    }

    /// The §3.3 figures over an injected elapsed time — the one place
    /// the three utilization formulas live, and deterministic under
    /// test.
    pub fn rates_over(&self, elapsed: Duration) -> Rates {
        let e = elapsed.as_secs_f64();
        if e == 0.0 {
            return Rates::default();
        }
        Rates {
            // relaxed: a point-in-time report; staleness is acceptable.
            cpu_utilization: self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9 / e,
            network_utilization: self.bytes.get() as f64 / INTRA_SERVER_BYTES_PER_SEC / e,
            request_rate: self.requests.get() as f64 / e,
        }
    }

    /// CPU utilization: busy time / elapsed time.
    pub fn cpu_utilization(&self) -> f64 {
        self.rates().cpu_utilization
    }

    /// Network utilization against the modeled 10 Mbit/s intra-server
    /// Ethernet.
    pub fn network_utilization(&self) -> f64 {
        self.rates().network_utilization
    }

    /// Offered request rate, requests/second.
    pub fn request_rate(&self) -> f64 {
        self.rates().request_rate
    }

    /// Every registered figure in wire form, tagged with `source`.
    pub fn snapshot(&self, source: &str) -> StatsSnapshot {
        self.registry.snapshot(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = CoordStats::new();
        s.note_request(Duration::from_millis(10));
        s.note_request(Duration::from_millis(30));
        s.note_bytes(125_000);
        // Injected elapsed: no sleeping, no tolerance bands.
        let r = s.rates_over(Duration::from_millis(100));
        assert!((r.cpu_utilization - 0.4).abs() < 1e-9, "{r:?}");
        // 125 kB over 0.1 s on a 1.25 MB/s link ⇒ exactly 100%.
        assert!((r.network_utilization - 1.0).abs() < 1e-9, "{r:?}");
        assert!((r.request_rate - 20.0).abs() < 1e-9, "{r:?}");
        assert_eq!(s.requests(), 2);
        // Zero elapsed never divides by zero.
        assert_eq!(s.rates_over(Duration::ZERO), Rates::default());
        // The wall-clock path reports through the same helper.
        assert!(s.rates().cpu_utilization > 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = CoordStats::new();
        s.note_request(Duration::from_millis(5));
        s.note_bytes(100);
        s.note_stream_started();
        s.note_stream_done();
        s.admissions.inc();
        s.rejections.inc();
        s.queue_wait_us.record(300);
        s.reset();
        assert_eq!(s.requests(), 0);
        assert_eq!(s.streams_started(), 0);
        assert_eq!(s.streams_done(), 0);
        assert_eq!(s.admissions.get(), 0);
        assert_eq!(s.rejections.get(), 0);
        assert_eq!(s.queue_wait_us.count(), 0);
        assert!(s.cpu_utilization() < 0.01);
    }

    #[test]
    fn snapshot_carries_admission_metrics() {
        let s = CoordStats::new();
        s.admissions.inc();
        s.admissions.inc();
        s.rejections.inc();
        s.queue_wait_us.record(80);
        s.queue_wait_us.record(120_000);
        let snap = s.snapshot("coordinator");
        assert_eq!(snap.source, "coordinator");
        assert_eq!(snap.counter("admission.granted"), 2);
        assert_eq!(snap.counter("admission.rejected"), 1);
        let wait = snap.get("admission.queue_wait_us").unwrap();
        assert_eq!(wait.as_counter(), None, "histograms are not counters");
        assert!(wait.quantile(0.99).unwrap() >= 120_000);
        assert!(wait.mean().unwrap() > 0.0);
    }
}
