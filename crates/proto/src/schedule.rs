//! Delivery schedules.
//!
//! "In order to replay variable-rate data packets at the correct times,
//! the network process constructs a delivery schedule as the data is
//! recorded. … The arrival times in delivery schedules are not absolute;
//! they are offsets from the beginning of the recording session." (paper
//! §2.2.1)
//!
//! Two flavors exist:
//!
//! * [`ScheduleBuilder`] — used while *recording* a variable-rate stream.
//!   It normalizes delivery times (from arrival clocks or protocol
//!   timestamps) so the first packet lands at offset zero and offsets
//!   never run backwards.
//! * [`CbrSchedule`] — the *calculated* schedule for constant bit-rate
//!   streams: packet `i` is due at `i · packet_bytes · 8 / rate`.

use calliope_types::time::{BitRate, MediaTime};

/// Calculated delivery schedule for a constant bit-rate stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbrSchedule {
    /// The stream's constant rate.
    pub rate: BitRate,
    /// Fixed payload size per packet, in bytes.
    pub packet_bytes: u32,
}

impl CbrSchedule {
    /// Creates a schedule; `packet_bytes` must be non-zero.
    pub fn new(rate: BitRate, packet_bytes: u32) -> Self {
        assert!(packet_bytes > 0, "packet size must be non-zero");
        CbrSchedule { rate, packet_bytes }
    }

    /// Delivery offset of packet `seq` (0-based).
    pub fn offset_of(&self, seq: u64) -> MediaTime {
        self.rate.transmit_time(seq * self.packet_bytes as u64)
    }

    /// The packet sequence number playing at media-time `t` — i.e. the
    /// greatest `seq` with `offset_of(seq) ≤ t`. Used to turn a `seek`
    /// target into a byte position.
    pub fn seq_at(&self, t: MediaTime) -> u64 {
        if self.rate.bps() == 0 {
            return 0;
        }
        // offset_of(seq) = floor(seq·pkt·8·10⁶ / rate) ≤ t
        //   ⟺ seq·pkt·8·10⁶ < (t+1)·rate
        //   ⟺ seq ≤ floor(((t+1)·rate − 1) / (pkt·8·10⁶))
        let num = (t.as_micros() as u128 + 1) * self.rate.bps() as u128 - 1;
        let den = self.packet_bytes as u128 * 8 * 1_000_000;
        (num / den) as u64
    }

    /// Byte offset into the (raw) file where packet `seq` begins.
    pub fn byte_of(&self, seq: u64) -> u64 {
        seq * self.packet_bytes as u64
    }

    /// Total number of packets in a file of `len` bytes (the final packet
    /// may be short).
    pub fn packets_in(&self, len: u64) -> u64 {
        len.div_ceil(self.packet_bytes as u64)
    }

    /// Duration of a file of `len` bytes at this rate.
    pub fn duration_of(&self, len: u64) -> MediaTime {
        self.rate.transmit_time(len)
    }
}

/// Builds a normalized delivery schedule while recording.
///
/// Protocol modules hand it raw delivery times — either packet arrival
/// times or sender timestamps. The builder:
///
/// * subtracts the first packet's time so offsets start at zero,
/// * clamps regressions (late-reordered or misstamped packets) to the
///   previous offset, keeping the schedule monotone — a requirement for
///   the IB-tree, whose search key is delivery time.
#[derive(Debug, Default)]
pub struct ScheduleBuilder {
    base: Option<u64>,
    last: u64,
    count: u64,
    clamped: u64,
}

impl ScheduleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes one raw delivery time (microseconds on any clock) into
    /// a monotone offset from the start of the recording.
    pub fn push(&mut self, raw_us: u64) -> MediaTime {
        let base = *self.base.get_or_insert(raw_us);
        let off = raw_us.saturating_sub(base);
        let off = if off < self.last {
            self.clamped += 1;
            self.last
        } else {
            off
        };
        self.last = off;
        self.count += 1;
        MediaTime(off)
    }

    /// Number of packets pushed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// How many offsets had to be clamped to keep the schedule monotone.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The last (and therefore greatest) offset produced, i.e. the
    /// recording's duration so far.
    pub fn duration(&self) -> MediaTime {
        MediaTime(self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cbr_offsets_are_evenly_spaced() {
        // 1.5 Mbit/s, 4 KB packets — the Graph 1 workload. Spacing should
        // be 4096·8/1.5e6 s ≈ 21.8 ms.
        let s = CbrSchedule::new(BitRate::from_kbps(1500), 4096);
        let gap = s.offset_of(1).as_micros();
        assert!((21_000..23_000).contains(&gap), "{gap}");
        for i in 0..100u64 {
            let exact = (i as u128 * 4096 * 8 * 1_000_000 / 1_500_000) as u64;
            assert_eq!(s.offset_of(i).as_micros(), exact);
        }
    }

    #[test]
    fn cbr_seek_inverts_offset() {
        let s = CbrSchedule::new(BitRate::from_kbps(1500), 4096);
        for seq in [0u64, 1, 7, 100, 12345] {
            let t = s.offset_of(seq);
            assert_eq!(s.seq_at(t), seq, "seq {seq}");
            // Slightly before the deadline we are still on the previous packet.
            if t.as_micros() > 0 {
                assert_eq!(s.seq_at(MediaTime(t.as_micros() - 1)), seq - 1);
            }
        }
    }

    #[test]
    fn cbr_packet_count_and_duration() {
        let s = CbrSchedule::new(BitRate::from_mbps(8), 1000);
        assert_eq!(s.packets_in(0), 0);
        assert_eq!(s.packets_in(999), 1);
        assert_eq!(s.packets_in(1000), 1);
        assert_eq!(s.packets_in(1001), 2);
        // 1 MB at 8 Mbit/s = 1 second.
        assert_eq!(s.duration_of(1_000_000), MediaTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_packet_size_is_rejected() {
        let _ = CbrSchedule::new(BitRate::from_mbps(1), 0);
    }

    #[test]
    fn builder_normalizes_to_zero_base() {
        let mut b = ScheduleBuilder::new();
        assert_eq!(b.push(5_000_000), MediaTime::ZERO);
        assert_eq!(b.push(5_040_000), MediaTime::from_millis(40));
        assert_eq!(b.push(5_080_000), MediaTime::from_millis(80));
        assert_eq!(b.len(), 3);
        assert_eq!(b.duration(), MediaTime::from_millis(80));
        assert_eq!(b.clamped(), 0);
    }

    #[test]
    fn builder_clamps_regressions() {
        let mut b = ScheduleBuilder::new();
        b.push(100);
        b.push(300);
        // A reordered packet stamped before its predecessor is clamped.
        assert_eq!(b.push(200), MediaTime(200));
        assert_eq!(b.clamped(), 1);
        // And a time before the base clamps to the running maximum too.
        assert_eq!(b.push(50), MediaTime(200));
        assert_eq!(b.clamped(), 2);
    }

    #[test]
    fn empty_builder_reports_empty() {
        let b = ScheduleBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.duration(), MediaTime::ZERO);
    }

    proptest! {
        #[test]
        fn prop_builder_output_is_monotone(raw in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut b = ScheduleBuilder::new();
            let mut prev = MediaTime::ZERO;
            for (i, t) in raw.iter().enumerate() {
                let off = b.push(*t);
                if i == 0 {
                    prop_assert_eq!(off, MediaTime::ZERO);
                }
                prop_assert!(off >= prev, "offset went backwards");
                prev = off;
            }
            prop_assert_eq!(b.duration(), prev);
        }

        #[test]
        fn prop_cbr_offsets_monotone(rate_kbps in 1u64..100_000, pkt in 1u32..65_536, seqs in proptest::collection::vec(0u64..1_000_000, 1..50)) {
            let s = CbrSchedule::new(BitRate::from_kbps(rate_kbps), pkt);
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            let mut prev = MediaTime::ZERO;
            for seq in sorted {
                let off = s.offset_of(seq);
                prop_assert!(off >= prev);
                prev = off;
            }
        }

        #[test]
        fn prop_cbr_seek_floor(rate_kbps in 8u64..100_000, pkt in 64u32..16_384, t_ms in 0u64..3_600_000) {
            let s = CbrSchedule::new(BitRate::from_kbps(rate_kbps), pkt);
            let t = MediaTime::from_millis(t_ms);
            let seq = s.seq_at(t);
            // The chosen packet is due at or before t; the next is after.
            prop_assert!(s.offset_of(seq) <= t);
            prop_assert!(s.offset_of(seq + 1) > t || s.offset_of(seq + 1) == s.offset_of(seq));
        }
    }
}
