//! MSU configuration.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::path::PathBuf;
use std::time::Duration;

/// Geometry of one local disk (a file-backed raw device).
#[derive(Clone, Debug)]
pub struct DiskSpec {
    /// Number of 256 KB blocks. A 1995 Seagate Barracuda held 2 GB ≈
    /// 8192 blocks; tests use far fewer (the backing file is sparse).
    pub blocks: u64,
    /// Fault-injection plan for chaos tests; `None` opens the disk
    /// without the [`calliope_storage::FaultyDisk`] wrapper. Even an
    /// all-defaults plan is useful: it arms the runtime kill switch.
    pub fault: Option<calliope_storage::FaultPlan>,
}

impl DiskSpec {
    /// A disk with no fault injection.
    pub fn healthy(blocks: u64) -> DiskSpec {
        DiskSpec {
            blocks,
            fault: None,
        }
    }
}

/// Configuration for one MSU.
#[derive(Clone, Debug)]
pub struct MsuConfig {
    /// The Coordinator's intra-server (MSU registration) address.
    pub coordinator: SocketAddr,
    /// Directory for the disk image files (`disk0.img`, `disk1.img`, …).
    pub data_dir: PathBuf,
    /// Local disks to create or open.
    pub disks: Vec<DiskSpec>,
    /// IP to bind the MSU's sockets on.
    pub bind_ip: IpAddr,
    /// Network-process wakeup granularity. The paper's FreeBSD timers
    /// tick every 10 ms; smaller values trade CPU for jitter.
    pub net_tick: Duration,
    /// Previous identity when re-registering after a crash (paper §2.2
    /// fault tolerance).
    pub previous_id: Option<calliope_types::MsuId>,
}

impl MsuConfig {
    /// A small configuration suitable for tests and examples: two
    /// 16 MB disks, loopback networking, the paper's 10 ms timer.
    pub fn small(coordinator: SocketAddr, data_dir: PathBuf) -> MsuConfig {
        MsuConfig {
            coordinator,
            data_dir,
            disks: vec![DiskSpec::healthy(64), DiskSpec::healthy(64)],
            bind_ip: IpAddr::V4(Ipv4Addr::LOCALHOST),
            net_tick: Duration::from_millis(10),
            previous_id: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_matches_paper_timer() {
        let cfg = MsuConfig::small("127.0.0.1:9000".parse().unwrap(), "/tmp/x".into());
        assert_eq!(cfg.net_tick, Duration::from_millis(10));
        assert_eq!(cfg.disks.len(), 2);
        assert!(cfg.previous_id.is_none());
    }
}
