//! E1 — Table 1: baseline throughput of disks, FDDI, and both at once.

use calliope_bench::{banner, mb};
use calliope_sim::baseline::{paper_table1, table1};
use calliope_sim::machine::MachineParams;

fn main() {
    banner(
        "E1",
        "Baseline performance measurements (MB/s)",
        "Table 1, §3.1",
    );
    let secs = if calliope_bench::quick() { 10 } else { 30 };
    let rows = table1(MachineParams::default(), secs, 42);
    let paper = paper_table1();

    println!(
        "{:<20} | {:>11} | {:^23} | {:^29}",
        "", "FDDI only", "Disks only", "Disks and FDDI"
    );
    println!(
        "{:<20} | {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>5}",
        "configuration",
        "sim",
        "paper",
        "d1",
        "d2",
        "d3",
        "paper",
        "fddi",
        "d1",
        "d2",
        "d3",
        "p-fddi"
    );
    println!("{}", "-".repeat(104));
    for (row, p) in rows.iter().zip(&paper) {
        let sim_disks: Vec<String> = (0..3).map(|i| mb(row.disks_only.get(i).copied())).collect();
        let sim_both: Vec<String> = (0..3).map(|i| mb(row.both_disks.get(i).copied())).collect();
        let paper_disks = if p.2.is_empty() {
            "-".to_string()
        } else {
            p.2.iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        println!(
            "{:<20} | {} {} | {} {} {} {:>5} | {} {} {} {} {:>6}",
            row.label,
            mb(row.fddi_only),
            mb(p.1),
            sim_disks[0],
            sim_disks[1],
            sim_disks[2],
            paper_disks,
            mb((row.both_fddi > 0.0).then_some(row.both_fddi)),
            sim_both[0],
            sim_both[1],
            sim_both[2],
            mb(p.3),
        );
    }
    println!();
    println!("Shape checks (paper's qualitative findings):");
    let fddi_only = rows[0].fddi_only.unwrap_or(0.0);
    let one_hba = rows[2].both_fddi;
    let two_hba = rows[3].both_fddi;
    println!(
        "  FDDI alone ≈ 8.5 MB/s:                 {:.1} MB/s  [{}]",
        fddi_only,
        if (7.5..9.5).contains(&fddi_only) {
            "ok"
        } else {
            "OFF"
        }
    );
    println!(
        "  one disk alone ≈ 3.6 MB/s:             {:.1} MB/s  [{}]",
        rows[1].disks_only[0],
        if (3.0..4.2).contains(&rows[1].disks_only[0]) {
            "ok"
        } else {
            "OFF"
        }
    );
    println!(
        "  2 disks/2 HBAs crater FDDI vs 1 HBA:   {:.1} vs {:.1} MB/s (paper: 2.3 vs 4.7)  [{}]",
        two_hba,
        one_hba,
        if two_hba < one_hba * 0.75 {
            "ok"
        } else {
            "OFF"
        }
    );
    let r3 = &rows[4];
    println!(
        "  3 disks/2 HBAs: FDDI worst of all:     {:.1} MB/s (paper: 1.4)  [{}]",
        r3.both_fddi,
        if r3.both_fddi < two_hba { "ok" } else { "OFF" }
    );
}
