//! Shared helpers for the experiment benches.
//!
//! Every bench target regenerates one table or figure from the paper's
//! evaluation and prints the paper's published values next to the
//! reproduced ones. `BENCH_QUICK=1` shortens the simulated horizons for
//! smoke runs.

/// One experiment's standard header.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("  (paper {paper_ref})");
    println!("================================================================");
}

/// True if the quick (CI) mode is requested.
pub fn quick() -> bool {
    std::env::var("BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Simulated horizon in seconds: the paper's six minutes, or 60 s in
/// quick mode.
pub fn horizon_secs() -> u64 {
    if quick() {
        60
    } else {
        360
    }
}

/// Formats an `Option<f64>` MB/s cell.
pub fn mb(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:5.1}"),
        None => "    -".to_string(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_defaults_off() {
        // The env var is absent in tests; the full horizon applies.
        if std::env::var("BENCH_QUICK").is_err() {
            assert_eq!(super::horizon_secs(), 360);
        }
    }
}
