//! E4 — §3.1: the two-HBA I/O-port-stall hardware bug.
//!
//! "The sequence of instructions needed to read the hardware timer took
//! approximately 4 microseconds with no disk activity; it occasionally
//! took a millisecond with one HBA running, and often took 20
//! milliseconds with two HBAs running."

use calliope_bench::banner;
use calliope_sim::machine::MachineParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples the timer-read duration under a stall regime.
fn sample(rng: &mut StdRng, base_us: f64, p: f64, stall_us: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            if p > 0.0 && rng.gen_bool(p) {
                base_us + stall_us
            } else {
                base_us
            }
        })
        .collect()
}

fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = sorted[sorted.len() / 2];
    let p99 = sorted[(sorted.len() as f64 * 0.99) as usize];
    let max = *sorted.last().expect("non-empty");
    (median, p99, max)
}

fn main() {
    banner(
        "E4",
        "Timer-read latency under the two-HBA port-I/O stall bug",
        "§3.1",
    );
    let p = MachineParams::default();
    let mut rng = StdRng::seed_from_u64(1);
    let n = 100_000;
    let base = 4.0; // the paper's 4 µs in/out sequence

    println!(
        "{:<22} | {:>10} {:>10} {:>10} | paper",
        "regime", "median(us)", "p99(us)", "max(us)"
    );
    println!("{}", "-".repeat(78));

    let idle = sample(&mut rng, base, 0.0, 0.0, n);
    let (m, p99, max) = stats(&idle);
    println!(
        "{:<22} | {:>10.0} {:>10.0} {:>10.0} | ~4 us",
        "no disk activity", m, p99, max
    );

    let one = sample(&mut rng, base, p.stall_one_hba_p, p.stall_one_hba_us, n);
    let (m, p99, max) = stats(&one);
    println!(
        "{:<22} | {:>10.0} {:>10.0} {:>10.0} | occasionally ~1 ms",
        "one HBA running", m, p99, max
    );

    let two = sample(&mut rng, base, p.stall_multi_hba_p, p.stall_multi_hba_us, n);
    let (m, p99, max) = stats(&two);
    println!(
        "{:<22} | {:>10.0} {:>10.0} {:>10.0} | often ~20 ms",
        "two HBAs running", m, p99, max
    );

    println!();
    println!("Downstream effects reproduced elsewhere:");
    println!("  - Table 1's two-HBA rows (E1): FDDI craters from 4.7 to ~2 MB/s");
    println!(
        "  - each disk I/O pays ~{:.0} ms of driver port-I/O with two HBAs active",
        p.stall_per_io_multi_us / 1000.0
    );
    println!("  - the paper's workaround (keeping time via the Pentium cycle");
    println!("    counter) is why the MSU's own clock stays accurate regardless");
}
